#!/usr/bin/env bash
# Verifies that the offline vendor stubs stay in sync with the workspace
# manifest (a cargo-deny-style source check for a registry-less build):
#
#   1. every directory under vendor/ is listed in [workspace] members,
#   2. every external entry in [workspace.dependencies] resolves to a
#      vendor/ path (nothing silently points back at crates.io),
#   3. every vendored path exists and its package name matches the
#      dependency key it stands in for.
#
# Run from the repository root (CI does). Exits non-zero on the first
# mismatch, printing every problem found.

set -euo pipefail

cd "$(dirname "$0")/.."
manifest="Cargo.toml"
status=0

fail() {
    echo "check_vendor: $*" >&2
    status=1
}

# --- 1. every vendor directory is a workspace member -----------------------
for dir in vendor/*/; do
    crate="${dir%/}"
    [ -f "$crate/Cargo.toml" ] || { fail "$crate has no Cargo.toml"; continue; }
    if ! grep -Eq "^[[:space:]]*\"$crate\"" "$manifest"; then
        fail "$crate is not listed in [workspace] members"
    fi
done

# --- 2 & 3. workspace dependencies with a path into vendor/ ----------------
# Extract `name = { path = "vendor/..." }` pairs from the manifest.
deps=$(sed -n 's/^\([a-zA-Z0-9_-]*\)[[:space:]]*=[[:space:]]*{[[:space:]]*path[[:space:]]*=[[:space:]]*"\(vendor\/[^"]*\)".*/\1 \2/p' "$manifest")

if [ -z "$deps" ]; then
    fail "no vendored dependencies found in [workspace.dependencies]"
fi

while read -r name path; do
    [ -z "$name" ] && continue
    if [ ! -f "$path/Cargo.toml" ]; then
        fail "dependency '$name' points at missing '$path'"
        continue
    fi
    actual=$(sed -n 's/^name[[:space:]]*=[[:space:]]*"\(.*\)"/\1/p' "$path/Cargo.toml" | head -1)
    if [ "$actual" != "$name" ]; then
        fail "dependency '$name' resolves to '$path' whose package name is '$actual'"
    fi
done <<< "$deps"

# --- every vendor crate is actually consumed -------------------------------
for dir in vendor/*/; do
    crate_name=$(sed -n 's/^name[[:space:]]*=[[:space:]]*"\(.*\)"/\1/p' "${dir}Cargo.toml" | head -1)
    # serde_derive is consumed by the serde stub, not by the workspace
    # manifest directly.
    [ "$crate_name" = "serde_derive" ] && continue
    if ! echo "$deps" | grep -q "^$crate_name "; then
        fail "vendor crate '$crate_name' is not wired into [workspace.dependencies]"
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_vendor: OK ($(echo "$deps" | wc -l | tr -d ' ') vendored dependencies in sync)"
fi
exit "$status"
