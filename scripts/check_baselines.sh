#!/usr/bin/env bash
# Validates the checked-in perf-gate baselines against the bench suite:
# every crates/bench/baseline*.json must parse as a bifrost-bench report,
# name a figure `bench::suite` knows, and only contain point labels that
# figure can emit — so a renamed figure or point fails the lint job fast
# instead of silently skipping its regression gate (the gate only compares
# points present in the baseline).
#
# The actual validation lives in `experiments check-baselines` (it reuses
# the report parser and suite::point_names); this wrapper just builds and
# runs it from the repository root, like CI does.

set -euo pipefail

cd "$(dirname "$0")/.."
cargo run --quiet -p bifrost-bench --bin experiments -- check-baselines crates/bench
