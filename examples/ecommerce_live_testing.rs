//! The full evaluation scenario of the paper's Section 5.1: the 7-service
//! e-commerce application, a JMeter-style workload, and the four-phase
//! release strategy replacing the product service (canary → dark launch →
//! A/B test → gradual rollout), executed in all three deployment variants
//! (baseline, Bifrost inactive, Bifrost active).
//!
//! The example prints the per-phase response-time table the experiment
//! produces — a compressed version of Figure 6 / Table 1.
//!
//! Run with `cargo run --release --example ecommerce_live_testing`.

use bifrost::casestudy::{OverheadExperiment, Variant};

fn main() {
    let experiment = OverheadExperiment::compressed();
    println!("running the compressed end-user overhead experiment (3 variants)...\n");

    let runs = experiment.run_all();
    let phase_names: Vec<String> = runs[0].windows.iter().map(|w| w.name.clone()).collect();

    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "phase", "baseline", "inactive", "active"
    );
    for phase in &phase_names {
        let mut cells = Vec::new();
        for variant in Variant::ALL {
            let run = runs
                .iter()
                .find(|r| r.variant == variant)
                .expect("variant ran");
            cells.push(
                run.phase_mean(phase)
                    .map(|m| format!("{m:>9.2} ms"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        println!(
            "{:<18} {:>12} {:>12} {:>12}",
            phase, cells[0], cells[1], cells[2]
        );
    }

    let active = runs
        .iter()
        .find(|r| r.variant == Variant::Active)
        .expect("active ran");
    println!(
        "\nrelease strategy completed successfully: {}",
        active.strategy_succeeded.unwrap_or(false)
    );

    // The qualitative claims of the paper, checked on the fly:
    let baseline = runs
        .iter()
        .find(|r| r.variant == Variant::Baseline)
        .unwrap();
    let inactive = runs
        .iter()
        .find(|r| r.variant == Variant::Inactive)
        .unwrap();
    let overhead =
        inactive.recorder.mean_ms(None).unwrap() - baseline.recorder.mean_ms(None).unwrap();
    println!("proxy overhead over the whole run: {overhead:.2} ms (paper: ~8 ms)");

    let dark = active.phase_mean("Dark Launch").unwrap();
    let ab = active.phase_mean("A/B Test").unwrap();
    println!("dark launch mean {dark:.2} ms vs A/B test mean {ab:.2} ms (paper: dark launch is the most expensive phase)");
}
