//! Many teams, many rollouts: the scenario behind Figures 7 and 8.
//!
//! A large organisation has dozens of product teams releasing independently;
//! every team runs its own multi-phase live testing strategy, and all of
//! them are enacted by one Bifrost engine on a single-core cloud instance.
//! This example schedules an increasing number of release "trains" and
//! reports the engine's CPU utilisation and the per-strategy enactment
//! delay.
//!
//! Run with `cargo run --release --example parallel_release_trains`.

use bifrost::casestudy::{trimmed_strategy, CaseStudyTopology};
use bifrost::engine::{BifrostEngine, EngineConfig};
use bifrost::metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost::simnet::SimTime;

fn run_with(parallel: usize) -> (f64, f64, usize) {
    let topology = CaseStudyTopology::new();
    let store = SharedMetricStore::new();
    // Healthy, flat error counters so every strategy walks its full length.
    for t in (0..1_200).step_by(5) {
        store.record_value(
            SeriesKey::new("request_errors").with_label("version", "product-a"),
            TimestampMs::from_secs(t),
            0.0,
        );
    }

    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", store);
    engine.register_proxy(topology.product_service, topology.product_stable);

    let handles: Vec<_> = (0..parallel)
        .map(|_| engine.schedule(trimmed_strategy(&topology), SimTime::ZERO))
        .collect();
    engine.run_to_completion(SimTime::from_secs(3_600));

    let mean_cpu = {
        let trace = engine.utilization_trace();
        trace.iter().map(|(_, u)| *u).sum::<f64>() / trace.len().max(1) as f64
    };
    let reports: Vec<_> = handles.iter().filter_map(|h| engine.report(*h)).collect();
    let mean_delay = reports
        .iter()
        .filter_map(|r| r.enactment_delay())
        .map(|d| d.as_secs_f64())
        .sum::<f64>()
        / reports.len().max(1) as f64;
    let succeeded = reports.iter().filter(|r| r.succeeded()).count();
    (mean_cpu, mean_delay, succeeded)
}

fn main() {
    println!("parallel release trains on a single-core Bifrost engine\n");
    println!(
        "{:>10} {:>14} {:>16} {:>12}",
        "strategies", "mean CPU (%)", "mean delay (s)", "succeeded"
    );
    for parallel in [1usize, 10, 25, 50, 100] {
        let (cpu, delay, succeeded) = run_with(parallel);
        println!("{parallel:>10} {cpu:>14.1} {delay:>16.2} {succeeded:>12}");
    }
    println!("\nAll strategies complete even at 100 parallel rollouts — the delay, not");
    println!("correctness, is what degrades as the single core saturates (Figures 7 & 8).");
}
