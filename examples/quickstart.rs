//! Quickstart: define a strategy in the DSL, compile it, enact it on virtual
//! time, and inspect the result.
//!
//! Run with `cargo run --example quickstart`.

use bifrost::dsl;
use bifrost::engine::{BifrostEngine, EngineConfig};
use bifrost::metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost::simnet::SimTime;

const STRATEGY: &str = r#"
name: quickstart-fastsearch
deployment:
  services:
    - service: search
      proxy: search-proxy:8080
      versions:
        - name: search-v1
          host: 10.0.0.1
          port: 8080
        - name: fastsearch
          host: 10.0.0.2
          port: 8080
strategy:
  phases:
    - phase: canary
      name: canary-5
      service: search
      stable: search-v1
      candidate: fastsearch
      traffic: 5
      duration: 120
      checks:
        - name: error-count
          provider: prometheus
          query: request_errors{instance="search:80"}
          interval: 12
          executions: 10
          validator: "<5"
    - phase: rollout
      name: ramp-up
      service: search
      stable: search-v1
      candidate: fastsearch
      from_traffic: 10
      to_traffic: 100
      step: 10
      step_duration: 30
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and compile the strategy.
    let strategy = dsl::parse_strategy(STRATEGY)?;
    println!(
        "compiled strategy '{}' with {} automaton states (nominal duration {:.0}s)",
        strategy.name(),
        strategy.automaton().state_count(),
        strategy.nominal_duration().as_secs_f64()
    );

    // 2. Set up an engine with an in-process metric store acting as
    //    Prometheus, and register a proxy for the search service.
    let store = SharedMetricStore::new();
    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", store.clone());
    let (search_id, _) = strategy
        .services()
        .service_by_name("search")
        .expect("search service exists");
    let stable = strategy.services().versions_of(search_id)[0];
    engine.register_proxy(search_id, stable);

    // 3. Feed healthy monitoring data so the canary checks pass: the error
    //    counter stays flat (no new errors).
    for t in (0..600).step_by(5) {
        store.record_value(
            SeriesKey::new("request_errors").with_label("instance", "search:80"),
            TimestampMs::from_secs(t),
            2.0,
        );
    }

    // 4. Enact. Everything runs on virtual time, so this finishes instantly.
    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));

    // 5. Inspect the outcome.
    let report = engine.report(handle).expect("strategy was scheduled");
    println!("{}", report.summary());
    for event in engine.events().for_strategy(handle.id()) {
        println!("  {}", event.describe());
    }
    assert!(
        report.succeeded(),
        "healthy metrics should lead to a full rollout"
    );
    Ok(())
}
