//! The paper's running example (Sections 2–3): the redesigned `fastSearch`
//! service is canary-tested on 1 % of the US users, gradually ramped to
//! 50 %, A/B-tested against the stable search service for five days, and —
//! if the business metrics favour it — rolled out to everyone.
//!
//! The example prints the compiled state machine (Figure 2), walks the happy
//! path, and then demonstrates a rollback triggered by bad monitoring data.
//!
//! Run with `cargo run --example fastsearch_rollout`.

use bifrost::casestudy::{fastsearch_strategy, CaseStudyTopology};
use bifrost::engine::{BifrostEngine, EngineConfig};
use bifrost::metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost::simnet::SimTime;

/// Feeds the metric store with monitoring data for the fastSearch version:
/// response times around `rt_ms` and a sales counter that keeps growing.
fn feed_monitoring(store: &SharedMetricStore, days: u64, rt_ms: f64) {
    let horizon = days * 24 * 3_600;
    let mut sold = 0.0;
    for t in (0..horizon).step_by(600) {
        store.record_value(
            SeriesKey::new("response_time_ms").with_label("version", "fastSearch"),
            TimestampMs::from_secs(t),
            rt_ms,
        );
        sold += 3.0;
        store.record_value(
            SeriesKey::new("items_sold_total").with_label("version", "fastSearch"),
            TimestampMs::from_secs(t),
            sold,
        );
    }
}

fn enact(rt_ms: f64) -> (bool, usize) {
    let topology = CaseStudyTopology::new();
    let strategy = fastsearch_strategy(&topology);
    let store = SharedMetricStore::new();
    feed_monitoring(&store, 20, rt_ms);

    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", store);
    engine.register_proxy(topology.search_service, topology.search_stable);

    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(40 * 24 * 3_600));
    let report = engine.report(handle).expect("scheduled");
    (report.succeeded(), report.state_history.len())
}

fn main() {
    let topology = CaseStudyTopology::new();
    let strategy = fastsearch_strategy(&topology);

    println!("== fastSearch rollout strategy (the paper's running example) ==\n");
    println!(
        "{} states, nominal duration {:.1} days\n",
        strategy.automaton().state_count(),
        strategy.nominal_duration().as_secs_f64() / 86_400.0
    );
    println!("Graphviz rendering of the state machine (Figure 2):\n");
    println!("{}", strategy.automaton().to_dot());

    // Happy path: fastSearch responds well below the 150 ms threshold.
    let (succeeded, states) = enact(90.0);
    println!("healthy fastSearch  → succeeded: {succeeded} ({states} states visited)");
    assert!(succeeded);

    // Regression: fastSearch responds far above the threshold; the canary
    // checks fail and the strategy rolls back without ever reaching the A/B
    // test.
    let (succeeded, states) = enact(400.0);
    println!("slow fastSearch     → succeeded: {succeeded} ({states} states visited)");
    assert!(!succeeded);
    assert!(states < 5, "rollback should happen early, visited {states}");
}
