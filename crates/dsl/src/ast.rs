//! The document model of a strategy file.
//!
//! A strategy file has two parts, mirroring the DSL described in the paper:
//! the *deployment* part declares the services, their versions (with
//! endpoint information), and optionally the proxy host fronting each
//! service; the *strategy* part declares the ordered phases with their
//! traffic routing and checks.

use crate::error::DslError;
use crate::yaml::YamlValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One declared version of a service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionDoc {
    /// The version name (e.g. `"fastsearch"`).
    pub name: String,
    /// The host the version is reachable at.
    pub host: String,
    /// The TCP port.
    pub port: u16,
    /// Free-form labels.
    pub labels: BTreeMap<String, String>,
}

/// One declared service with its versions and optional proxy host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDoc {
    /// The service name.
    pub name: String,
    /// The proxy host fronting the service, if any.
    pub proxy: Option<String>,
    /// Declared versions.
    pub versions: Vec<VersionDoc>,
}

/// The deployment part of a strategy file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeploymentDoc {
    /// Declared services.
    pub services: Vec<ServiceDoc>,
}

/// One metric query of a check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDoc {
    /// The provider name (e.g. `"prometheus"`).
    pub provider: String,
    /// The name under which the value is exposed to the validator.
    pub name: String,
    /// The query/selector string (e.g. `request_errors{instance="search:80"}`).
    pub query: String,
    /// Aggregation applied to the fetched window (`last`, `mean`, `sum`,
    /// `max`, `min`, `count`, `rate`); defaults to `last`.
    pub aggregation: Option<String>,
    /// Look-back window in seconds.
    pub window: Option<u64>,
}

/// One check of a phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckDoc {
    /// The check name.
    pub name: String,
    /// The metrics fetched by the check.
    pub metrics: Vec<MetricDoc>,
    /// Seconds between executions (`intervalTime` in the paper's listing).
    pub interval_secs: u64,
    /// Number of executions (`intervalLimit`).
    pub executions: u32,
    /// How many executions must succeed for the check to pass (`threshold`);
    /// defaults to all of them.
    pub threshold: Option<i64>,
    /// The validator expression applied to each fetched value (e.g. `"<5"`).
    pub validator: String,
    /// Weight of the check in the state outcome (default 1.0).
    pub weight: Option<f64>,
    /// Whether this is an exception check (fails fast to the rollback state).
    pub exception: bool,
}

/// The kind of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseType {
    /// Canary release.
    Canary,
    /// Dark launch (traffic duplication).
    DarkLaunch,
    /// A/B test (50/50 split, sticky sessions).
    AbTest,
    /// Gradual rollout (stepwise traffic increase).
    GradualRollout,
}

impl PhaseType {
    /// Parses the DSL spelling of a phase type.
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().replace('-', "_").as_str() {
            "canary" | "canary_release" => Some(Self::Canary),
            "dark_launch" | "darklaunch" | "shadow" => Some(Self::DarkLaunch),
            "ab_test" | "abtest" | "a/b" | "ab" => Some(Self::AbTest),
            "gradual_rollout" | "rollout" | "gradual" => Some(Self::GradualRollout),
            _ => None,
        }
    }
}

/// One phase of the strategy part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDoc {
    /// The phase name.
    pub name: String,
    /// The phase type.
    pub phase_type: PhaseType,
    /// The service being live-tested.
    pub service: String,
    /// The stable / source / "A" version (interpretation depends on type).
    pub stable: String,
    /// The candidate / shadow / "B" version.
    pub candidate: String,
    /// Traffic percentage (canary share or dark-launch duplication share).
    pub traffic: Option<f64>,
    /// Phase duration in seconds.
    pub duration_secs: Option<u64>,
    /// Gradual rollout: starting share.
    pub from_traffic: Option<f64>,
    /// Gradual rollout: final share.
    pub to_traffic: Option<f64>,
    /// Gradual rollout: increment per step.
    pub step: Option<f64>,
    /// Gradual rollout: seconds per step.
    pub step_duration_secs: Option<u64>,
    /// Whether sessions are sticky within the phase.
    pub sticky: Option<bool>,
    /// Restrict the phase to users with this attribute, e.g.
    /// `country: US`.
    pub user_filter: BTreeMap<String, String>,
    /// Percentage of the (possibly filtered) user base eligible for the
    /// phase.
    pub user_percentage: Option<f64>,
    /// Routing mode: `cookie` (default) or `header`.
    pub routing: Option<String>,
    /// The phase's checks.
    pub checks: Vec<CheckDoc>,
}

/// Upper bound accepted for the traffic batching tick (seconds).
pub const MAX_TICK_SECS: f64 = 3_600.0;
/// Upper bound accepted for the proxy-VM core count.
pub const MAX_CORES: usize = 1_024;
/// Upper bound accepted for a backend's replica count.
pub const MAX_REPLICAS: usize = 1_024;
/// Upper bound accepted for a backend's per-replica queue capacity.
pub const MAX_QUEUE_CAPACITY: usize = 1_000_000;
/// Upper bound accepted for millisecond-valued backend fields
/// (`service_time_ms`, `timeout_ms`).
pub const MAX_BACKEND_MS: i64 = 3_600_000;

/// The queued-backend shape of one service version, declared in the
/// `engine: backends:` section. Used by `bifrost run --traffic` to give
/// the version capacity-bounded replicas instead of the degenerate
/// unlimited-capacity model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendDoc {
    /// The service the version belongs to; `None` matches the version name
    /// in any service.
    pub service: Option<String>,
    /// The version name.
    pub version: String,
    /// Mean service demand per request in milliseconds.
    pub service_time_ms: u64,
    /// Intrinsic error rate of served requests (`0..=1`).
    pub error_rate: f64,
    /// Number of single-core replicas.
    pub replicas: usize,
    /// Per-replica bound on outstanding requests; arrivals beyond it shed.
    pub queue_capacity: usize,
    /// Request deadline in milliseconds.
    pub timeout_ms: u64,
}

impl BackendDoc {
    /// Whether this declaration applies to `version` of `service`.
    pub fn matches(&self, service: &str, version: &str) -> bool {
        self.version == version && self.service.as_deref().is_none_or(|s| s == service)
    }
}

/// Enactment-engine settings declared in a strategy file. These do not
/// alter the compiled strategy — they tune the engine the CLI builds to
/// enact it (and default to the engine's own defaults when absent).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineDoc {
    /// How many ways each proxy shards its sticky-session table
    /// (`session_shards`, minimum 1). `None` keeps the engine default.
    pub session_shards: Option<usize>,
    /// The traffic batching tick in seconds (`tick`, fractional values
    /// allowed). `None` keeps the traffic profile's default.
    pub tick_secs: Option<f64>,
    /// The proxy VM's core count under request-level traffic (`cores`).
    pub cores: Option<usize>,
    /// Per-version queued-backend declarations (`backends`).
    pub backends: Vec<BackendDoc>,
}

/// A complete, parsed strategy file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyDocument {
    /// The strategy name.
    pub name: String,
    /// The deployment part.
    pub deployment: DeploymentDoc,
    /// Optional engine settings.
    pub engine: EngineDoc,
    /// The ordered phases.
    pub phases: Vec<PhaseDoc>,
}

impl StrategyDocument {
    /// Builds the document model from parsed YAML.
    ///
    /// # Errors
    ///
    /// Returns a [`DslError`] for missing or ill-typed fields.
    pub fn from_yaml(yaml: &YamlValue) -> Result<Self, DslError> {
        let name = require_str(yaml, "name", "strategy document")?;
        let deployment = match yaml.get("deployment") {
            Some(dep) => parse_deployment(dep)?,
            None => DeploymentDoc::default(),
        };
        let engine = match yaml.get("engine") {
            Some(engine) => parse_engine(engine)?,
            None => EngineDoc::default(),
        };
        let strategy = yaml
            .get("strategy")
            .ok_or_else(|| DslError::missing("strategy document", "strategy"))?;
        let phases_yaml = strategy
            .get("phases")
            .and_then(YamlValue::as_seq)
            .ok_or_else(|| DslError::missing("strategy section", "phases"))?;
        let mut phases = Vec::with_capacity(phases_yaml.len());
        for phase in phases_yaml {
            phases.push(parse_phase(phase)?);
        }
        Ok(Self {
            name,
            deployment,
            engine,
            phases,
        })
    }

    /// Looks up a declared service by name.
    pub fn service(&self, name: &str) -> Option<&ServiceDoc> {
        self.deployment.services.iter().find(|s| s.name == name)
    }
}

fn parse_deployment(yaml: &YamlValue) -> Result<DeploymentDoc, DslError> {
    let services_yaml = yaml
        .get("services")
        .and_then(YamlValue::as_seq)
        .ok_or_else(|| DslError::missing("deployment section", "services"))?;
    let mut services = Vec::with_capacity(services_yaml.len());
    for service in services_yaml {
        let name = require_str(service, "service", "deployment service")?;
        let proxy = service.get("proxy").and_then(YamlValue::scalar_to_string);
        let versions_yaml = service
            .get("versions")
            .and_then(YamlValue::as_seq)
            .ok_or_else(|| DslError::missing(format!("service '{name}'"), "versions"))?;
        let mut versions = Vec::with_capacity(versions_yaml.len());
        for version in versions_yaml {
            let vname = require_str(version, "name", &format!("version of service '{name}'"))?;
            let host = require_str(version, "host", &format!("version '{vname}'"))?;
            let port = version
                .get("port")
                .and_then(YamlValue::as_i64)
                .unwrap_or(80);
            let port = u16::try_from(port).map_err(|_| {
                DslError::invalid(format!("version '{vname}'"), "port", "must fit in a u16")
            })?;
            let labels = version
                .get("labels")
                .map(YamlValue::to_string_map)
                .unwrap_or_default();
            versions.push(VersionDoc {
                name: vname,
                host,
                port,
                labels,
            });
        }
        services.push(ServiceDoc {
            name,
            proxy,
            versions,
        });
    }
    Ok(DeploymentDoc { services })
}

fn parse_engine(yaml: &YamlValue) -> Result<EngineDoc, DslError> {
    let session_shards = match yaml.get("session_shards") {
        None => None,
        Some(value) => {
            let shards = value
                .as_i64()
                .filter(|v| (1..=bifrost_core::routing::MAX_SESSION_SHARDS as i64).contains(v))
                .ok_or_else(|| {
                    DslError::invalid(
                        "engine section",
                        "session_shards",
                        format!(
                            "must be an integer in 1..={}",
                            bifrost_core::routing::MAX_SESSION_SHARDS
                        ),
                    )
                })?;
            Some(shards as usize)
        }
    };
    let tick_secs = match yaml.get("tick") {
        None => None,
        Some(value) => {
            let tick = value
                .as_f64()
                .filter(|v| v.is_finite() && *v > 0.0 && *v <= MAX_TICK_SECS)
                .ok_or_else(|| {
                    DslError::invalid(
                        "engine section",
                        "tick",
                        format!("must be a number of seconds in (0, {MAX_TICK_SECS}]"),
                    )
                })?;
            Some(tick)
        }
    };
    let cores = match yaml.get("cores") {
        None => None,
        Some(value) => {
            let cores = value
                .as_i64()
                .filter(|v| (1..=MAX_CORES as i64).contains(v))
                .ok_or_else(|| {
                    DslError::invalid(
                        "engine section",
                        "cores",
                        format!("must be an integer in 1..={MAX_CORES}"),
                    )
                })?;
            Some(cores as usize)
        }
    };
    let backends = match yaml.get("backends") {
        None => Vec::new(),
        Some(backends_yaml) => {
            let seq = backends_yaml.as_seq().ok_or_else(|| {
                DslError::invalid("engine section", "backends", "must be a sequence")
            })?;
            seq.iter().map(parse_backend).collect::<Result<_, _>>()?
        }
    };
    Ok(EngineDoc {
        session_shards,
        tick_secs,
        cores,
        backends,
    })
}

fn parse_backend(yaml: &YamlValue) -> Result<BackendDoc, DslError> {
    let version = require_str(yaml, "version", "engine backend")?;
    let context = format!("engine backend '{version}'");
    let bounded_ms = |field: &str, default: u64| -> Result<u64, DslError> {
        match yaml.get(field) {
            None => Ok(default),
            Some(value) => value
                .as_i64()
                .filter(|v| (1..=MAX_BACKEND_MS).contains(v))
                .map(|v| v as u64)
                .ok_or_else(|| {
                    DslError::invalid(
                        &context,
                        field,
                        format!("must be an integer in 1..={MAX_BACKEND_MS}"),
                    )
                }),
        }
    };
    let bounded_count = |field: &str, max: usize, default: usize| -> Result<usize, DslError> {
        match yaml.get(field) {
            None => Ok(default),
            Some(value) => value
                .as_i64()
                .filter(|v| (1..=max as i64).contains(v))
                .map(|v| v as usize)
                .ok_or_else(|| {
                    DslError::invalid(&context, field, format!("must be an integer in 1..={max}"))
                }),
        }
    };
    let error_rate = match yaml.get("error_rate") {
        None => 0.0,
        Some(value) => value
            .as_f64()
            .filter(|v| (0.0..=1.0).contains(v))
            .ok_or_else(|| {
                DslError::invalid(&context, "error_rate", "must be a number in 0..=1")
            })?,
    };
    Ok(BackendDoc {
        service: yaml.get("service").and_then(YamlValue::scalar_to_string),
        version,
        service_time_ms: bounded_ms("service_time_ms", 10)?,
        error_rate,
        replicas: bounded_count("replicas", MAX_REPLICAS, 1)?,
        queue_capacity: bounded_count("queue_capacity", MAX_QUEUE_CAPACITY, 64)?,
        timeout_ms: bounded_ms("timeout_ms", 1_000)?,
    })
}

fn parse_phase(yaml: &YamlValue) -> Result<PhaseDoc, DslError> {
    let type_text = require_str(yaml, "phase", "phase")?;
    let phase_type = PhaseType::parse(&type_text).ok_or_else(|| {
        DslError::invalid("phase", "phase", format!("unknown type '{type_text}'"))
    })?;
    let name = yaml
        .get("name")
        .and_then(YamlValue::scalar_to_string)
        .unwrap_or_else(|| type_text.clone());
    let context = format!("phase '{name}'");
    let service = require_str(yaml, "service", &context)?;

    // Version references have per-type aliases mirroring the paper's route
    // directive (from/to) and A/B terminology.
    let (stable_keys, candidate_keys): (&[&str], &[&str]) = match phase_type {
        PhaseType::Canary | PhaseType::GradualRollout => {
            (&["stable", "from"], &["candidate", "canary", "to"])
        }
        PhaseType::DarkLaunch => (
            &["from", "stable", "source"],
            &["to", "shadow", "candidate"],
        ),
        PhaseType::AbTest => (&["a", "stable"], &["b", "candidate"]),
    };
    let stable =
        first_str(yaml, stable_keys).ok_or_else(|| DslError::missing(&context, stable_keys[0]))?;
    let candidate = first_str(yaml, candidate_keys)
        .ok_or_else(|| DslError::missing(&context, candidate_keys[0]))?;

    let checks = match yaml.get("checks") {
        None => Vec::new(),
        Some(checks_yaml) => {
            let seq = checks_yaml
                .as_seq()
                .ok_or_else(|| DslError::invalid(&context, "checks", "must be a sequence"))?;
            seq.iter()
                .map(|c| parse_check(c, &context))
                .collect::<Result<Vec<_>, _>>()?
        }
    };

    Ok(PhaseDoc {
        name,
        phase_type,
        service,
        stable,
        candidate,
        traffic: yaml.get("traffic").and_then(YamlValue::as_f64),
        duration_secs: get_u64(yaml, "duration"),
        from_traffic: yaml.get("from_traffic").and_then(YamlValue::as_f64),
        to_traffic: yaml.get("to_traffic").and_then(YamlValue::as_f64),
        step: yaml.get("step").and_then(YamlValue::as_f64),
        step_duration_secs: get_u64(yaml, "step_duration"),
        sticky: yaml.get("sticky").and_then(YamlValue::as_bool),
        user_filter: yaml
            .get("user_filter")
            .map(YamlValue::to_string_map)
            .unwrap_or_default(),
        user_percentage: yaml.get("user_percentage").and_then(YamlValue::as_f64),
        routing: yaml.get("routing").and_then(YamlValue::scalar_to_string),
        checks,
    })
}

fn parse_check(yaml: &YamlValue, phase_context: &str) -> Result<CheckDoc, DslError> {
    // Accept both the paper's `- metric:` wrapper and a flat `- name:` form.
    let body = yaml.get("metric").or(yaml.get("check")).unwrap_or(yaml);
    let name = body
        .get("name")
        .and_then(YamlValue::scalar_to_string)
        .unwrap_or_else(|| "check".to_string());
    let context = format!("{phase_context} check '{name}'");

    let mut metrics = Vec::new();
    if let Some(providers) = body.get("providers").and_then(YamlValue::as_seq) {
        for provider_entry in providers {
            let entries = provider_entry.as_map().ok_or_else(|| {
                DslError::invalid(&context, "providers", "each entry must be a mapping")
            })?;
            for (provider_name, details) in entries {
                let metric_name = details
                    .get("name")
                    .and_then(YamlValue::scalar_to_string)
                    .unwrap_or_else(|| name.clone());
                let query = details
                    .get("query")
                    .and_then(YamlValue::scalar_to_string)
                    .ok_or_else(|| DslError::missing(&context, "query"))?;
                metrics.push(MetricDoc {
                    provider: provider_name.clone(),
                    name: metric_name,
                    query,
                    aggregation: details
                        .get("aggregation")
                        .and_then(YamlValue::scalar_to_string),
                    window: details
                        .get("window")
                        .and_then(YamlValue::as_i64)
                        .map(|v| v.max(0) as u64),
                });
            }
        }
    } else if let Some(query) = body.get("query").and_then(YamlValue::scalar_to_string) {
        metrics.push(MetricDoc {
            provider: body
                .get("provider")
                .and_then(YamlValue::scalar_to_string)
                .unwrap_or_else(|| "prometheus".to_string()),
            name: name.clone(),
            query,
            aggregation: body
                .get("aggregation")
                .and_then(YamlValue::scalar_to_string),
            window: body
                .get("window")
                .and_then(YamlValue::as_i64)
                .map(|v| v.max(0) as u64),
        });
    }
    if metrics.is_empty() {
        return Err(DslError::missing(&context, "providers/query"));
    }

    let interval_secs = get_u64_any(body, &["intervalTime", "interval"])
        .ok_or_else(|| DslError::missing(&context, "intervalTime"))?;
    let executions = get_u64_any(body, &["intervalLimit", "executions"])
        .ok_or_else(|| DslError::missing(&context, "intervalLimit"))? as u32;
    let validator = body
        .get("validator")
        .and_then(YamlValue::scalar_to_string)
        .ok_or_else(|| DslError::missing(&context, "validator"))?;

    Ok(CheckDoc {
        name,
        metrics,
        interval_secs,
        executions,
        threshold: body.get("threshold").and_then(YamlValue::as_i64),
        validator,
        weight: body.get("weight").and_then(YamlValue::as_f64),
        exception: body
            .get("exception")
            .and_then(YamlValue::as_bool)
            .unwrap_or(false),
    })
}

fn require_str(yaml: &YamlValue, field: &str, context: &str) -> Result<String, DslError> {
    yaml.get(field)
        .and_then(YamlValue::scalar_to_string)
        .ok_or_else(|| DslError::missing(context, field))
}

fn first_str(yaml: &YamlValue, keys: &[&str]) -> Option<String> {
    keys.iter()
        .find_map(|key| yaml.get(key).and_then(YamlValue::scalar_to_string))
}

fn get_u64(yaml: &YamlValue, field: &str) -> Option<u64> {
    yaml.get(field)
        .and_then(YamlValue::as_i64)
        .map(|v| v.max(0) as u64)
}

fn get_u64_any(yaml: &YamlValue, fields: &[&str]) -> Option<u64> {
    fields.iter().find_map(|f| get_u64(yaml, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yaml;

    const FULL_DOC: &str = r#"
name: fastsearch-rollout
deployment:
  services:
    - service: search
      proxy: search-proxy:8080
      versions:
        - name: search-v1
          host: 10.0.0.1
          port: 8080
        - name: fastsearch
          host: 10.0.0.2
          port: 8080
          labels:
            track: canary
strategy:
  phases:
    - phase: canary
      name: canary-1
      service: search
      stable: search-v1
      candidate: fastsearch
      traffic: 1
      duration: 86400
      user_filter:
        country: US
      checks:
        - metric:
            name: response_time
            providers:
              - prometheus:
                  name: search_rt
                  query: response_time_ms{instance="search:80"}
            intervalTime: 600
            intervalLimit: 100
            threshold: 95
            validator: "<150"
    - phase: ab_test
      name: ab
      service: search
      a: search-v1
      b: fastsearch
      duration: 432000
      checks:
        - metric:
            name: conversions
            provider: prometheus
            query: items_sold_total
            intervalTime: 432000
            intervalLimit: 1
            validator: ">0"
    - phase: gradual_rollout
      name: rollout
      service: search
      stable: search-v1
      candidate: fastsearch
      from_traffic: 5
      to_traffic: 100
      step: 5
      step_duration: 86400
"#;

    #[test]
    fn parses_full_document() {
        let doc = StrategyDocument::from_yaml(&yaml::parse(FULL_DOC).unwrap()).unwrap();
        assert_eq!(doc.name, "fastsearch-rollout");
        assert_eq!(doc.deployment.services.len(), 1);
        let service = doc.service("search").unwrap();
        assert_eq!(service.proxy.as_deref(), Some("search-proxy:8080"));
        assert_eq!(service.versions.len(), 2);
        assert_eq!(service.versions[1].labels["track"], "canary");
        assert_eq!(service.versions[0].port, 8080);
        assert!(doc.service("product").is_none());

        assert_eq!(doc.phases.len(), 3);
        let canary = &doc.phases[0];
        assert_eq!(canary.phase_type, PhaseType::Canary);
        assert_eq!(canary.traffic, Some(1.0));
        assert_eq!(canary.duration_secs, Some(86_400));
        assert_eq!(canary.user_filter["country"], "US");
        assert_eq!(canary.checks.len(), 1);
        let check = &canary.checks[0];
        assert_eq!(check.interval_secs, 600);
        assert_eq!(check.executions, 100);
        assert_eq!(check.threshold, Some(95));
        assert_eq!(check.validator, "<150");
        assert_eq!(check.metrics[0].provider, "prometheus");
        assert_eq!(check.metrics[0].name, "search_rt");

        let ab = &doc.phases[1];
        assert_eq!(ab.phase_type, PhaseType::AbTest);
        assert_eq!(ab.stable, "search-v1");
        assert_eq!(ab.candidate, "fastsearch");
        assert_eq!(ab.checks[0].metrics[0].query, "items_sold_total");

        let rollout = &doc.phases[2];
        assert_eq!(rollout.phase_type, PhaseType::GradualRollout);
        assert_eq!(rollout.from_traffic, Some(5.0));
        assert_eq!(rollout.to_traffic, Some(100.0));
        assert_eq!(rollout.step, Some(5.0));
        assert_eq!(rollout.step_duration_secs, Some(86_400));
    }

    #[test]
    fn engine_section_parses_session_shards() {
        let source = r#"
name: x
engine:
  session_shards: 16
strategy:
  phases:
    - phase: canary
      service: search
      stable: a
      candidate: b
"#;
        let doc = StrategyDocument::from_yaml(&yaml::parse(source).unwrap()).unwrap();
        assert_eq!(doc.engine.session_shards, Some(16));
        // Absent section → defaults.
        let bare = r#"
name: x
strategy:
  phases:
    - phase: canary
      service: search
      stable: a
      candidate: b
"#;
        let doc = StrategyDocument::from_yaml(&yaml::parse(bare).unwrap()).unwrap();
        assert_eq!(doc.engine, EngineDoc::default());
        assert_eq!(doc.engine.session_shards, None);
    }

    #[test]
    fn engine_section_parses_tick_cores_and_backends() {
        let source = r#"
name: x
engine:
  session_shards: 4
  tick: 0.5
  cores: 8
  backends:
    - service: search
      version: v2
      service_time_ms: 8
      error_rate: 0.05
      replicas: 2
      queue_capacity: 128
      timeout_ms: 250
    - version: v9
strategy:
  phases:
    - phase: canary
      service: search
      stable: a
      candidate: b
"#;
        let doc = StrategyDocument::from_yaml(&yaml::parse(source).unwrap()).unwrap();
        assert_eq!(doc.engine.tick_secs, Some(0.5));
        assert_eq!(doc.engine.cores, Some(8));
        assert_eq!(doc.engine.backends.len(), 2);
        let backend = &doc.engine.backends[0];
        assert_eq!(backend.service.as_deref(), Some("search"));
        assert_eq!(backend.version, "v2");
        assert_eq!(backend.service_time_ms, 8);
        assert_eq!(backend.error_rate, 0.05);
        assert_eq!(backend.replicas, 2);
        assert_eq!(backend.queue_capacity, 128);
        assert_eq!(backend.timeout_ms, 250);
        assert!(backend.matches("search", "v2"));
        assert!(!backend.matches("product", "v2"));
        assert!(!backend.matches("search", "v1"));
        // Omitted fields take the documented defaults; no service matches
        // the version name anywhere.
        let sparse = &doc.engine.backends[1];
        assert_eq!(sparse.service, None);
        assert_eq!(sparse.service_time_ms, 10);
        assert_eq!(sparse.error_rate, 0.0);
        assert_eq!(sparse.replicas, 1);
        assert_eq!(sparse.queue_capacity, 64);
        assert_eq!(sparse.timeout_ms, 1_000);
        assert!(sparse.matches("anything", "v9"));
    }

    #[test]
    fn engine_section_rejects_invalid_tick_cores_and_backends() {
        let cases = [
            ("tick: 0", "tick"),
            ("tick: -1.5", "tick"),
            ("tick: lots", "tick"),
            ("tick: 99999", "tick"),
            ("cores: 0", "cores"),
            ("cores: 99999", "cores"),
            ("backends: 7", "backends"),
            ("backends:\n    - service: s", "version"),
            ("backends:\n    - version: v\n      replicas: 0", "replicas"),
            (
                "backends:\n    - version: v\n      error_rate: 1.5",
                "error_rate",
            ),
            (
                "backends:\n    - version: v\n      queue_capacity: 0",
                "queue_capacity",
            ),
            (
                "backends:\n    - version: v\n      timeout_ms: 0",
                "timeout_ms",
            ),
            (
                "backends:\n    - version: v\n      service_time_ms: -4",
                "service_time_ms",
            ),
        ];
        for (bad, field) in cases {
            let source = format!(
                "name: x\nengine:\n  {bad}\nstrategy:\n  phases:\n    - phase: canary\n      service: s\n      stable: a\n      candidate: b\n"
            );
            let err = StrategyDocument::from_yaml(&yaml::parse(&source).unwrap()).unwrap_err();
            assert!(err.to_string().contains(field), "{bad}: {err}");
        }
    }

    #[test]
    fn engine_section_rejects_invalid_shard_counts() {
        for bad in [
            "session_shards: 0",
            "session_shards: -4",
            "session_shards: lots",
            "session_shards: 99999999999",
        ] {
            let source = format!(
                "name: x\nengine:\n  {bad}\nstrategy:\n  phases:\n    - phase: canary\n      service: s\n      stable: a\n      candidate: b\n"
            );
            let err = StrategyDocument::from_yaml(&yaml::parse(&source).unwrap()).unwrap_err();
            assert!(err.to_string().contains("session_shards"), "{bad}: {err}");
        }
    }

    #[test]
    fn phase_type_spellings() {
        assert_eq!(PhaseType::parse("canary"), Some(PhaseType::Canary));
        assert_eq!(PhaseType::parse("Canary"), Some(PhaseType::Canary));
        assert_eq!(PhaseType::parse("dark-launch"), Some(PhaseType::DarkLaunch));
        assert_eq!(PhaseType::parse("shadow"), Some(PhaseType::DarkLaunch));
        assert_eq!(PhaseType::parse("ab_test"), Some(PhaseType::AbTest));
        assert_eq!(PhaseType::parse("AB"), Some(PhaseType::AbTest));
        assert_eq!(PhaseType::parse("rollout"), Some(PhaseType::GradualRollout));
        assert_eq!(PhaseType::parse("blue-green"), None);
    }

    #[test]
    fn missing_name_is_rejected() {
        let err =
            StrategyDocument::from_yaml(&yaml::parse("deployment:\n  services: []\n").unwrap())
                .unwrap_err();
        assert!(matches!(err, DslError::MissingField { .. }));
    }

    #[test]
    fn missing_strategy_section_is_rejected() {
        let source = "name: x\ndeployment:\n  services: []\n";
        let err = StrategyDocument::from_yaml(&yaml::parse(source).unwrap()).unwrap_err();
        assert!(err.to_string().contains("strategy"));
    }

    #[test]
    fn unknown_phase_type_is_rejected() {
        let source = r#"
name: x
strategy:
  phases:
    - phase: blue_green
      service: search
      stable: a
      candidate: b
"#;
        let err = StrategyDocument::from_yaml(&yaml::parse(source).unwrap()).unwrap_err();
        assert!(err.to_string().contains("unknown type"));
    }

    #[test]
    fn check_requires_interval_and_validator() {
        let source = r#"
name: x
strategy:
  phases:
    - phase: canary
      service: search
      stable: a
      candidate: b
      checks:
        - metric:
            name: m
            query: q
            intervalTime: 5
            intervalLimit: 3
"#;
        let err = StrategyDocument::from_yaml(&yaml::parse(source).unwrap()).unwrap_err();
        assert!(err.to_string().contains("validator"));
    }

    #[test]
    fn dark_launch_accepts_from_to_aliases() {
        let source = r#"
name: x
strategy:
  phases:
    - phase: dark_launch
      service: product
      from: product-v1
      to: product-a
      traffic: 100
      duration: 60
"#;
        let doc = StrategyDocument::from_yaml(&yaml::parse(source).unwrap()).unwrap();
        assert_eq!(doc.phases[0].stable, "product-v1");
        assert_eq!(doc.phases[0].candidate, "product-a");
        assert_eq!(doc.phases[0].name, "dark_launch");
    }

    #[test]
    fn flat_check_form_with_exception_flag() {
        let source = r#"
name: x
strategy:
  phases:
    - phase: canary
      service: search
      stable: a
      candidate: b
      checks:
        - name: error-spike
          provider: prometheus
          query: request_errors
          interval: 5
          executions: 12
          validator: "<100"
          exception: true
          weight: 2.5
"#;
        let doc = StrategyDocument::from_yaml(&yaml::parse(source).unwrap()).unwrap();
        let check = &doc.phases[0].checks[0];
        assert!(check.exception);
        assert_eq!(check.weight, Some(2.5));
        assert_eq!(check.interval_secs, 5);
        assert_eq!(check.executions, 12);
        assert_eq!(check.name, "error-spike");
    }
}
