//! Compilation of a parsed strategy document into the formal model.

use crate::ast::{CheckDoc, PhaseDoc, PhaseType, StrategyDocument};
use crate::error::DslError;
use bifrost_core::check::{CheckSpec, MetricQuery, QueryAggregation, Validator};
use bifrost_core::outcome::{OutcomeMapping, Weight};
use bifrost_core::phase::{PhaseCheck, PhaseSpec};
use bifrost_core::routing::{Percentage, RoutingMode};
use bifrost_core::service::{Endpoint, Service, ServiceCatalog, ServiceVersion};
use bifrost_core::strategy::{Strategy, StrategyBuilder};
use bifrost_core::timer::Timer;
use bifrost_core::user::UserSelector;
use std::collections::BTreeMap;
use std::time::Duration;

/// Compiles a strategy document into an enactable [`Strategy`].
///
/// # Errors
///
/// Returns a [`DslError`] when references cannot be resolved (unknown
/// services or versions), values are out of range, or the resulting model
/// fails validation.
pub fn compile(document: &StrategyDocument) -> Result<Strategy, DslError> {
    // 1. Build the service catalog from the deployment part. Services or
    //    versions that are referenced by phases but not declared are added
    //    implicitly with synthetic endpoints, which keeps simple strategy
    //    files short (the engine only needs endpoints when it talks to real
    //    deployments).
    let mut catalog = ServiceCatalog::new();
    let mut service_ids = BTreeMap::new();
    let mut version_ids: BTreeMap<(String, String), bifrost_core::VersionId> = BTreeMap::new();

    for service_doc in &document.deployment.services {
        let id = catalog.add_service(Service::new(&service_doc.name));
        service_ids.insert(service_doc.name.clone(), id);
        for version_doc in &service_doc.versions {
            let mut version = ServiceVersion::new(
                &version_doc.name,
                Endpoint::new(&version_doc.host, version_doc.port),
            );
            for (key, value) in &version_doc.labels {
                version = version.with_label(key, value);
            }
            let vid = catalog.add_version(id, version)?;
            version_ids.insert((service_doc.name.clone(), version_doc.name.clone()), vid);
        }
    }

    let mut next_synthetic_port = 9000u16;
    for phase in &document.phases {
        let service_id = *service_ids
            .entry(phase.service.clone())
            .or_insert_with(|| catalog.add_service(Service::new(&phase.service)));
        for version_name in [&phase.stable, &phase.candidate] {
            let key = (phase.service.clone(), version_name.clone());
            if let std::collections::btree_map::Entry::Vacant(e) = version_ids.entry(key) {
                let endpoint =
                    Endpoint::new(format!("{}.internal", version_name), next_synthetic_port);
                next_synthetic_port = next_synthetic_port.wrapping_add(1).max(9000);
                let vid =
                    catalog.add_version(service_id, ServiceVersion::new(version_name, endpoint))?;
                e.insert(vid);
            }
        }
    }

    // 2. Translate phases.
    let mut builder = StrategyBuilder::new(&document.name, catalog);
    let mut header_routing = false;
    for phase_doc in &document.phases {
        let phase = compile_phase(phase_doc, &service_ids, &version_ids)?;
        if matches!(
            phase_doc.routing.as_deref(),
            Some("header") | Some("header-based")
        ) {
            header_routing = true;
        }
        builder = builder.phase(phase);
    }
    if header_routing {
        builder = builder.routing_mode(RoutingMode::HeaderBased);
    }
    Ok(builder.build()?)
}

fn compile_phase(
    doc: &PhaseDoc,
    services: &BTreeMap<String, bifrost_core::ServiceId>,
    versions: &BTreeMap<(String, String), bifrost_core::VersionId>,
) -> Result<PhaseSpec, DslError> {
    let service = *services
        .get(&doc.service)
        .ok_or_else(|| DslError::unknown("service", &doc.service))?;
    let stable = *versions
        .get(&(doc.service.clone(), doc.stable.clone()))
        .ok_or_else(|| DslError::unknown("version", &doc.stable))?;
    let candidate = *versions
        .get(&(doc.service.clone(), doc.candidate.clone()))
        .ok_or_else(|| DslError::unknown("version", &doc.candidate))?;
    let context = format!("phase '{}'", doc.name);

    let percentage = |value: f64, field: &str| {
        Percentage::new(value).map_err(|e| DslError::invalid(&context, field, e.to_string()))
    };

    let mut phase = match doc.phase_type {
        PhaseType::Canary => {
            let share = percentage(doc.traffic.unwrap_or(5.0), "traffic")?;
            PhaseSpec::canary(&doc.name, service, stable, candidate, share)
        }
        PhaseType::DarkLaunch => {
            let share = percentage(doc.traffic.unwrap_or(100.0), "traffic")?;
            PhaseSpec::dark_launch(&doc.name, service, stable, candidate, share)
        }
        PhaseType::AbTest => PhaseSpec::ab_test(&doc.name, service, stable, candidate),
        PhaseType::GradualRollout => {
            let from = percentage(doc.from_traffic.unwrap_or(5.0), "from_traffic")?;
            let to = percentage(doc.to_traffic.unwrap_or(100.0), "to_traffic")?;
            let step = percentage(doc.step.unwrap_or(5.0), "step")?;
            let step_duration = Duration::from_secs(doc.step_duration_secs.unwrap_or(60));
            PhaseSpec::gradual_rollout(
                &doc.name,
                service,
                stable,
                candidate,
                from,
                to,
                step,
                step_duration,
            )
        }
    };

    if let Some(duration) = doc.duration_secs {
        phase = phase.duration_secs(duration);
    }
    if let Some(sticky) = doc.sticky {
        phase = phase.sticky(sticky);
    }
    phase = phase.selector(compile_selector(doc, &context)?);
    for check in &doc.checks {
        phase = phase.check(compile_check(check, &context)?);
    }
    Ok(phase)
}

/// Builds the user selection function `η` of a phase from its filter and
/// percentage fields.
fn compile_selector(doc: &PhaseDoc, context: &str) -> Result<UserSelector, DslError> {
    let mut selectors = Vec::new();
    for (key, value) in &doc.user_filter {
        selectors.push(UserSelector::attribute(key, value));
    }
    if let Some(p) = doc.user_percentage {
        let p = Percentage::new(p)
            .map_err(|e| DslError::invalid(context, "user_percentage", e.to_string()))?;
        selectors.push(UserSelector::percentage(p));
    }
    Ok(match selectors.len() {
        0 => UserSelector::All,
        1 => selectors.into_iter().next().expect("one selector"),
        _ => UserSelector::And(selectors),
    })
}

fn compile_check(doc: &CheckDoc, phase_context: &str) -> Result<PhaseCheck, DslError> {
    let context = format!("{phase_context} check '{}'", doc.name);
    let validator = Validator::parse(&doc.validator)
        .map_err(|e| DslError::invalid(&context, "validator", e.to_string()))?;
    let mut queries = Vec::with_capacity(doc.metrics.len());
    for metric in &doc.metrics {
        let selector = bifrost_metrics_selector(&metric.query)
            .map_err(|message| DslError::invalid(&context, "query", message))?;
        let mut query = MetricQuery::new(&metric.provider, &metric.name, selector.0);
        for (key, value) in selector.1 {
            query = query.with_label(key, value);
        }
        if let Some(window) = metric.window {
            query = query.with_window_secs(window);
        }
        if let Some(aggregation) = &metric.aggregation {
            query = query.with_aggregation(parse_aggregation(aggregation, &context)?);
        }
        queries.push((query, validator));
    }
    let spec = CheckSpec::all_of(queries);
    let timer = Timer::from_secs(doc.interval_secs, doc.executions)
        .map_err(|e| DslError::invalid(&context, "intervalTime", e.to_string()))?;

    let mut check = if doc.exception {
        PhaseCheck::exception(&doc.name, spec, timer)
    } else {
        // The simplified DSL semantics of the paper: the check passes only if
        // at least `threshold` of the executions succeed (default: all).
        let threshold = doc.threshold.unwrap_or(doc.executions as i64);
        let mapping = OutcomeMapping::binary(threshold, -1, 1)
            .map_err(|e| DslError::invalid(&context, "threshold", e.to_string()))?;
        PhaseCheck::basic(&doc.name, spec, timer, mapping)
    };
    if let Some(weight) = doc.weight {
        check = check.with_weight(
            Weight::new(weight)
                .map_err(|e| DslError::invalid(&context, "weight", e.to_string()))?,
        );
    }
    Ok(check)
}

/// Splits a Prometheus-style selector `metric{label="value",…}` into the
/// metric name and its label pairs without depending on `bifrost-metrics`.
fn bifrost_metrics_selector(selector: &str) -> Result<(String, Vec<(String, String)>), String> {
    let selector = selector.trim();
    let Some(brace) = selector.find('{') else {
        if selector.is_empty() {
            return Err("empty query".to_string());
        }
        return Ok((selector.to_string(), Vec::new()));
    };
    let name = selector[..brace].trim();
    if name.is_empty() {
        return Err(format!("query '{selector}' has an empty metric name"));
    }
    let rest = &selector[brace + 1..];
    let Some(end) = rest.rfind('}') else {
        return Err(format!("query '{selector}' is missing a closing brace"));
    };
    let mut labels = Vec::new();
    for pair in rest[..end].split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("label pair '{pair}' is missing '='"))?;
        labels.push((
            key.trim().to_string(),
            value.trim().trim_matches('"').to_string(),
        ));
    }
    Ok((name.to_string(), labels))
}

fn parse_aggregation(text: &str, context: &str) -> Result<QueryAggregation, DslError> {
    match text.to_ascii_lowercase().as_str() {
        "last" => Ok(QueryAggregation::Last),
        "mean" | "avg" | "average" => Ok(QueryAggregation::Mean),
        "sum" => Ok(QueryAggregation::Sum),
        "max" => Ok(QueryAggregation::Max),
        "min" => Ok(QueryAggregation::Min),
        "count" => Ok(QueryAggregation::Count),
        "rate" | "increase" => Ok(QueryAggregation::Rate),
        other => Err(DslError::invalid(
            context,
            "aggregation",
            format!("unknown aggregation '{other}'"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_strategy;
    use bifrost_core::routing::RoutingRule;

    const RUNNING_EXAMPLE: &str = r#"
name: fastsearch-rollout
deployment:
  services:
    - service: search
      proxy: search-proxy:8080
      versions:
        - name: search-v1
          host: 10.0.0.1
          port: 8080
        - name: fastsearch
          host: 10.0.0.2
          port: 8080
strategy:
  phases:
    - phase: canary
      name: canary-1
      service: search
      stable: search-v1
      candidate: fastsearch
      traffic: 1
      duration: 86400
      user_filter:
        country: US
      checks:
        - metric:
            name: response_time
            provider: prometheus
            query: response_time_ms{instance="search:80"}
            intervalTime: 600
            intervalLimit: 100
            threshold: 95
            validator: "<150"
    - phase: gradual_rollout
      name: ramp
      service: search
      stable: search-v1
      candidate: fastsearch
      from_traffic: 5
      to_traffic: 50
      step: 15
      step_duration: 86400
    - phase: ab_test
      name: ab
      service: search
      a: search-v1
      b: fastsearch
      duration: 432000
      checks:
        - metric:
            name: items_sold
            provider: prometheus
            query: items_sold_total{version="fastsearch"}
            intervalTime: 432000
            intervalLimit: 1
            validator: ">0"
"#;

    #[test]
    fn compiles_running_example_end_to_end() {
        let strategy = parse_strategy(RUNNING_EXAMPLE).unwrap();
        assert_eq!(strategy.name(), "fastsearch-rollout");
        // canary (1) + rollout steps 5,20,35,50 (4) + ab (1) + success + rollback
        assert_eq!(strategy.automaton().state_count(), 8);
        assert_eq!(strategy.services().service_count(), 1);
        assert_eq!(strategy.services().version_count(), 2);
        strategy.validate().unwrap();

        // The canary state restricts itself to US users.
        let start = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        match start.routing().first().unwrap() {
            RoutingRule::Split {
                selector, split, ..
            } => {
                assert_eq!(selector, &UserSelector::attribute("country", "US"));
                let shares: Vec<f64> = split.shares().iter().map(|(_, p)| p.value()).collect();
                assert_eq!(shares, vec![99.0, 1.0]);
            }
            other => panic!("expected split rule, got {other:?}"),
        }
        // Check: thresholds of 95/100 executions with the <150 validator.
        let check = &start.checks()[0];
        assert_eq!(check.timer().repetitions(), 100);
        assert_eq!(check.spec().queries().len(), 1);
        assert_eq!(check.spec().queries()[0].0.metric(), "response_time_ms");
        assert_eq!(
            check.spec().queries()[0].0.labels()["instance"],
            "search:80"
        );
    }

    #[test]
    fn undeclared_services_get_synthetic_endpoints() {
        let source = r#"
name: minimal
strategy:
  phases:
    - phase: canary
      service: product
      stable: product-v1
      candidate: product-a
      traffic: 5
      duration: 60
"#;
        let strategy = parse_strategy(source).unwrap();
        assert_eq!(strategy.services().service_count(), 1);
        assert_eq!(strategy.services().version_count(), 2);
        let (_, service) = strategy.services().service_by_name("product").unwrap();
        assert_eq!(service.name(), "product");
    }

    #[test]
    fn header_routing_flag_switches_mode() {
        let source = r#"
name: hdr
strategy:
  phases:
    - phase: ab_test
      service: search
      a: v1
      b: v2
      duration: 60
      routing: header
"#;
        let strategy = parse_strategy(source).unwrap();
        let start = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        match start.routing().first().unwrap() {
            RoutingRule::Split { mode, sticky, .. } => {
                assert_eq!(*mode, RoutingMode::HeaderBased);
                assert!(*sticky, "A/B tests default to sticky sessions");
            }
            other => panic!("unexpected rule {other:?}"),
        }
    }

    #[test]
    fn exception_checks_fall_back_to_rollback() {
        let source = r#"
name: exc
strategy:
  phases:
    - phase: canary
      service: search
      stable: v1
      candidate: v2
      traffic: 5
      duration: 60
      checks:
        - name: spike
          query: request_errors
          interval: 12
          executions: 5
          validator: "<100"
          exception: true
"#;
        let strategy = parse_strategy(source).unwrap();
        let start = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        let check = &start.checks()[0];
        assert!(check.is_exception());
        assert_eq!(check.fallback(), Some(strategy.rollback_state()));
    }

    #[test]
    fn invalid_validator_is_reported() {
        let source = r#"
name: bad
strategy:
  phases:
    - phase: canary
      service: s
      stable: a
      candidate: b
      duration: 60
      checks:
        - name: c
          query: q
          interval: 5
          executions: 3
          validator: "~5"
"#;
        let err = parse_strategy(source).unwrap_err();
        assert!(matches!(err, DslError::InvalidField { .. }));
    }

    #[test]
    fn invalid_percentage_is_reported() {
        let source = r#"
name: bad
strategy:
  phases:
    - phase: canary
      service: s
      stable: a
      candidate: b
      traffic: 250
      duration: 60
"#;
        let err = parse_strategy(source).unwrap_err();
        assert!(err.to_string().contains("traffic"));
    }

    #[test]
    fn dark_launch_compiles_to_shadow_rule() {
        let source = r#"
name: dark
strategy:
  phases:
    - phase: dark_launch
      service: product
      from: product-v1
      to: product-a
      traffic: 100
      duration: 60
"#;
        let strategy = parse_strategy(source).unwrap();
        let start = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        assert!(start.routing()[0].is_shadow());
    }

    #[test]
    fn selector_combines_filter_and_percentage() {
        let source = r#"
name: filtered
strategy:
  phases:
    - phase: canary
      service: s
      stable: a
      candidate: b
      traffic: 5
      duration: 60
      user_percentage: 20
      user_filter:
        country: US
"#;
        let strategy = parse_strategy(source).unwrap();
        let start = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        match start.routing().first().unwrap() {
            RoutingRule::Split { selector, .. } => match selector {
                UserSelector::And(parts) => assert_eq!(parts.len(), 2),
                other => panic!("expected And selector, got {other:?}"),
            },
            _ => panic!("expected split"),
        }
    }

    #[test]
    fn selector_helper_parses_queries() {
        let (name, labels) =
            bifrost_metrics_selector("request_errors{instance=\"search:80\"}").unwrap();
        assert_eq!(name, "request_errors");
        assert_eq!(
            labels,
            vec![("instance".to_string(), "search:80".to_string())]
        );
        let (name, labels) = bifrost_metrics_selector("up").unwrap();
        assert_eq!(name, "up");
        assert!(labels.is_empty());
        assert!(bifrost_metrics_selector("").is_err());
        assert!(bifrost_metrics_selector("{x=\"1\"}").is_err());
        assert!(bifrost_metrics_selector("m{x=\"1\"").is_err());
        assert!(bifrost_metrics_selector("m{x}").is_err());
    }

    #[test]
    fn aggregation_spellings() {
        for (text, expected) in [
            ("last", QueryAggregation::Last),
            ("mean", QueryAggregation::Mean),
            ("avg", QueryAggregation::Mean),
            ("sum", QueryAggregation::Sum),
            ("max", QueryAggregation::Max),
            ("min", QueryAggregation::Min),
            ("count", QueryAggregation::Count),
            ("rate", QueryAggregation::Rate),
        ] {
            assert_eq!(parse_aggregation(text, "ctx").unwrap(), expected);
        }
        assert!(parse_aggregation("p99", "ctx").is_err());
    }
}
