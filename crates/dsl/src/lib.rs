//! # bifrost-dsl
//!
//! The Bifrost domain-specific language: a YAML-based, version-controllable
//! format in which developers and release engineers describe multi-phase live
//! testing strategies without spelling out every automaton state by hand.
//!
//! The crate contains three layers:
//!
//! * [`yaml`] — a self-contained parser for the YAML subset the DSL needs
//!   (block mappings, block sequences, scalars, quoting, comments). Using an
//!   in-repo parser keeps the reproduction inside the approved dependency
//!   set.
//! * [`ast`] — the document model of a strategy file: the deployment part
//!   (services, versions, proxies) and the strategy part (phases with their
//!   routes, checks, and metrics).
//! * [`mod@compile`] — semantic validation and compilation of a document into a
//!   [`bifrost_core::Strategy`], i.e. into the formal model the engine
//!   enacts.
//!
//! ```
//! use bifrost_dsl::parse_strategy;
//!
//! let source = r#"
//! name: quick-canary
//! deployment:
//!   services:
//!     - service: search
//!       versions:
//!         - name: v1
//!           host: 10.0.0.1
//!           port: 8080
//!         - name: v2-fast
//!           host: 10.0.0.2
//!           port: 8080
//! strategy:
//!   phases:
//!     - phase: canary
//!       name: canary-5
//!       service: search
//!       stable: v1
//!       candidate: v2-fast
//!       traffic: 5
//!       duration: 60
//! "#;
//! let strategy = parse_strategy(source)?;
//! assert_eq!(strategy.name(), "quick-canary");
//! assert_eq!(strategy.automaton().state_count(), 3);
//! # Ok::<(), bifrost_dsl::DslError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod yaml;

pub use ast::{
    BackendDoc, CheckDoc, DeploymentDoc, EngineDoc, MetricDoc, PhaseDoc, PhaseType, ServiceDoc,
    StrategyDocument, VersionDoc,
};
pub use compile::compile;
pub use error::DslError;
pub use yaml::YamlValue;

use bifrost_core::Strategy;

/// Parses a DSL source string all the way to an enactable strategy:
/// YAML → document → compiled [`Strategy`].
///
/// # Errors
///
/// Returns a [`DslError`] describing the first syntax or semantic problem
/// found.
pub fn parse_strategy(source: &str) -> Result<Strategy, DslError> {
    let yaml = yaml::parse(source)?;
    let document = StrategyDocument::from_yaml(&yaml)?;
    compile(&document)
}

/// Parses a DSL source string into its document model without compiling it
/// (used by validation-only tooling such as `bifrost-cli validate`).
///
/// # Errors
///
/// Returns a [`DslError`] describing the first syntax problem found.
pub fn parse_document(source: &str) -> Result<StrategyDocument, DslError> {
    let yaml = yaml::parse(source)?;
    StrategyDocument::from_yaml(&yaml)
}
