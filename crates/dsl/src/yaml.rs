//! A self-contained parser for the YAML subset used by the Bifrost DSL.
//!
//! Supported constructs:
//!
//! * block mappings (`key: value` and `key:` followed by an indented block),
//! * block sequences (`- item`, including compact mappings `- key: value`),
//! * scalars: integers, floats, booleans, null, single/double-quoted strings,
//!   and plain strings,
//! * `#` comments and blank lines,
//! * simple flow sequences of scalars (`[a, b, c]`).
//!
//! Anchors, aliases, tags, multi-line scalars, and flow mappings are not
//! supported — the DSL does not need them.

use crate::error::DslError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum YamlValue {
    /// `null` / `~` / empty value.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer scalar.
    Int(i64),
    /// A floating-point scalar.
    Float(f64),
    /// A string scalar (quoted or plain).
    Str(String),
    /// A sequence of values.
    Seq(Vec<YamlValue>),
    /// A mapping with insertion-ordered keys.
    Map(Vec<(String, YamlValue)>),
}

impl YamlValue {
    /// The value of a mapping key, if this is a map and the key exists.
    pub fn get(&self, key: &str) -> Option<&YamlValue> {
        match self {
            YamlValue::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            YamlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an integer (integers only, no float coercion).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            YamlValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a float (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            YamlValue::Float(v) => Some(*v),
            YamlValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// This value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            YamlValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a sequence.
    pub fn as_seq(&self) -> Option<&[YamlValue]> {
        match self {
            YamlValue::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// This value as a map (entries in document order).
    pub fn as_map(&self) -> Option<&[(String, YamlValue)]> {
        match self {
            YamlValue::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, YamlValue::Null)
    }

    /// Renders the value as a scalar string when it is a scalar of any type
    /// (used for fields that accept either `5` or `"5"`).
    pub fn scalar_to_string(&self) -> Option<String> {
        match self {
            YamlValue::Str(s) => Some(s.clone()),
            YamlValue::Int(v) => Some(v.to_string()),
            YamlValue::Float(v) => Some(v.to_string()),
            YamlValue::Bool(v) => Some(v.to_string()),
            _ => None,
        }
    }

    /// Collects a map into a `BTreeMap<String, String>` of scalar values,
    /// skipping non-scalar entries.
    pub fn to_string_map(&self) -> BTreeMap<String, String> {
        self.as_map()
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|(k, v)| v.scalar_to_string().map(|v| (k.clone(), v)))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// One logical source line: its indentation, content, and 1-based number.
#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    content: String,
    number: usize,
}

/// Parses a YAML document into a [`YamlValue`].
///
/// # Errors
///
/// Returns [`DslError::Syntax`] describing the first problem found.
pub fn parse(source: &str) -> Result<YamlValue, DslError> {
    let lines = logical_lines(source);
    if lines.is_empty() {
        return Ok(YamlValue::Null);
    }
    let mut pos = 0;
    let value = parse_block(&lines, &mut pos, lines[0].indent)?;
    if pos < lines.len() {
        return Err(DslError::syntax(
            lines[pos].number,
            format!("unexpected content '{}'", lines[pos].content),
        ));
    }
    Ok(value)
}

/// Strips comments and blank lines, records indentation.
fn logical_lines(source: &str) -> Vec<Line> {
    source
        .lines()
        .enumerate()
        .filter_map(|(idx, raw)| {
            let without_comment = strip_comment(raw);
            let trimmed = without_comment.trim_end();
            if trimmed.trim().is_empty() {
                return None;
            }
            let indent = trimmed.len() - trimmed.trim_start().len();
            Some(Line {
                indent,
                content: trimmed.trim_start().to_string(),
                number: idx + 1,
            })
        })
        .collect()
}

/// Removes a trailing comment that is not inside a quoted string.
fn strip_comment(line: &str) -> String {
    let mut result = String::with_capacity(line.len());
    let mut in_single = false;
    let mut in_double = false;
    for c in line.chars() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => break,
            _ => {}
        }
        result.push(c);
    }
    result
}

/// Parses the block starting at `pos` whose lines are indented exactly
/// `indent`.
fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<YamlValue, DslError> {
    let line = &lines[*pos];
    if line.content.starts_with("- ") || line.content == "-" {
        parse_sequence(lines, pos, indent)
    } else {
        parse_mapping(lines, pos, indent)
    }
}

fn parse_sequence(lines: &[Line], pos: &mut usize, indent: usize) -> Result<YamlValue, DslError> {
    let mut items = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(DslError::syntax(
                line.number,
                format!("unexpected indentation {} (expected {indent})", line.indent),
            ));
        }
        if !(line.content.starts_with("- ") || line.content == "-") {
            break;
        }
        let rest = line.content[1..].trim_start().to_string();
        let item_number = line.number;
        if rest.is_empty() {
            // "-" alone: the item is the indented block below.
            *pos += 1;
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent)?);
            } else {
                items.push(YamlValue::Null);
            }
        } else if let Some((key, value)) = split_key_value(&rest) {
            // Compact mapping: "- key: value" — the mapping continues on the
            // following lines indented deeper than the dash.
            *pos += 1;
            let mut entries = Vec::new();
            let first_value = if value.is_empty() {
                // The value of the first key may itself be a nested block.
                if *pos < lines.len() && lines[*pos].indent > indent + 1 {
                    let child_indent = lines[*pos].indent;
                    parse_block(lines, pos, child_indent)?
                } else {
                    YamlValue::Null
                }
            } else {
                parse_scalar(&value, item_number)?
            };
            entries.push((key, first_value));
            // Remaining keys of the compact mapping sit deeper than the dash
            // column.
            while *pos < lines.len()
                && lines[*pos].indent > indent
                && !(lines[*pos].content.starts_with("- ") || lines[*pos].content == "-")
            {
                let continuation_indent = lines[*pos].indent;
                let map = parse_mapping(lines, pos, continuation_indent)?;
                if let YamlValue::Map(more) = map {
                    entries.extend(more);
                }
            }
            items.push(YamlValue::Map(entries));
        } else {
            // Plain scalar item.
            items.push(parse_scalar(&rest, item_number)?);
            *pos += 1;
        }
    }
    Ok(YamlValue::Seq(items))
}

fn parse_mapping(lines: &[Line], pos: &mut usize, indent: usize) -> Result<YamlValue, DslError> {
    let mut entries: Vec<(String, YamlValue)> = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(DslError::syntax(
                line.number,
                format!("unexpected indentation {} (expected {indent})", line.indent),
            ));
        }
        if line.content.starts_with("- ") || line.content == "-" {
            break;
        }
        let Some((key, value)) = split_key_value(&line.content) else {
            return Err(DslError::syntax(
                line.number,
                format!("expected 'key: value', got '{}'", line.content),
            ));
        };
        if entries.iter().any(|(existing, _)| existing == &key) {
            return Err(DslError::syntax(
                line.number,
                format!("duplicate key '{key}'"),
            ));
        }
        let line_number = line.number;
        *pos += 1;
        let parsed = if value.is_empty() {
            // Nested block (map or sequence) or null.
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                parse_block(lines, pos, child_indent)?
            } else if *pos < lines.len()
                && lines[*pos].indent == indent
                && (lines[*pos].content.starts_with("- ") || lines[*pos].content == "-")
            {
                // Sequences are commonly indented at the same level as the key.
                parse_sequence(lines, pos, indent)?
            } else {
                YamlValue::Null
            }
        } else {
            parse_scalar(&value, line_number)?
        };
        entries.push((key, parsed));
    }
    Ok(YamlValue::Map(entries))
}

/// Splits `key: value` respecting quotes. Returns `None` when the line has
/// no top-level colon.
fn split_key_value(content: &str) -> Option<(String, String)> {
    let mut in_single = false;
    let mut in_double = false;
    for (idx, c) in content.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ':' if !in_single && !in_double => {
                let after = &content[idx + 1..];
                if after.is_empty() || after.starts_with(' ') {
                    let key = content[..idx].trim().trim_matches('"').trim_matches('\'');
                    return Some((key.to_string(), after.trim().to_string()));
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses a scalar token.
fn parse_scalar(token: &str, line: usize) -> Result<YamlValue, DslError> {
    let token = token.trim();
    if token.is_empty() || token == "~" || token == "null" {
        return Ok(YamlValue::Null);
    }
    if let Some(rest) = token.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(DslError::syntax(
                line,
                format!("unterminated flow sequence '{token}'"),
            ));
        };
        let items = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| parse_scalar(s, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(YamlValue::Seq(items));
    }
    if (token.starts_with('"') && token.ends_with('"') && token.len() >= 2)
        || (token.starts_with('\'') && token.ends_with('\'') && token.len() >= 2)
    {
        return Ok(YamlValue::Str(token[1..token.len() - 1].to_string()));
    }
    match token {
        "true" | "True" => return Ok(YamlValue::Bool(true)),
        "false" | "False" => return Ok(YamlValue::Bool(false)),
        _ => {}
    }
    if let Ok(int) = token.parse::<i64>() {
        return Ok(YamlValue::Int(int));
    }
    if let Ok(float) = token.parse::<f64>() {
        return Ok(YamlValue::Float(float));
    }
    Ok(YamlValue::Str(token.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        let doc = parse("a: 1\nb: 2.5\nc: true\nd: hello\ne: \"quoted: value\"\nf: null\ng: ~\n")
            .unwrap();
        assert_eq!(doc.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("d").unwrap().as_str(), Some("hello"));
        assert_eq!(doc.get("e").unwrap().as_str(), Some("quoted: value"));
        assert!(doc.get("f").unwrap().is_null());
        assert!(doc.get("g").unwrap().is_null());
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parses_nested_mappings() {
        let doc = parse("outer:\n  inner:\n    deep: 3\n  sibling: x\n").unwrap();
        let outer = doc.get("outer").unwrap();
        assert_eq!(
            outer.get("inner").unwrap().get("deep").unwrap().as_i64(),
            Some(3)
        );
        assert_eq!(outer.get("sibling").unwrap().as_str(), Some("x"));
        assert_eq!(outer.as_map().unwrap().len(), 2);
    }

    #[test]
    fn parses_sequences_of_scalars_and_maps() {
        let doc = parse("items:\n  - 1\n  - 2\npeople:\n  - name: ada\n    age: 36\n  - name: grace\n    age: 45\n").unwrap();
        let items = doc.get("items").unwrap().as_seq().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].as_i64(), Some(2));
        let people = doc.get("people").unwrap().as_seq().unwrap();
        assert_eq!(people.len(), 2);
        assert_eq!(people[0].get("name").unwrap().as_str(), Some("ada"));
        assert_eq!(people[1].get("age").unwrap().as_i64(), Some(45));
    }

    #[test]
    fn parses_sequence_at_same_indent_as_key() {
        let doc = parse("services:\n- search\n- product\n").unwrap();
        let services = doc.get("services").unwrap().as_seq().unwrap();
        assert_eq!(services.len(), 2);
        assert_eq!(services[0].as_str(), Some("search"));
    }

    #[test]
    fn parses_compact_mapping_with_nested_block() {
        let source = r#"
routes:
  - route:
      from: search
      to: fastSearch
    filters:
      - traffic:
          percentage: 100
          shadow: true
          intervalTime: 60
"#;
        let doc = parse(source).unwrap();
        let routes = doc.get("routes").unwrap().as_seq().unwrap();
        assert_eq!(routes.len(), 1);
        let route = routes[0].get("route").unwrap();
        assert_eq!(route.get("from").unwrap().as_str(), Some("search"));
        let filters = routes[0].get("filters").unwrap().as_seq().unwrap();
        let traffic = filters[0].get("traffic").unwrap();
        assert_eq!(traffic.get("percentage").unwrap().as_i64(), Some(100));
        assert_eq!(traffic.get("shadow").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_listing1_style_metric() {
        let source = r#"
- metric:
    providers:
      - prometheus:
          name: search_error
          query: request_errors{instance="search:80"}
    intervalTime: 5
    intervalLimit: 12
    threshold: 12
    validator: "<5"
"#;
        let doc = parse(source).unwrap();
        let seq = doc.as_seq().unwrap();
        let metric = seq[0].get("metric").unwrap();
        assert_eq!(metric.get("intervalTime").unwrap().as_i64(), Some(5));
        assert_eq!(metric.get("validator").unwrap().as_str(), Some("<5"));
        let providers = metric.get("providers").unwrap().as_seq().unwrap();
        let prom = providers[0].get("prometheus").unwrap();
        assert_eq!(prom.get("name").unwrap().as_str(), Some("search_error"));
        assert_eq!(
            prom.get("query").unwrap().as_str(),
            Some("request_errors{instance=\"search:80\"}")
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let doc =
            parse("# header\n\na: 1 # trailing\n\n# footer\nb: \"#not a comment\"\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("#not a comment"));
    }

    #[test]
    fn flow_sequences_of_scalars() {
        let doc = parse("thresholds: [3, 4]\nwords: [a, b]\n").unwrap();
        let thresholds = doc.get("thresholds").unwrap().as_seq().unwrap();
        assert_eq!(thresholds[0].as_i64(), Some(3));
        assert_eq!(thresholds[1].as_i64(), Some(4));
        assert_eq!(doc.get("words").unwrap().as_seq().unwrap().len(), 2);
    }

    #[test]
    fn empty_document_is_null() {
        assert!(parse("").unwrap().is_null());
        assert!(parse("\n# just a comment\n").unwrap().is_null());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate key"));
    }

    #[test]
    fn bad_indentation_is_reported_with_line_number() {
        let err = parse("a:\n  b: 1\n    c: 2\n").unwrap_err();
        match err {
            DslError::Syntax { line, .. } => assert_eq!(line, 3),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn non_mapping_content_is_rejected() {
        let err = parse("just a scalar line without colon\nanother\n").unwrap_err();
        assert!(matches!(err, DslError::Syntax { .. }));
    }

    #[test]
    fn unterminated_flow_sequence_is_rejected() {
        assert!(parse("xs: [1, 2\n").is_err());
    }

    #[test]
    fn scalar_helpers() {
        assert_eq!(YamlValue::Int(3).scalar_to_string(), Some("3".into()));
        assert_eq!(
            YamlValue::Bool(true).scalar_to_string(),
            Some("true".into())
        );
        assert_eq!(YamlValue::Float(2.5).scalar_to_string(), Some("2.5".into()));
        assert_eq!(
            YamlValue::Str("x".into()).scalar_to_string(),
            Some("x".into())
        );
        assert_eq!(YamlValue::Null.scalar_to_string(), None);
        let map = parse("a: 1\nb: two\nc:\n  - 1\n").unwrap();
        let strings = map.to_string_map();
        assert_eq!(strings.len(), 2);
        assert_eq!(strings["a"], "1");
        assert_eq!(strings["b"], "two");
    }

    #[test]
    fn null_sequence_items() {
        let doc = parse("xs:\n  -\n  - 2\n").unwrap();
        let xs = doc.get("xs").unwrap().as_seq().unwrap();
        assert!(xs[0].is_null());
        assert_eq!(xs[1].as_i64(), Some(2));
    }
}
