//! Error type of the DSL crate.

use bifrost_core::ModelError;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing or compiling a strategy document.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DslError {
    /// A YAML syntax error with the offending line number (1-based).
    Syntax {
        /// 1-based line number in the source.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A required field is missing from a document element.
    MissingField {
        /// The element containing the field (e.g. `"phase 'canary-5'"`).
        context: String,
        /// The missing field name.
        field: String,
    },
    /// A field has an unexpected type or value.
    InvalidField {
        /// The element containing the field.
        context: String,
        /// The field name.
        field: String,
        /// What was wrong.
        message: String,
    },
    /// A semantic reference could not be resolved (unknown service, version,
    /// provider, …).
    UnknownReference {
        /// What kind of entity was referenced (e.g. `"service"`).
        kind: String,
        /// The dangling name.
        name: String,
    },
    /// Compilation into the formal model failed.
    Model(ModelError),
}

impl DslError {
    /// Convenience constructor for syntax errors.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        Self::Syntax {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for missing fields.
    pub fn missing(context: impl Into<String>, field: impl Into<String>) -> Self {
        Self::MissingField {
            context: context.into(),
            field: field.into(),
        }
    }

    /// Convenience constructor for invalid fields.
    pub fn invalid(
        context: impl Into<String>,
        field: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self::InvalidField {
            context: context.into(),
            field: field.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for unresolved references.
    pub fn unknown(kind: impl Into<String>, name: impl Into<String>) -> Self {
        Self::UnknownReference {
            kind: kind.into(),
            name: name.into(),
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            DslError::MissingField { context, field } => {
                write!(f, "{context} is missing required field '{field}'")
            }
            DslError::InvalidField {
                context,
                field,
                message,
            } => write!(f, "{context} has invalid field '{field}': {message}"),
            DslError::UnknownReference { kind, name } => {
                write!(f, "unknown {kind} '{name}'")
            }
            DslError::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl Error for DslError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DslError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for DslError {
    fn from(err: ModelError) -> Self {
        DslError::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DslError::syntax(3, "bad indentation").to_string(),
            "syntax error on line 3: bad indentation"
        );
        assert_eq!(
            DslError::missing("phase 'canary'", "service").to_string(),
            "phase 'canary' is missing required field 'service'"
        );
        assert!(DslError::invalid("metric", "validator", "no operator")
            .to_string()
            .contains("invalid field 'validator'"));
        assert_eq!(
            DslError::unknown("service", "payments").to_string(),
            "unknown service 'payments'"
        );
        let model: DslError = ModelError::InvalidPercentage(200.0).into();
        assert!(model.to_string().contains("model error"));
        assert!(model.source().is_some());
        assert!(DslError::syntax(1, "x").source().is_none());
    }
}
