//! The request types of the case-study workload and their mix.

use bifrost_simnet::SimRng;
use serde::{Deserialize, Serialize};

/// The four request types of the JMeter test suite, each touching different
/// parts of the case-study application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RequestKind {
    /// `POST /products/{id}/buy`: writes to the database, empty response
    /// body.
    Buy,
    /// `GET /products/{id}`: reads one product, small response body.
    Details,
    /// `GET /products`: reads all products including buyers, large response
    /// body.
    Products,
    /// `GET /products/search?q=…`: product service calls the search service,
    /// small response body.
    Search,
}

impl RequestKind {
    /// All request kinds, in a stable order.
    pub const ALL: [RequestKind; 4] = [
        RequestKind::Buy,
        RequestKind::Details,
        RequestKind::Products,
        RequestKind::Search,
    ];

    /// A short name used in metrics labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Buy => "buy",
            RequestKind::Details => "details",
            RequestKind::Products => "products",
            RequestKind::Search => "search",
        }
    }

    /// Approximate request payload size in bytes.
    pub fn request_bytes(self) -> usize {
        match self {
            RequestKind::Buy => 512,
            RequestKind::Details => 128,
            RequestKind::Products => 128,
            RequestKind::Search => 196,
        }
    }

    /// Approximate response payload size in bytes.
    pub fn response_bytes(self) -> usize {
        match self {
            RequestKind::Buy => 64,
            RequestKind::Details => 2 * 1024,
            RequestKind::Products => 64 * 1024,
            RequestKind::Search => 4 * 1024,
        }
    }

    /// Whether the request writes to the database.
    pub fn is_write(self) -> bool {
        matches!(self, RequestKind::Buy)
    }

    /// Whether the request fans out to the search service.
    pub fn touches_search(self) -> bool {
        matches!(self, RequestKind::Search)
    }
}

/// A probability mix over request kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    weights: [(RequestKind, f64); 4],
}

impl Default for RequestMix {
    fn default() -> Self {
        Self::paper_mix()
    }
}

impl RequestMix {
    /// The evaluation's mix: the four request types are exercised evenly.
    pub fn paper_mix() -> Self {
        Self {
            weights: [
                (RequestKind::Buy, 0.25),
                (RequestKind::Details, 0.25),
                (RequestKind::Products, 0.25),
                (RequestKind::Search, 0.25),
            ],
        }
    }

    /// A read-heavy mix (used by ablation benches).
    pub fn read_heavy() -> Self {
        Self {
            weights: [
                (RequestKind::Buy, 0.05),
                (RequestKind::Details, 0.40),
                (RequestKind::Products, 0.15),
                (RequestKind::Search, 0.40),
            ],
        }
    }

    /// Creates a custom mix. Weights are normalised; non-positive totals fall
    /// back to the default mix.
    pub fn custom(buy: f64, details: f64, products: f64, search: f64) -> Self {
        let total = buy + details + products + search;
        if total <= 0.0 {
            return Self::paper_mix();
        }
        Self {
            weights: [
                (RequestKind::Buy, buy / total),
                (RequestKind::Details, details / total),
                (RequestKind::Products, products / total),
                (RequestKind::Search, search / total),
            ],
        }
    }

    /// The probability of a given kind.
    pub fn probability(&self, kind: RequestKind) -> f64 {
        self.weights
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Draws a request kind.
    pub fn sample(&self, rng: &mut SimRng) -> RequestKind {
        let draw = rng.uniform();
        let mut cumulative = 0.0;
        for (kind, weight) in &self.weights {
            cumulative += weight;
            if draw < cumulative {
                return *kind;
            }
        }
        RequestKind::Search
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert_eq!(RequestKind::ALL.len(), 4);
        assert!(RequestKind::Buy.is_write());
        assert!(!RequestKind::Details.is_write());
        assert!(RequestKind::Search.touches_search());
        assert!(!RequestKind::Products.touches_search());
        assert!(RequestKind::Products.response_bytes() > RequestKind::Details.response_bytes());
        assert_eq!(RequestKind::Buy.name(), "buy");
        assert!(RequestKind::Buy.request_bytes() > 0);
    }

    #[test]
    fn default_mix_is_even_and_normalised() {
        let mix = RequestMix::default();
        let total: f64 = RequestKind::ALL.iter().map(|k| mix.probability(*k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for kind in RequestKind::ALL {
            assert!((mix.probability(kind) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn custom_mix_normalises_and_handles_degenerate_input() {
        let mix = RequestMix::custom(1.0, 1.0, 2.0, 0.0);
        assert!((mix.probability(RequestKind::Products) - 0.5).abs() < 1e-12);
        assert_eq!(mix.probability(RequestKind::Search), 0.0);
        assert_eq!(
            RequestMix::custom(0.0, 0.0, 0.0, 0.0),
            RequestMix::paper_mix()
        );
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mix = RequestMix::read_heavy();
        let mut rng = SimRng::seeded(13);
        let n = 50_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(mix.sample(&mut rng)).or_insert(0usize) += 1;
        }
        for kind in RequestKind::ALL {
            let expected = mix.probability(kind);
            let measured = *counts.get(&kind).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (measured - expected).abs() < 0.01,
                "{kind:?}: {measured} vs {expected}"
            );
        }
    }
}
