//! Response-time recording and per-phase summarisation.
//!
//! The JMeter load generator of the paper records the end-to-end response
//! time of every request; the evaluation then reports a 3-second moving
//! average over the experiment timeline (Figure 6) and per-phase summary
//! statistics (Table 1). The [`ResponseRecorder`] reproduces both.

use crate::requests::RequestKind;
use bifrost_metrics::{moving_average, SummaryStats};
use bifrost_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One recorded request/response pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseRecord {
    /// When the request entered the system.
    pub at: SimTime,
    /// The request kind.
    pub kind: RequestKind,
    /// End-to-end response time.
    pub response_time: Duration,
    /// Whether the request completed successfully (HTTP 2xx).
    pub success: bool,
}

/// A named time window of the experiment (one release phase).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseWindow {
    /// The phase name (e.g. `"Canary"`).
    pub name: String,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
}

impl PhaseWindow {
    /// Creates a window.
    pub fn new(name: impl Into<String>, from: SimTime, to: SimTime) -> Self {
        Self {
            name: name.into(),
            from,
            to,
        }
    }

    /// Whether a timestamp falls inside the window.
    pub fn contains(&self, at: SimTime) -> bool {
        at >= self.from && at < self.to
    }
}

/// Records response times and produces the evaluation's aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseRecorder {
    records: Vec<ResponseRecord>,
}

impl ResponseRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, record: ResponseRecord) {
        self.records.push(record);
    }

    /// Convenience: records a successful request.
    pub fn record_success(&mut self, at: SimTime, kind: RequestKind, response_time: Duration) {
        self.record(ResponseRecord {
            at,
            kind,
            response_time,
            success: true,
        });
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[ResponseRecord] {
        &self.records
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The fraction of failed requests.
    pub fn error_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| !r.success).count() as f64 / self.records.len() as f64
    }

    /// Response times (in milliseconds) of successful requests within a
    /// window; `None` selects the whole run.
    pub fn response_times_ms(&self, window: Option<&PhaseWindow>) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.success)
            .filter(|r| window.map(|w| w.contains(r.at)).unwrap_or(true))
            .map(|r| r.response_time.as_secs_f64() * 1_000.0)
            .collect()
    }

    /// Summary statistics of a window (Table 1 row).
    pub fn summary(&self, window: Option<&PhaseWindow>) -> Option<SummaryStats> {
        SummaryStats::compute(&self.response_times_ms(window))
    }

    /// Per-request-kind summaries over the whole run.
    pub fn summary_by_kind(&self) -> Vec<(RequestKind, SummaryStats)> {
        RequestKind::ALL
            .iter()
            .filter_map(|kind| {
                let times: Vec<f64> = self
                    .records
                    .iter()
                    .filter(|r| r.success && r.kind == *kind)
                    .map(|r| r.response_time.as_secs_f64() * 1_000.0)
                    .collect();
                SummaryStats::compute(&times).map(|s| (*kind, s))
            })
            .collect()
    }

    /// The moving-average response-time series `(elapsed seconds, ms)` with
    /// the given window (Figure 6 uses 3 seconds).
    pub fn moving_average_series(&self, window: Duration) -> Vec<(f64, f64)> {
        let mut points: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter(|r| r.success)
            .map(|r| (r.at.as_secs_f64(), r.response_time.as_secs_f64() * 1_000.0))
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        moving_average(&points, window.as_secs_f64())
    }

    /// Mean response time (ms) in a window, if any request completed there.
    pub fn mean_ms(&self, window: Option<&PhaseWindow>) -> Option<f64> {
        self.summary(window).map(|s| s.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at_secs: f64, ms: f64, success: bool) -> ResponseRecord {
        ResponseRecord {
            at: SimTime::from_secs_f64(at_secs),
            kind: RequestKind::Details,
            response_time: Duration::from_secs_f64(ms / 1_000.0),
            success,
        }
    }

    #[test]
    fn summary_over_whole_run_and_windows() {
        let mut recorder = ResponseRecorder::new();
        for i in 0..100 {
            let ms = if i < 50 { 20.0 } else { 30.0 };
            recorder.record(record(i as f64, ms, true));
        }
        assert_eq!(recorder.len(), 100);
        assert!(!recorder.is_empty());
        let all = recorder.summary(None).unwrap();
        assert!((all.mean - 25.0).abs() < 1e-9);

        let first_half = PhaseWindow::new("first", SimTime::ZERO, SimTime::from_secs(50));
        let second_half =
            PhaseWindow::new("second", SimTime::from_secs(50), SimTime::from_secs(100));
        assert!((recorder.summary(Some(&first_half)).unwrap().mean - 20.0).abs() < 1e-9);
        assert!((recorder.mean_ms(Some(&second_half)).unwrap() - 30.0).abs() < 1e-9);
        assert!(first_half.contains(SimTime::from_secs(10)));
        assert!(!first_half.contains(SimTime::from_secs(50)));
    }

    #[test]
    fn failures_are_excluded_from_latency_but_counted_in_error_rate() {
        let mut recorder = ResponseRecorder::new();
        recorder.record(record(1.0, 20.0, true));
        recorder.record(record(2.0, 500.0, false));
        recorder.record_success(
            SimTime::from_secs(3),
            RequestKind::Buy,
            Duration::from_millis(30),
        );
        assert_eq!(recorder.response_times_ms(None).len(), 2);
        assert!((recorder.error_rate() - 1.0 / 3.0).abs() < 1e-12);
        let summary = recorder.summary(None).unwrap();
        assert!((summary.mean - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_has_no_summary() {
        let recorder = ResponseRecorder::new();
        assert!(recorder.summary(None).is_none());
        assert_eq!(recorder.error_rate(), 0.0);
        assert!(recorder
            .moving_average_series(Duration::from_secs(3))
            .is_empty());
        assert!(recorder.summary_by_kind().is_empty());
    }

    #[test]
    fn moving_average_smooths_spikes() {
        let mut recorder = ResponseRecorder::new();
        for i in 0..60 {
            let ms = if i == 30 { 200.0 } else { 20.0 };
            recorder.record(record(i as f64 * 0.5, ms, true));
        }
        let series = recorder.moving_average_series(Duration::from_secs(3));
        assert_eq!(series.len(), 60);
        let peak = series.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        // The 200 ms spike is averaged over a 3 s window (7 samples).
        assert!(peak < 60.0, "peak {peak}");
        assert!(peak > 20.0);
    }

    #[test]
    fn per_kind_summaries() {
        let mut recorder = ResponseRecorder::new();
        recorder.record_success(
            SimTime::from_secs(1),
            RequestKind::Buy,
            Duration::from_millis(10),
        );
        recorder.record_success(
            SimTime::from_secs(2),
            RequestKind::Products,
            Duration::from_millis(50),
        );
        recorder.record_success(
            SimTime::from_secs(3),
            RequestKind::Products,
            Duration::from_millis(70),
        );
        let by_kind = recorder.summary_by_kind();
        assert_eq!(by_kind.len(), 2);
        let products = by_kind
            .iter()
            .find(|(k, _)| *k == RequestKind::Products)
            .map(|(_, s)| s)
            .unwrap();
        assert!((products.mean - 60.0).abs() < 1e-9);
    }
}
