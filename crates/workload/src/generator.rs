//! The open-loop arrival process: when requests arrive and what kind they
//! are.

use crate::requests::{RequestKind, RequestMix};
use bifrost_core::ids::UserId;
use bifrost_core::seed::Seed;
use bifrost_simnet::{SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The load profile of an experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Steady-state request rate (requests per second).
    pub requests_per_second: f64,
    /// Ramp-up period during which the rate grows linearly from zero.
    pub ramp_up: Duration,
    /// Total duration of traffic generation (including the ramp-up).
    pub duration: Duration,
    /// The request mix.
    pub mix: RequestMix,
    /// Size of the simulated user population issuing the requests.
    pub user_count: u64,
    /// Whether arrivals are jittered (exponential inter-arrival times) or
    /// perfectly periodic.
    pub poisson_arrivals: bool,
}

impl LoadProfile {
    /// The paper's profile: 30 s ramp-up, 35 req/s steady state, even mix.
    pub fn paper_profile(duration: Duration) -> Self {
        Self {
            requests_per_second: 35.0,
            ramp_up: Duration::from_secs(30),
            duration,
            mix: RequestMix::paper_mix(),
            user_count: 1_000,
            poisson_arrivals: false,
        }
    }

    /// Overrides the request rate (builder style).
    pub fn with_rate(mut self, requests_per_second: f64) -> Self {
        self.requests_per_second = requests_per_second;
        self
    }

    /// Overrides the user population size (builder style).
    pub fn with_users(mut self, user_count: u64) -> Self {
        self.user_count = user_count.max(1);
        self
    }

    /// Switches to exponential (Poisson) inter-arrival times (builder style).
    pub fn with_poisson_arrivals(mut self, poisson: bool) -> Self {
        self.poisson_arrivals = poisson;
        self
    }

    /// Overrides the request mix (builder style).
    pub fn with_mix(mut self, mix: RequestMix) -> Self {
        self.mix = mix;
        self
    }

    /// Generates the full arrival plan for the profile.
    pub fn plan(&self, rng: &mut SimRng) -> ArrivalPlan {
        let mut arrivals = Vec::new();
        let mut now = 0.0f64;
        let end = self.duration.as_secs_f64();
        let ramp = self.ramp_up.as_secs_f64();
        while now < end {
            // Current target rate: linear ramp, then steady state.
            let rate = if now < ramp && ramp > 0.0 {
                (self.requests_per_second * (now / ramp)).max(1.0)
            } else {
                self.requests_per_second
            };
            let gap = if self.poisson_arrivals {
                rng.exponential(1.0 / rate)
            } else {
                1.0 / rate
            };
            now += gap;
            if now >= end {
                break;
            }
            let kind = self.mix.sample(rng);
            let user =
                UserId::new((rng.uniform() * self.user_count as f64) as u64 % self.user_count);
            arrivals.push(Arrival {
                at: SimTime::from_secs_f64(now),
                kind,
                user,
            });
        }
        ArrivalPlan { arrivals }
    }

    /// Generates the arrival plan from a [`Seed`], decorrelated into the
    /// `"workload"` stream. This is the entry point the multi-trial runner
    /// uses: the same seed always yields the same plan, and different layers
    /// seeded from the same trial seed consume distinct random sequences.
    pub fn plan_seeded(&self, seed: Seed) -> ArrivalPlan {
        let mut rng = SimRng::seeded(seed.stream("workload").value());
        self.plan(&mut rng)
    }
}

/// One planned request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// When the request arrives at the application entry point.
    pub at: SimTime,
    /// The request type.
    pub kind: RequestKind,
    /// The user issuing the request.
    pub user: UserId,
}

/// A complete, time-ordered arrival plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalPlan {
    arrivals: Vec<Arrival>,
}

impl ArrivalPlan {
    /// The arrivals in time order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of planned requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Iterates the plan as per-tick batches: consecutive arrivals whose
    /// timestamps fall into the same `tick`-sized window are grouped into
    /// one [`ArrivalBatch`]. Empty windows are skipped. This is how the
    /// engine's traffic simulation consumes a plan — one scheduler event
    /// per non-empty tick instead of one per request.
    pub fn batches(&self, tick: Duration) -> TickBatches<'_> {
        TickBatches {
            arrivals: &self.arrivals,
            tick_micros: tick.as_micros().max(1) as u64,
            cursor: 0,
        }
    }

    /// The average request rate over the window `[from, to)`.
    pub fn rate_between(&self, from: SimTime, to: SimTime) -> f64 {
        let window = (to - from).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let count = self
            .arrivals
            .iter()
            .filter(|a| a.at >= from && a.at < to)
            .count();
        count as f64 / window
    }
}

/// One tick's worth of arrivals (see [`ArrivalPlan::batches`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalBatch<'a> {
    /// The tick index (`floor(arrival time / tick)`), shared by every
    /// arrival in the batch.
    pub index: u64,
    /// The end of the tick window (exclusive): all arrivals in the batch
    /// have happened by this virtual time.
    pub end: SimTime,
    /// The arrivals of the tick, in time order.
    pub arrivals: &'a [Arrival],
}

/// Iterator over the non-empty per-tick batches of an [`ArrivalPlan`].
#[derive(Debug, Clone)]
pub struct TickBatches<'a> {
    arrivals: &'a [Arrival],
    tick_micros: u64,
    cursor: usize,
}

impl<'a> Iterator for TickBatches<'a> {
    type Item = ArrivalBatch<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.arrivals.get(self.cursor)?;
        let index = first.at.as_micros() / self.tick_micros;
        let start = self.cursor;
        let mut end = self.cursor + 1;
        while self
            .arrivals
            .get(end)
            .is_some_and(|a| a.at.as_micros() / self.tick_micros == index)
        {
            end += 1;
        }
        self.cursor = end;
        Some(ArrivalBatch {
            index,
            end: SimTime::from_micros((index + 1) * self.tick_micros),
            arrivals: &self.arrivals[start..end],
        })
    }
}

impl IntoIterator for ArrivalPlan {
    type Item = Arrival;
    type IntoIter = std::vec::IntoIter<Arrival>;

    fn into_iter(self) -> Self::IntoIter {
        self.arrivals.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_produces_expected_rate() {
        let profile = LoadProfile::paper_profile(Duration::from_secs(120));
        let mut rng = SimRng::seeded(1);
        let plan = profile.plan(&mut rng);
        assert!(!plan.is_empty());
        // After ramp-up the steady-state rate is ~35 req/s.
        let steady = plan.rate_between(SimTime::from_secs(60), SimTime::from_secs(120));
        assert!((steady - 35.0).abs() < 2.0, "steady rate {steady}");
        // During the first seconds of the ramp the rate is much lower.
        let early = plan.rate_between(SimTime::ZERO, SimTime::from_secs(10));
        assert!(early < 20.0, "early rate {early}");
        // Arrivals are time-ordered.
        assert!(plan.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn poisson_arrivals_have_similar_mean_rate() {
        let profile = LoadProfile::paper_profile(Duration::from_secs(200))
            .with_poisson_arrivals(true)
            .with_rate(20.0);
        let mut rng = SimRng::seeded(5);
        let plan = profile.plan(&mut rng);
        let rate = plan.rate_between(SimTime::from_secs(40), SimTime::from_secs(200));
        assert!((rate - 20.0).abs() < 2.0, "rate {rate}");
    }

    #[test]
    fn users_are_drawn_from_the_population() {
        let profile = LoadProfile::paper_profile(Duration::from_secs(60)).with_users(10);
        let mut rng = SimRng::seeded(3);
        let plan = profile.plan(&mut rng);
        assert!(plan.arrivals().iter().all(|a| a.user.raw() < 10));
        let distinct: std::collections::BTreeSet<_> =
            plan.arrivals().iter().map(|a| a.user).collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let profile = LoadProfile::paper_profile(Duration::from_secs(90));
        let a = profile.plan(&mut SimRng::seeded(7));
        let b = profile.plan(&mut SimRng::seeded(7));
        assert_eq!(a, b);
        let c = profile.plan(&mut SimRng::seeded(8));
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_plan_is_deterministic_and_stream_scoped() {
        let profile = LoadProfile::paper_profile(Duration::from_secs(90));
        let a = profile.plan_seeded(Seed::new(7));
        let b = profile.plan_seeded(Seed::new(7));
        assert_eq!(a, b);
        assert_ne!(a, profile.plan_seeded(Seed::new(8)));
        // The workload stream is decorrelated from the raw seed: using the
        // raw value directly yields a different plan.
        assert_ne!(a, profile.plan(&mut SimRng::seeded(7)));
    }

    #[test]
    fn mix_override_changes_composition() {
        let profile = LoadProfile::paper_profile(Duration::from_secs(300))
            .with_mix(RequestMix::custom(0.0, 0.0, 0.0, 1.0));
        let mut rng = SimRng::seeded(2);
        let plan = profile.plan(&mut rng);
        assert!(plan
            .arrivals()
            .iter()
            .all(|a| a.kind == RequestKind::Search));
        assert_eq!(plan.len(), plan.into_iter().count());
    }

    #[test]
    fn batches_partition_the_plan_by_tick() {
        let profile =
            LoadProfile::paper_profile(Duration::from_secs(60)).with_poisson_arrivals(true);
        let plan = profile.plan(&mut SimRng::seeded(9));
        let tick = Duration::from_secs(1);
        let batches: Vec<_> = plan.batches(tick).collect();
        // Every arrival appears exactly once, in order.
        let total: usize = batches.iter().map(|b| b.arrivals.len()).sum();
        assert_eq!(total, plan.len());
        // Tick indices are strictly increasing and each batch's arrivals fall
        // inside its window.
        assert!(batches.windows(2).all(|w| w[0].index < w[1].index));
        for batch in &batches {
            let start_us = batch.index * 1_000_000;
            let end_us = (batch.index + 1) * 1_000_000;
            assert_eq!(batch.end, SimTime::from_micros(end_us));
            assert!(batch
                .arrivals
                .iter()
                .all(|a| (start_us..end_us).contains(&a.at.as_micros())));
        }
        // A tick wider than the plan yields a single batch.
        assert_eq!(plan.batches(Duration::from_secs(3_600)).count(), 1);
        // An empty plan yields no batches.
        let empty = ArrivalPlan {
            arrivals: Vec::new(),
        };
        assert_eq!(empty.batches(tick).count(), 0);
    }

    #[test]
    fn degenerate_rate_window() {
        let profile = LoadProfile::paper_profile(Duration::from_secs(30));
        let plan = profile.plan(&mut SimRng::seeded(1));
        assert_eq!(
            plan.rate_between(SimTime::from_secs(10), SimTime::from_secs(10)),
            0.0
        );
    }
}
