//! # bifrost-workload
//!
//! The load-generation substrate of the evaluation: an open-loop request
//! generator standing in for the Apache JMeter test suite of the paper, plus
//! the response-time recording and summarisation used to produce Figure 6
//! and Table 1.
//!
//! The paper's load profile: after a 30-second ramp-up, a steady 35 requests
//! per second hit the product service, drawn from a mix of four request
//! types (Buy, Details, Products, Search) that touch different parts of the
//! case-study application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod recorder;
pub mod requests;

pub use generator::{Arrival, ArrivalBatch, ArrivalPlan, LoadProfile, TickBatches};
pub use recorder::{PhaseWindow, ResponseRecord, ResponseRecorder};
pub use requests::{RequestKind, RequestMix};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::generator::{Arrival, ArrivalBatch, ArrivalPlan, LoadProfile, TickBatches};
    pub use crate::recorder::{PhaseWindow, ResponseRecord, ResponseRecorder};
    pub use crate::requests::{RequestKind, RequestMix};
}
