//! Statistical evaluation of A/B tests.
//!
//! The paper's A/B phase collects business metrics for two alternatives over
//! a predefined experiment time and then *statistically evaluates* which
//! version fared better (or whether there was a significant difference at
//! all). This module provides the two classical tests that cover the
//! evaluation's needs:
//!
//! * a **two-proportion z-test** for conversion-style metrics (e.g. the
//!   fraction of buy requests that result in a sold item per variant), and
//! * **Welch's t-test** for continuous metrics (e.g. response times).
//!
//! Both report a two-sided p-value computed from a normal approximation
//! (Welch's degrees of freedom are large for the sample sizes live tests
//! collect, so the normal approximation is adequate and keeps the crate
//! dependency-free).

use serde::{Deserialize, Serialize};

/// The decision of an A/B comparison at a given significance level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbVerdict {
    /// Variant A performed significantly better.
    AWins,
    /// Variant B performed significantly better.
    BWins,
    /// No statistically significant difference was detected.
    Inconclusive,
}

/// The outcome of a statistical comparison between two variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbTestResult {
    /// The point estimate for variant A (proportion or mean).
    pub estimate_a: f64,
    /// The point estimate for variant B (proportion or mean).
    pub estimate_b: f64,
    /// The difference `estimate_a - estimate_b`.
    pub difference: f64,
    /// The z-statistic (or t-statistic under the normal approximation).
    pub statistic: f64,
    /// The two-sided p-value.
    pub p_value: f64,
    /// The verdict at the significance level the test was run with.
    pub verdict: AbVerdict,
    /// The significance level used.
    pub alpha: f64,
}

impl AbTestResult {
    /// Whether the difference is statistically significant.
    pub fn is_significant(&self) -> bool {
        self.verdict != AbVerdict::Inconclusive
    }
}

/// Conversion counts of one variant: how many trials (e.g. buy requests) and
/// how many successes (e.g. completed purchases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conversions {
    /// Number of trials.
    pub trials: u64,
    /// Number of successes (must not exceed `trials`).
    pub successes: u64,
}

impl Conversions {
    /// Creates a conversion count, clamping successes to trials.
    pub fn new(trials: u64, successes: u64) -> Self {
        Self {
            trials,
            successes: successes.min(trials),
        }
    }

    /// The conversion rate (0 for zero trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

/// The standard normal cumulative distribution function, via the
/// Abramowitz–Stegun 7.1.26 approximation of `erf` (absolute error < 1.5e-7,
/// far below what release decisions need).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// Two-sided p-value for a z-statistic.
fn two_sided_p(z: f64) -> f64 {
    2.0 * (1.0 - normal_cdf(z.abs()))
}

fn verdict(difference: f64, p_value: f64, alpha: f64) -> AbVerdict {
    if p_value >= alpha || difference == 0.0 {
        AbVerdict::Inconclusive
    } else if difference > 0.0 {
        AbVerdict::AWins
    } else {
        AbVerdict::BWins
    }
}

/// Two-proportion z-test: compares the conversion rates of two variants.
///
/// Returns an inconclusive result if either variant has no trials or the
/// pooled variance is degenerate (all successes or all failures overall).
pub fn two_proportion_z_test(a: Conversions, b: Conversions, alpha: f64) -> AbTestResult {
    let p_a = a.rate();
    let p_b = b.rate();
    let difference = p_a - p_b;
    let n_a = a.trials as f64;
    let n_b = b.trials as f64;
    if a.trials == 0 || b.trials == 0 {
        return AbTestResult {
            estimate_a: p_a,
            estimate_b: p_b,
            difference,
            statistic: 0.0,
            p_value: 1.0,
            verdict: AbVerdict::Inconclusive,
            alpha,
        };
    }
    let pooled = (a.successes + b.successes) as f64 / (n_a + n_b);
    let variance = pooled * (1.0 - pooled) * (1.0 / n_a + 1.0 / n_b);
    if variance <= 0.0 {
        return AbTestResult {
            estimate_a: p_a,
            estimate_b: p_b,
            difference,
            statistic: 0.0,
            p_value: 1.0,
            verdict: AbVerdict::Inconclusive,
            alpha,
        };
    }
    let statistic = difference / variance.sqrt();
    let p_value = two_sided_p(statistic);
    AbTestResult {
        estimate_a: p_a,
        estimate_b: p_b,
        difference,
        statistic,
        p_value,
        verdict: verdict(difference, p_value, alpha),
        alpha,
    }
}

/// Welch's t-test (normal approximation): compares the means of two samples
/// with possibly unequal variances, e.g. per-variant response times. For
/// metrics where *lower is better* (latencies), interpret [`AbVerdict::AWins`]
/// as "A has the higher mean" and negate accordingly at the call site, or use
/// [`welch_lower_is_better`].
pub fn welch_t_test(a: &[f64], b: &[f64], alpha: f64) -> AbTestResult {
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var = |s: &[f64], m: f64| {
        if s.len() < 2 {
            0.0
        } else {
            s.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (s.len() - 1) as f64
        }
    };
    if a.is_empty() || b.is_empty() {
        return AbTestResult {
            estimate_a: if a.is_empty() { 0.0 } else { mean(a) },
            estimate_b: if b.is_empty() { 0.0 } else { mean(b) },
            difference: 0.0,
            statistic: 0.0,
            p_value: 1.0,
            verdict: AbVerdict::Inconclusive,
            alpha,
        };
    }
    let mean_a = mean(a);
    let mean_b = mean(b);
    let difference = mean_a - mean_b;
    let se = (var(a, mean_a) / a.len() as f64 + var(b, mean_b) / b.len() as f64).sqrt();
    let (statistic, p_value) = if se <= 0.0 {
        (0.0, if difference == 0.0 { 1.0 } else { 0.0 })
    } else {
        let t = difference / se;
        (t, two_sided_p(t))
    };
    AbTestResult {
        estimate_a: mean_a,
        estimate_b: mean_b,
        difference,
        statistic,
        p_value,
        verdict: verdict(difference, p_value, alpha),
        alpha,
    }
}

/// Welch's t-test from pre-aggregated summary statistics `(mean, sd, n)`
/// instead of raw samples. The CI perf-regression gate uses this: baseline
/// benchmark reports store only per-point summaries, and the gate still
/// wants to say whether a mean shift is statistically meaningful given the
/// trial counts and spreads.
pub fn welch_from_summary(
    mean_a: f64,
    sd_a: f64,
    n_a: usize,
    mean_b: f64,
    sd_b: f64,
    n_b: usize,
    alpha: f64,
) -> AbTestResult {
    let difference = mean_a - mean_b;
    if n_a == 0 || n_b == 0 {
        return AbTestResult {
            estimate_a: mean_a,
            estimate_b: mean_b,
            difference: 0.0,
            statistic: 0.0,
            p_value: 1.0,
            verdict: AbVerdict::Inconclusive,
            alpha,
        };
    }
    let se = (sd_a * sd_a / n_a as f64 + sd_b * sd_b / n_b as f64).sqrt();
    let (statistic, p_value) = if se <= 0.0 {
        (0.0, if difference == 0.0 { 1.0 } else { 0.0 })
    } else {
        let t = difference / se;
        (t, two_sided_p(t))
    };
    AbTestResult {
        estimate_a: mean_a,
        estimate_b: mean_b,
        difference,
        statistic,
        p_value,
        verdict: verdict(difference, p_value, alpha),
        alpha,
    }
}

/// Welch's t-test for metrics where lower values are better (e.g. response
/// times): the verdict is flipped so that [`AbVerdict::AWins`] means variant A
/// has the *lower* mean.
pub fn welch_lower_is_better(a: &[f64], b: &[f64], alpha: f64) -> AbTestResult {
    let mut result = welch_t_test(a, b, alpha);
    result.verdict = match result.verdict {
        AbVerdict::AWins => AbVerdict::BWins,
        AbVerdict::BWins => AbVerdict::AWins,
        AbVerdict::Inconclusive => AbVerdict::Inconclusive,
    };
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999_999);
        assert!(normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn conversions_helpers() {
        let c = Conversions::new(100, 120);
        assert_eq!(c.successes, 100);
        assert_eq!(c.rate(), 1.0);
        assert_eq!(Conversions::new(0, 0).rate(), 0.0);
        assert_eq!(Conversions::new(200, 50).rate(), 0.25);
    }

    #[test]
    fn clearly_better_variant_wins_the_z_test() {
        // 12% vs 8% conversion over 5000 trials each: a real, detectable lift.
        let a = Conversions::new(5_000, 600);
        let b = Conversions::new(5_000, 400);
        let result = two_proportion_z_test(a, b, 0.05);
        assert!(result.p_value < 0.01);
        assert_eq!(result.verdict, AbVerdict::AWins);
        assert!(result.is_significant());
        assert!(result.statistic > 2.0);
        assert!((result.estimate_a - 0.12).abs() < 1e-12);

        // Swapping the variants flips the verdict.
        let flipped = two_proportion_z_test(b, a, 0.05);
        assert_eq!(flipped.verdict, AbVerdict::BWins);
    }

    #[test]
    fn small_samples_are_inconclusive() {
        // The same 12% vs 8% lift on 50 trials each is statistically invisible.
        let a = Conversions::new(50, 6);
        let b = Conversions::new(50, 4);
        let result = two_proportion_z_test(a, b, 0.05);
        assert_eq!(result.verdict, AbVerdict::Inconclusive);
        assert!(!result.is_significant());
        assert!(result.p_value > 0.05);
    }

    #[test]
    fn equal_rates_are_inconclusive() {
        let a = Conversions::new(1_000, 100);
        let b = Conversions::new(1_000, 100);
        let result = two_proportion_z_test(a, b, 0.05);
        assert_eq!(result.verdict, AbVerdict::Inconclusive);
        // The erf approximation carries ~1e-7 absolute error at z = 0.
        assert!((result.p_value - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_are_inconclusive() {
        assert_eq!(
            two_proportion_z_test(Conversions::new(0, 0), Conversions::new(10, 5), 0.05).verdict,
            AbVerdict::Inconclusive
        );
        assert_eq!(
            two_proportion_z_test(Conversions::new(10, 0), Conversions::new(10, 0), 0.05).verdict,
            AbVerdict::Inconclusive
        );
        assert_eq!(
            two_proportion_z_test(Conversions::new(10, 10), Conversions::new(10, 10), 0.05).verdict,
            AbVerdict::Inconclusive
        );
    }

    #[test]
    fn welch_detects_mean_differences() {
        let a: Vec<f64> = (0..200).map(|i| 100.0 + (i % 10) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 110.0 + (i % 10) as f64).collect();
        let result = welch_t_test(&a, &b, 0.05);
        assert_eq!(result.verdict, AbVerdict::BWins);
        assert!(result.p_value < 0.001);
        assert!((result.difference + 10.0).abs() < 1e-9);

        // For latency-style metrics A (the lower one) should win.
        let lower = welch_lower_is_better(&a, &b, 0.05);
        assert_eq!(lower.verdict, AbVerdict::AWins);
    }

    #[test]
    fn welch_on_identical_or_empty_samples() {
        let a = vec![5.0, 5.0, 5.0];
        let result = welch_t_test(&a, &a, 0.05);
        assert_eq!(result.verdict, AbVerdict::Inconclusive);
        assert_eq!(welch_t_test(&[], &a, 0.05).verdict, AbVerdict::Inconclusive);
        assert_eq!(welch_t_test(&a, &[], 0.05).verdict, AbVerdict::Inconclusive);
        // Zero variance but different means → decisive.
        let b = vec![6.0, 6.0, 6.0];
        assert_eq!(welch_t_test(&a, &b, 0.05).verdict, AbVerdict::BWins);
    }

    #[test]
    fn welch_from_summary_matches_sample_test() {
        let a: Vec<f64> = (0..200).map(|i| 100.0 + (i % 10) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 110.0 + (i % 10) as f64).collect();
        let from_samples = welch_t_test(&a, &b, 0.05);
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let sd = |s: &[f64], m: f64| {
            (s.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (s.len() - 1) as f64).sqrt()
        };
        let (ma, mb) = (mean(&a), mean(&b));
        let from_summary =
            welch_from_summary(ma, sd(&a, ma), a.len(), mb, sd(&b, mb), b.len(), 0.05);
        assert_eq!(from_summary.verdict, from_samples.verdict);
        assert!((from_summary.statistic - from_samples.statistic).abs() < 1e-9);
        assert!((from_summary.p_value - from_samples.p_value).abs() < 1e-9);
        // Degenerate inputs.
        assert_eq!(
            welch_from_summary(1.0, 0.0, 0, 2.0, 0.0, 5, 0.05).verdict,
            AbVerdict::Inconclusive
        );
        assert_eq!(
            welch_from_summary(1.0, 0.0, 5, 2.0, 0.0, 5, 0.05).verdict,
            AbVerdict::BWins
        );
    }

    #[test]
    fn welch_noise_is_usually_inconclusive() {
        // Two samples from the same distribution should mostly be
        // inconclusive at alpha = 0.01.
        let a: Vec<f64> = (0..500).map(|i| ((i * 37) % 100) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| ((i * 53 + 11) % 100) as f64).collect();
        let result = welch_t_test(&a, &b, 0.01);
        assert_eq!(result.verdict, AbVerdict::Inconclusive);
    }
}
