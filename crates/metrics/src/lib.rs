//! # bifrost-metrics
//!
//! The monitoring-data substrate (`Ω` in the formal model) of the Bifrost
//! reproduction: an in-process time-series store with a Prometheus-flavoured
//! query interface, a provider registry the engine resolves check queries
//! against, a cAdvisor-like resource collector, and summary statistics used
//! by the evaluation harness.
//!
//! The paper's prototype queries Prometheus (fed by cAdvisor and the
//! application services). This crate substitutes that external dependency
//! with a deterministic, simulation-friendly store: services and the
//! simulator push [`Sample`]s, checks pull scalars through
//! [`MetricsProvider`] implementations.
//!
//! ```
//! use bifrost_metrics::prelude::*;
//!
//! let store = SharedMetricStore::new();
//! store.record(
//!     SeriesKey::new("request_errors").with_label("instance", "search:80"),
//!     Sample::new(TimestampMs::from_secs(10), 2.0),
//! );
//! let query = RangeQuery::new("request_errors")
//!     .with_label("instance", "search:80")
//!     .over_window_secs(60)
//!     .aggregate(Aggregation::Sum);
//! let value = store.evaluate(&query, TimestampMs::from_secs(30));
//! assert_eq!(value, Some(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collector;
pub mod provider;
pub mod query;
pub mod sample;
pub mod series;
pub mod significance;
pub mod stats;
pub mod store;
pub mod traffic;

pub use collector::{ResourceCollector, ResourceSample};
pub use provider::{MetricsProvider, ProviderRegistry, StoreProvider};
pub use query::{Aggregation, LabelMatcher, RangeQuery};
pub use sample::{Labels, Sample, SeriesKey, TimestampMs};
pub use series::TimeSeries;
pub use significance::{
    two_proportion_z_test, welch_from_summary, welch_lower_is_better, welch_t_test, AbTestResult,
    AbVerdict, Conversions,
};
pub use stats::{bin_average, moving_average, DistributionSummary, SummaryStats};
pub use store::{MetricStore, SharedMetricStore};
pub use traffic::TrafficSeriesRecorder;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::collector::{ResourceCollector, ResourceSample};
    pub use crate::provider::{MetricsProvider, ProviderRegistry, StoreProvider};
    pub use crate::query::{Aggregation, LabelMatcher, RangeQuery};
    pub use crate::sample::{Labels, Sample, SeriesKey, TimestampMs};
    pub use crate::series::TimeSeries;
    pub use crate::significance::{
        two_proportion_z_test, welch_from_summary, welch_lower_is_better, welch_t_test,
        AbTestResult, AbVerdict, Conversions,
    };
    pub use crate::stats::{bin_average, moving_average, DistributionSummary, SummaryStats};
    pub use crate::store::{MetricStore, SharedMetricStore};
    pub use crate::traffic::TrafficSeriesRecorder;
}
