//! cAdvisor-like resource collector.
//!
//! In the paper, cAdvisor scrapes per-container CPU and memory utilisation
//! and pushes it to Prometheus. The simulated deployments do the same
//! through this collector: the simulator reports per-container resource
//! usage at a fixed scrape interval, the collector writes the standard
//! series (`container_cpu_utilization`, `container_memory_bytes`) into the
//! shared store, and checks/ experiment harnesses query them back out.

use crate::sample::{SeriesKey, TimestampMs};
use crate::store::SharedMetricStore;
use serde::{Deserialize, Serialize};

/// Metric name used for CPU utilisation samples (0–100, percent of one core).
pub const CPU_UTILIZATION_METRIC: &str = "container_cpu_utilization";
/// Metric name used for memory usage samples (bytes).
pub const MEMORY_BYTES_METRIC: &str = "container_memory_bytes";

/// One scrape of a container's resource usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSample {
    /// The container (or service instance) name, e.g. `"bifrost-engine"`.
    pub container: String,
    /// CPU utilisation in percent of a single core (may exceed 100 on
    /// multi-core containers).
    pub cpu_percent: f64,
    /// Resident memory in bytes.
    pub memory_bytes: f64,
}

impl ResourceSample {
    /// Creates a resource sample.
    pub fn new(container: impl Into<String>, cpu_percent: f64, memory_bytes: f64) -> Self {
        Self {
            container: container.into(),
            cpu_percent,
            memory_bytes,
        }
    }
}

/// Writes resource samples into a shared metric store under the standard
/// cAdvisor-style series.
#[derive(Debug, Clone)]
pub struct ResourceCollector {
    store: SharedMetricStore,
    scrapes: u64,
}

impl ResourceCollector {
    /// Creates a collector writing into `store`.
    pub fn new(store: SharedMetricStore) -> Self {
        Self { store, scrapes: 0 }
    }

    /// Records one scrape of one container at virtual time `now`.
    pub fn scrape(&mut self, now: TimestampMs, sample: &ResourceSample) {
        self.store.record_value(
            SeriesKey::new(CPU_UTILIZATION_METRIC).with_label("container", &sample.container),
            now,
            sample.cpu_percent,
        );
        self.store.record_value(
            SeriesKey::new(MEMORY_BYTES_METRIC).with_label("container", &sample.container),
            now,
            sample.memory_bytes,
        );
        self.scrapes += 1;
    }

    /// Records a batch of scrapes at the same timestamp.
    pub fn scrape_all<'a>(
        &mut self,
        now: TimestampMs,
        samples: impl IntoIterator<Item = &'a ResourceSample>,
    ) {
        for sample in samples {
            self.scrape(now, sample);
        }
    }

    /// Total number of scrapes performed.
    pub fn scrape_count(&self) -> u64 {
        self.scrapes
    }

    /// The backing store handle.
    pub fn store(&self) -> &SharedMetricStore {
        &self.store
    }

    /// Helper: the series key of a container's CPU utilisation series.
    pub fn cpu_key(container: &str) -> SeriesKey {
        SeriesKey::new(CPU_UTILIZATION_METRIC).with_label("container", container)
    }

    /// Helper: the series key of a container's memory series.
    pub fn memory_key(container: &str) -> SeriesKey {
        SeriesKey::new(MEMORY_BYTES_METRIC).with_label("container", container)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregation, RangeQuery};

    #[test]
    fn scrape_writes_cpu_and_memory_series() {
        let store = SharedMetricStore::new();
        let mut collector = ResourceCollector::new(store.clone());
        collector.scrape(
            TimestampMs::from_secs(10),
            &ResourceSample::new("bifrost-engine", 42.0, 128.0 * 1024.0 * 1024.0),
        );
        collector.scrape(
            TimestampMs::from_secs(20),
            &ResourceSample::new("bifrost-engine", 58.0, 130.0 * 1024.0 * 1024.0),
        );
        assert_eq!(collector.scrape_count(), 2);
        assert_eq!(store.series_count(), 2);

        let cpu = RangeQuery::new(CPU_UTILIZATION_METRIC)
            .with_label("container", "bifrost-engine")
            .over_window_secs(60)
            .aggregate(Aggregation::Mean);
        assert_eq!(store.evaluate(&cpu, TimestampMs::from_secs(30)), Some(50.0));
        assert_eq!(collector.store().series_count(), 2);
    }

    #[test]
    fn scrape_all_records_every_container() {
        let store = SharedMetricStore::new();
        let mut collector = ResourceCollector::new(store.clone());
        let samples = vec![
            ResourceSample::new("engine", 10.0, 1.0),
            ResourceSample::new("proxy", 20.0, 2.0),
            ResourceSample::new("product", 30.0, 3.0),
        ];
        collector.scrape_all(TimestampMs::from_secs(5), &samples);
        assert_eq!(collector.scrape_count(), 3);
        assert_eq!(store.series_count(), 6);
        let q = RangeQuery::new(CPU_UTILIZATION_METRIC)
            .with_label("container", "proxy")
            .aggregate(Aggregation::Last);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(10)), Some(20.0));
    }

    #[test]
    fn key_helpers_match_written_series() {
        let store = SharedMetricStore::new();
        let mut collector = ResourceCollector::new(store.clone());
        collector.scrape(
            TimestampMs::from_secs(1),
            &ResourceSample::new("c1", 1.0, 2.0),
        );
        store.with_store(|s| {
            assert!(s.series(&ResourceCollector::cpu_key("c1")).is_some());
            assert!(s.series(&ResourceCollector::memory_key("c1")).is_some());
            assert!(s.series(&ResourceCollector::cpu_key("nope")).is_none());
        });
    }
}
