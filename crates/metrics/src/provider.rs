//! Metric providers: the engine-facing abstraction over monitoring backends.
//!
//! A check's [`MetricQuery`] names the provider it
//! wants to consult (`prometheus`, `cadvisor`, …). The engine resolves that
//! name through a [`ProviderRegistry`] and asks the provider for a scalar.
//! In this reproduction every provider is ultimately backed by the in-process
//! [`SharedMetricStore`], but the trait keeps the engine decoupled from the
//! storage, exactly like the paper's engine is decoupled from Prometheus.

use crate::query::{Aggregation, RangeQuery};
use crate::sample::TimestampMs;
use crate::store::SharedMetricStore;
use bifrost_core::check::{MetricQuery, QueryAggregation};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A source of scalar metric values, resolved per check execution.
pub trait MetricsProvider: fmt::Debug + Send + Sync {
    /// The provider name checks refer to (e.g. `"prometheus"`).
    fn name(&self) -> &str;

    /// Fetches the scalar value for a model-level metric query at virtual
    /// time `now`. Returns `None` if no data is available, which the engine
    /// treats as a failing check execution.
    fn fetch(&self, query: &MetricQuery, now: TimestampMs) -> Option<f64>;
}

/// Translates a model-level aggregation into the store-level one.
fn translate_aggregation(aggregation: QueryAggregation) -> Aggregation {
    match aggregation {
        QueryAggregation::Last => Aggregation::Last,
        QueryAggregation::Mean => Aggregation::Mean,
        QueryAggregation::Sum => Aggregation::Sum,
        QueryAggregation::Max => Aggregation::Max,
        QueryAggregation::Min => Aggregation::Min,
        QueryAggregation::Count => Aggregation::Count,
        QueryAggregation::Rate => Aggregation::Increase,
    }
}

/// Converts a model-level metric query into a store-level range query.
pub fn to_range_query(query: &MetricQuery) -> RangeQuery {
    let mut range = RangeQuery::new(query.metric())
        .over_window(Duration::from_secs(query.window_secs()))
        .aggregate(translate_aggregation(query.aggregation()));
    for (key, value) in query.labels() {
        range = range.with_label(key, value);
    }
    range
}

/// A provider that answers queries from a [`SharedMetricStore`]. This stands
/// in for Prometheus (and, with a different name, for cAdvisor) in the
/// simulated deployments.
#[derive(Debug, Clone)]
pub struct StoreProvider {
    name: String,
    store: SharedMetricStore,
}

impl StoreProvider {
    /// Creates a provider answering as `name` from `store`.
    pub fn new(name: impl Into<String>, store: SharedMetricStore) -> Self {
        Self {
            name: name.into(),
            store,
        }
    }

    /// The backing store handle.
    pub fn store(&self) -> &SharedMetricStore {
        &self.store
    }
}

impl MetricsProvider for StoreProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn fetch(&self, query: &MetricQuery, now: TimestampMs) -> Option<f64> {
        self.store.evaluate(&to_range_query(query), now)
    }
}

/// A registry mapping provider names to provider implementations; mirrors the
/// "metric providers' access information is specified in a configuration file
/// loaded at the engine's start-up" part of the paper.
#[derive(Debug, Default)]
pub struct ProviderRegistry {
    providers: BTreeMap<String, Box<dyn MetricsProvider>>,
}

impl ProviderRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a provider under its own name, replacing any previous
    /// provider with the same name.
    pub fn register(&mut self, provider: Box<dyn MetricsProvider>) {
        self.providers.insert(provider.name().to_string(), provider);
    }

    /// Convenience: registers a [`StoreProvider`] for `name` backed by
    /// `store`.
    pub fn register_store(&mut self, name: impl Into<String>, store: SharedMetricStore) {
        self.register(Box::new(StoreProvider::new(name, store)));
    }

    /// Looks up a provider by name.
    pub fn provider(&self, name: &str) -> Option<&dyn MetricsProvider> {
        self.providers.get(name).map(Box::as_ref)
    }

    /// Resolves and executes a model-level query: finds the provider named by
    /// the query and fetches the value. Returns `None` for unknown providers
    /// or missing data.
    pub fn fetch(&self, query: &MetricQuery, now: TimestampMs) -> Option<f64> {
        self.provider(query.provider())?.fetch(query, now)
    }

    /// Fetches all queries of a check spec and returns the values keyed by
    /// each query's exposed name, ready for
    /// [`CheckSpec::evaluate`](bifrost_core::CheckSpec::evaluate).
    pub fn fetch_all(
        &self,
        queries: &[(MetricQuery, bifrost_core::Validator)],
        now: TimestampMs,
    ) -> BTreeMap<String, f64> {
        let mut values = BTreeMap::new();
        for (query, _) in queries {
            if let Some(value) = self.fetch(query, now) {
                values.insert(query.name().to_string(), value);
            }
        }
        values
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SeriesKey;
    use bifrost_core::check::CheckSpec;
    use bifrost_core::Validator;

    fn store_with_errors() -> SharedMetricStore {
        let store = SharedMetricStore::new();
        store.record_value(
            SeriesKey::new("request_errors").with_label("instance", "search:80"),
            TimestampMs::from_secs(10),
            2.0,
        );
        store.record_value(
            SeriesKey::new("request_errors").with_label("instance", "search:80"),
            TimestampMs::from_secs(20),
            4.0,
        );
        store
    }

    fn error_query() -> MetricQuery {
        MetricQuery::new("prometheus", "search_error", "request_errors")
            .with_label("instance", "search:80")
            .with_aggregation(QueryAggregation::Last)
    }

    #[test]
    fn to_range_query_translates_fields() {
        let q = MetricQuery::new("prometheus", "x", "request_errors")
            .with_label("instance", "search:80")
            .with_aggregation(QueryAggregation::Sum)
            .with_window_secs(30);
        let range = to_range_query(&q);
        assert_eq!(range.metric(), "request_errors");
        assert_eq!(range.window(), Duration::from_secs(30));
        assert_eq!(range.aggregation(), Aggregation::Sum);
        assert_eq!(range.matchers().len(), 1);
    }

    #[test]
    fn aggregation_translation_covers_all_variants() {
        assert_eq!(
            translate_aggregation(QueryAggregation::Last),
            Aggregation::Last
        );
        assert_eq!(
            translate_aggregation(QueryAggregation::Mean),
            Aggregation::Mean
        );
        assert_eq!(
            translate_aggregation(QueryAggregation::Sum),
            Aggregation::Sum
        );
        assert_eq!(
            translate_aggregation(QueryAggregation::Max),
            Aggregation::Max
        );
        assert_eq!(
            translate_aggregation(QueryAggregation::Min),
            Aggregation::Min
        );
        assert_eq!(
            translate_aggregation(QueryAggregation::Count),
            Aggregation::Count
        );
        assert_eq!(
            translate_aggregation(QueryAggregation::Rate),
            Aggregation::Increase
        );
    }

    #[test]
    fn store_provider_fetches_values() {
        let provider = StoreProvider::new("prometheus", store_with_errors());
        assert_eq!(provider.name(), "prometheus");
        assert_eq!(
            provider.fetch(&error_query(), TimestampMs::from_secs(30)),
            Some(4.0)
        );
        assert_eq!(
            provider.fetch(&error_query(), TimestampMs::from_secs(5)),
            None
        );
        assert_eq!(provider.store().series_count(), 1);
    }

    #[test]
    fn registry_resolves_by_provider_name() {
        let mut registry = ProviderRegistry::new();
        assert!(registry.is_empty());
        registry.register_store("prometheus", store_with_errors());
        assert_eq!(registry.len(), 1);
        assert!(registry.provider("prometheus").is_some());
        assert!(registry.provider("new_relic").is_none());
        assert_eq!(
            registry.fetch(&error_query(), TimestampMs::from_secs(30)),
            Some(4.0)
        );

        let unknown = MetricQuery::new("new_relic", "x", "request_errors");
        assert_eq!(registry.fetch(&unknown, TimestampMs::from_secs(30)), None);
    }

    #[test]
    fn fetch_all_feeds_check_spec_evaluation() {
        let mut registry = ProviderRegistry::new();
        registry.register_store("prometheus", store_with_errors());
        let spec = CheckSpec::single(error_query(), Validator::LessThan(5.0));
        let values = registry.fetch_all(spec.queries(), TimestampMs::from_secs(30));
        assert_eq!(values.get("search_error"), Some(&4.0));
        assert!(spec.evaluate(&values));
        // Before any data exists the check fails.
        let values = registry.fetch_all(spec.queries(), TimestampMs::from_secs(1));
        assert!(values.is_empty());
        assert!(!spec.evaluate(&values));
    }
}
