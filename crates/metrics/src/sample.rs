//! Samples, labels, timestamps, and series keys.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A millisecond-resolution timestamp on the (virtual) experiment clock.
///
/// The metrics substrate is clock-agnostic: the discrete-event simulator
/// feeds it virtual time, a wall-clock deployment would feed real time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimestampMs(u64);

impl TimestampMs {
    /// The zero timestamp (start of the experiment).
    pub const ZERO: Self = Self(0);

    /// Creates a timestamp from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000)
    }

    /// The raw millisecond value.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Adds a duration, saturating on overflow.
    pub fn saturating_add(self, duration: Duration) -> Self {
        Self(self.0.saturating_add(duration.as_millis() as u64))
    }

    /// Subtracts a duration, saturating at zero.
    pub fn saturating_sub(self, duration: Duration) -> Self {
        Self(self.0.saturating_sub(duration.as_millis() as u64))
    }

    /// The duration elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: TimestampMs) -> Duration {
        Duration::from_millis(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for TimestampMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl From<Duration> for TimestampMs {
    fn from(d: Duration) -> Self {
        Self(d.as_millis() as u64)
    }
}

/// A set of key/value labels identifying a series (e.g. `instance`,
/// `version`, `container`).
pub type Labels = BTreeMap<String, String>;

/// A single measurement: a timestamp and a value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the measurement was taken.
    pub timestamp: TimestampMs,
    /// The measured value.
    pub value: f64,
}

impl Sample {
    /// Creates a sample.
    pub fn new(timestamp: TimestampMs, value: f64) -> Self {
        Self { timestamp, value }
    }
}

/// The identity of a time series: a metric name plus its labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    name: String,
    labels: Labels,
}

impl SeriesKey {
    /// Creates a series key without labels.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            labels: Labels::new(),
        }
    }

    /// Adds a label (builder style).
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The labels.
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The value of a single label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.labels.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}=\"{v}\"")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_conversions() {
        let t = TimestampMs::from_secs(3);
        assert_eq!(t.as_millis(), 3_000);
        assert_eq!(t.as_secs_f64(), 3.0);
        assert_eq!(
            TimestampMs::from(Duration::from_millis(250)).as_millis(),
            250
        );
        assert_eq!(t.to_string(), "3.000s");
    }

    #[test]
    fn timestamp_arithmetic_saturates() {
        let t = TimestampMs::from_secs(1);
        assert_eq!(t.saturating_add(Duration::from_secs(2)).as_millis(), 3_000);
        assert_eq!(t.saturating_sub(Duration::from_secs(5)), TimestampMs::ZERO);
        assert_eq!(
            TimestampMs::from_secs(5).since(TimestampMs::from_secs(2)),
            Duration::from_secs(3)
        );
        assert_eq!(
            TimestampMs::from_secs(2).since(TimestampMs::from_secs(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn series_key_labels_and_display() {
        let key = SeriesKey::new("request_errors")
            .with_label("instance", "search:80")
            .with_label("version", "v2");
        assert_eq!(key.name(), "request_errors");
        assert_eq!(key.label("instance"), Some("search:80"));
        assert_eq!(key.label("missing"), None);
        assert_eq!(
            key.to_string(),
            "request_errors{instance=\"search:80\",version=\"v2\"}"
        );
        assert_eq!(SeriesKey::new("up").to_string(), "up");
    }

    #[test]
    fn series_keys_order_deterministically() {
        let a = SeriesKey::new("a");
        let b = SeriesKey::new("b");
        assert!(a < b);
        let a1 = SeriesKey::new("a").with_label("x", "1");
        let a2 = SeriesKey::new("a").with_label("x", "2");
        assert!(a1 < a2);
    }
}
