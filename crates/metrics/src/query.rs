//! Range queries with label matchers and aggregation.
//!
//! The query surface mirrors the small subset of Prometheus that Bifrost's
//! DSL uses: select a metric by name, filter by exact label matches, take a
//! look-back window, and reduce it to a scalar with an aggregation function.

use crate::sample::{Labels, Sample, SeriesKey};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// An exact-match label matcher (`instance="search:80"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelMatcher {
    key: String,
    value: String,
}

impl LabelMatcher {
    /// Creates a matcher.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
        }
    }

    /// The label key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The expected label value.
    pub fn value(&self) -> &str {
        &self.value
    }

    /// Whether a label set satisfies this matcher.
    pub fn matches(&self, labels: &Labels) -> bool {
        labels.get(&self.key).map(String::as_str) == Some(self.value.as_str())
    }
}

/// How a window of samples is reduced to a scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Aggregation {
    /// The most recent sample in the window.
    #[default]
    Last,
    /// Arithmetic mean of the window.
    Mean,
    /// Sum of the window.
    Sum,
    /// Maximum of the window.
    Max,
    /// Minimum of the window.
    Min,
    /// Number of samples in the window.
    Count,
    /// Increase over the window (`last − first`, clamped at 0) — the shape of
    /// a counter rate without dividing by time.
    Increase,
    /// Increase divided by the window length in seconds (per-second rate).
    Rate,
}

impl Aggregation {
    /// Applies the aggregation to a window of samples. Returns `None` for an
    /// empty window (except [`Aggregation::Count`], which yields 0).
    pub fn apply(self, samples: &[Sample], window: Duration) -> Option<f64> {
        if samples.is_empty() {
            return match self {
                Aggregation::Count => Some(0.0),
                _ => None,
            };
        }
        let values = samples.iter().map(|s| s.value);
        Some(match self {
            Aggregation::Last => samples.last().expect("non-empty").value,
            Aggregation::Mean => values.clone().sum::<f64>() / samples.len() as f64,
            Aggregation::Sum => values.clone().sum(),
            Aggregation::Max => values.clone().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Min => values.clone().fold(f64::INFINITY, f64::min),
            Aggregation::Count => samples.len() as f64,
            Aggregation::Increase => {
                let first = samples.first().expect("non-empty").value;
                let last = samples.last().expect("non-empty").value;
                (last - first).max(0.0)
            }
            Aggregation::Rate => {
                let first = samples.first().expect("non-empty").value;
                let last = samples.last().expect("non-empty").value;
                let secs = window.as_secs_f64().max(f64::EPSILON);
                (last - first).max(0.0) / secs
            }
        })
    }
}

/// A range query: metric name, label matchers, window, and aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeQuery {
    metric: String,
    matchers: Vec<LabelMatcher>,
    window: Duration,
    aggregation: Aggregation,
}

impl RangeQuery {
    /// Creates a query selecting `metric` with no matchers, a zero window
    /// (latest sample), and [`Aggregation::Last`].
    pub fn new(metric: impl Into<String>) -> Self {
        Self {
            metric: metric.into(),
            matchers: Vec::new(),
            window: Duration::ZERO,
            aggregation: Aggregation::Last,
        }
    }

    /// Adds an exact label matcher (builder style).
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.matchers.push(LabelMatcher::new(key, value));
        self
    }

    /// Sets the look-back window (builder style).
    pub fn over_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Sets the look-back window in whole seconds (builder style).
    pub fn over_window_secs(mut self, secs: u64) -> Self {
        self.window = Duration::from_secs(secs);
        self
    }

    /// Sets the aggregation (builder style).
    pub fn aggregate(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// The metric name.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// The label matchers.
    pub fn matchers(&self) -> &[LabelMatcher] {
        &self.matchers
    }

    /// The look-back window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The aggregation.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Whether a series key is selected by this query.
    pub fn selects(&self, key: &SeriesKey) -> bool {
        key.name() == self.metric && self.matchers.iter().all(|m| m.matches(key.labels()))
    }

    /// Parses the compact Prometheus-style selector syntax used by the DSL,
    /// e.g. `request_errors{instance="search:80",version="v2"}`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message if braces or quotes are unbalanced.
    pub fn parse_selector(selector: &str) -> Result<Self, String> {
        let selector = selector.trim();
        let (name, rest) = match selector.find('{') {
            None => (selector, None),
            Some(idx) => {
                let name = &selector[..idx];
                let rest = &selector[idx + 1..];
                let end = rest
                    .rfind('}')
                    .ok_or_else(|| format!("selector '{selector}' is missing a closing brace"))?;
                (name, Some(&rest[..end]))
            }
        };
        if name.is_empty() {
            return Err(format!("selector '{selector}' has an empty metric name"));
        }
        let mut query = RangeQuery::new(name.trim());
        if let Some(labels) = rest {
            for pair in labels.split(',').filter(|p| !p.trim().is_empty()) {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label pair '{pair}' is missing '='"))?;
                let value = value.trim().trim_matches('"');
                query = query.with_label(key.trim(), value);
            }
        }
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::TimestampMs;

    fn samples(values: &[(u64, f64)]) -> Vec<Sample> {
        values
            .iter()
            .map(|(t, v)| Sample::new(TimestampMs::from_secs(*t), *v))
            .collect()
    }

    #[test]
    fn matcher_matches_exact_label() {
        let mut labels = Labels::new();
        labels.insert("instance".into(), "search:80".into());
        let matcher = LabelMatcher::new("instance", "search:80");
        assert!(matcher.matches(&labels));
        assert!(!LabelMatcher::new("instance", "product:80").matches(&labels));
        assert!(!LabelMatcher::new("job", "search").matches(&labels));
        assert_eq!(matcher.key(), "instance");
        assert_eq!(matcher.value(), "search:80");
    }

    #[test]
    fn aggregations_on_window() {
        let s = samples(&[(10, 2.0), (20, 6.0), (30, 4.0)]);
        let w = Duration::from_secs(30);
        assert_eq!(Aggregation::Last.apply(&s, w), Some(4.0));
        assert_eq!(Aggregation::Mean.apply(&s, w), Some(4.0));
        assert_eq!(Aggregation::Sum.apply(&s, w), Some(12.0));
        assert_eq!(Aggregation::Max.apply(&s, w), Some(6.0));
        assert_eq!(Aggregation::Min.apply(&s, w), Some(2.0));
        assert_eq!(Aggregation::Count.apply(&s, w), Some(3.0));
        assert_eq!(Aggregation::Increase.apply(&s, w), Some(2.0));
        assert_eq!(Aggregation::Rate.apply(&s, w), Some(2.0 / 30.0));
    }

    #[test]
    fn aggregations_on_empty_window() {
        let w = Duration::from_secs(10);
        assert_eq!(Aggregation::Last.apply(&[], w), None);
        assert_eq!(Aggregation::Mean.apply(&[], w), None);
        assert_eq!(Aggregation::Count.apply(&[], w), Some(0.0));
    }

    #[test]
    fn increase_clamps_counter_resets() {
        let s = samples(&[(10, 100.0), (20, 3.0)]);
        assert_eq!(
            Aggregation::Increase.apply(&s, Duration::from_secs(10)),
            Some(0.0)
        );
    }

    #[test]
    fn query_selects_series() {
        let query = RangeQuery::new("request_errors").with_label("instance", "search:80");
        let matching = SeriesKey::new("request_errors").with_label("instance", "search:80");
        let extra_labels = SeriesKey::new("request_errors")
            .with_label("instance", "search:80")
            .with_label("version", "v2");
        let wrong_name = SeriesKey::new("request_total").with_label("instance", "search:80");
        let wrong_label = SeriesKey::new("request_errors").with_label("instance", "product:80");
        assert!(query.selects(&matching));
        assert!(query.selects(&extra_labels));
        assert!(!query.selects(&wrong_name));
        assert!(!query.selects(&wrong_label));
    }

    #[test]
    fn parse_selector_with_and_without_labels() {
        let q = RangeQuery::parse_selector("request_errors{instance=\"search:80\"}").unwrap();
        assert_eq!(q.metric(), "request_errors");
        assert_eq!(q.matchers().len(), 1);
        assert_eq!(q.matchers()[0].value(), "search:80");

        let q = RangeQuery::parse_selector("up").unwrap();
        assert_eq!(q.metric(), "up");
        assert!(q.matchers().is_empty());

        let q = RangeQuery::parse_selector("m{a=\"1\", b=\"2\"}").unwrap();
        assert_eq!(q.matchers().len(), 2);
    }

    #[test]
    fn parse_selector_rejects_malformed_input() {
        assert!(RangeQuery::parse_selector("m{a=\"1\"").is_err());
        assert!(RangeQuery::parse_selector("{a=\"1\"}").is_err());
        assert!(RangeQuery::parse_selector("m{a}").is_err());
    }

    #[test]
    fn builder_setters() {
        let q = RangeQuery::new("m")
            .over_window_secs(30)
            .aggregate(Aggregation::Sum);
        assert_eq!(q.window(), Duration::from_secs(30));
        assert_eq!(q.aggregation(), Aggregation::Sum);
        let q = RangeQuery::new("m").over_window(Duration::from_millis(500));
        assert_eq!(q.window(), Duration::from_millis(500));
    }
}
