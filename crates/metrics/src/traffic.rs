//! Recording per-request routing outcomes as metric series.
//!
//! The engine's traffic simulation routes batches of requests through the
//! proxy fleet and needs the outcomes to land in the same
//! [`SharedMetricStore`] that strategy checks query — that is what closes
//! the paper's loop of "proxies split live traffic, checks watch the
//! observed metrics". [`TrafficSeriesRecorder`] buffers one tick's worth of
//! outcomes and flushes them as Prometheus-shaped series under a single
//! store lock:
//!
//! * `requests_total{service, version}` — cumulative request counter,
//! * `request_errors{service, version}` — cumulative error counter,
//! * `shadow_requests_total{service, version}` — cumulative dark-launch
//!   duplicate counter,
//! * `requests_shed_total{service, version}` — cumulative counter of
//!   requests (primary or shadow) dropped by a saturated backend queue or
//!   timed out past the backend deadline,
//! * `request_latency_ms{service, version}` — per-tick mean latency gauge,
//! * `request_latency_p50_ms` / `request_latency_p95_ms` — per-tick
//!   latency-quantile gauges, and
//! * `backend_utilization{service, version}` — per-tick gauge of the
//!   version's replica utilisation in percent.
//!
//! The series names and the `version` label match what the case-study
//! application publishes, so the same check specifications work against
//! simulated application traffic and engine-driven request-level traffic.

use crate::sample::{Sample, SeriesKey, TimestampMs};
use crate::stats::DistributionSummary;
use crate::store::SharedMetricStore;
use std::collections::BTreeMap;

/// Cumulative counter for requests routed to one version.
pub const REQUESTS_TOTAL: &str = "requests_total";
/// Cumulative counter for failed requests per version.
pub const REQUEST_ERRORS: &str = "request_errors";
/// Cumulative counter for dark-launch shadow copies per target version.
pub const SHADOW_REQUESTS_TOTAL: &str = "shadow_requests_total";
/// Per-tick mean end-to-end latency gauge per version (milliseconds).
pub const REQUEST_LATENCY_MS: &str = "request_latency_ms";
/// Per-tick median end-to-end latency gauge per version (milliseconds).
pub const REQUEST_LATENCY_P50_MS: &str = "request_latency_p50_ms";
/// Per-tick 95th-percentile end-to-end latency gauge per version
/// (milliseconds).
pub const REQUEST_LATENCY_P95_MS: &str = "request_latency_p95_ms";
/// Cumulative counter of requests shed or timed out by a version's backend.
pub const REQUESTS_SHED_TOTAL: &str = "requests_shed_total";
/// Per-tick backend replica utilisation gauge per version (percent).
pub const BACKEND_UTILIZATION: &str = "backend_utilization";

/// Per-version accumulation of one flush window.
#[derive(Debug, Clone, Default, PartialEq)]
struct WindowAccumulator {
    requests: u64,
    errors: u64,
    latency_ms_sum: f64,
    /// Every latency of the window, for the per-tick quantile gauges.
    latencies_ms: Vec<f64>,
}

/// Buffers routing outcomes per version and publishes them as metric
/// series, one store lock per flush instead of per request.
#[derive(Debug)]
pub struct TrafficSeriesRecorder {
    store: SharedMetricStore,
    service_label: String,
    /// Running totals published as counter samples (Prometheus counters are
    /// cumulative; windowed `Increase` queries recover per-window rates).
    request_totals: BTreeMap<String, f64>,
    error_totals: BTreeMap<String, f64>,
    shadow_totals: BTreeMap<String, f64>,
    shed_totals: BTreeMap<String, f64>,
    /// The current (unflushed) window.
    window: BTreeMap<String, WindowAccumulator>,
    shadow_window: BTreeMap<String, u64>,
    shed_window: BTreeMap<String, u64>,
    /// Latest per-version backend utilisation (percent) of the window.
    utilization_window: BTreeMap<String, f64>,
}

impl TrafficSeriesRecorder {
    /// Creates a recorder publishing into `store` with the given `service`
    /// label value.
    pub fn new(store: SharedMetricStore, service_label: impl Into<String>) -> Self {
        Self {
            store,
            service_label: service_label.into(),
            request_totals: BTreeMap::new(),
            error_totals: BTreeMap::new(),
            shadow_totals: BTreeMap::new(),
            shed_totals: BTreeMap::new(),
            window: BTreeMap::new(),
            shadow_window: BTreeMap::new(),
            shed_window: BTreeMap::new(),
            utilization_window: BTreeMap::new(),
        }
    }

    /// Pre-registers versions' counter series at zero (the behaviour of a
    /// Prometheus client library on service start-up), so checks see `0`
    /// rather than "no data" before the first request arrives. All labels
    /// are registered in one pass and published with a single flush.
    pub fn register_versions<'a>(
        &mut self,
        version_labels: impl IntoIterator<Item = &'a str>,
        at: TimestampMs,
    ) {
        for label in version_labels {
            self.request_totals.entry(label.to_string()).or_insert(0.0);
            self.error_totals.entry(label.to_string()).or_insert(0.0);
            self.shadow_totals.entry(label.to_string()).or_insert(0.0);
            self.shed_totals.entry(label.to_string()).or_insert(0.0);
        }
        self.flush(at);
    }

    /// Buffers the outcome of one routed request. Allocation-free except
    /// for a version's first appearance in the current window.
    pub fn observe_request(&mut self, version_label: &str, latency_ms: f64, success: bool) {
        if !self.window.contains_key(version_label) {
            self.window
                .insert(version_label.to_string(), WindowAccumulator::default());
        }
        let acc = self.window.get_mut(version_label).expect("just ensured");
        acc.requests += 1;
        acc.latency_ms_sum += latency_ms;
        acc.latencies_ms.push(latency_ms);
        if !success {
            acc.errors += 1;
        }
    }

    /// Buffers one request (primary or shadow) the version's backend shed
    /// from a full queue or timed out past its deadline. Allocation-free
    /// except for a version's first appearance in the current window.
    pub fn observe_shed(&mut self, version_label: &str) {
        if !self.shed_window.contains_key(version_label) {
            self.shed_window.insert(version_label.to_string(), 0);
        }
        *self
            .shed_window
            .get_mut(version_label)
            .expect("just ensured") += 1;
    }

    /// Buffers the version's backend replica utilisation (percent) sampled
    /// over the current tick; the latest value per version wins.
    pub fn observe_utilization(&mut self, version_label: &str, percent: f64) {
        if let Some(slot) = self.utilization_window.get_mut(version_label) {
            *slot = percent;
        } else {
            self.utilization_window
                .insert(version_label.to_string(), percent);
        }
    }

    /// Buffers one dark-launch shadow copy sent to `version_label`.
    /// Allocation-free except for a version's first appearance in the
    /// current window.
    pub fn observe_shadow(&mut self, version_label: &str) {
        if !self.shadow_window.contains_key(version_label) {
            self.shadow_window.insert(version_label.to_string(), 0);
        }
        *self
            .shadow_window
            .get_mut(version_label)
            .expect("just ensured") += 1;
    }

    /// Publishes the buffered window (and the running counter totals) at
    /// virtual time `at`, then clears the window.
    pub fn flush(&mut self, at: TimestampMs) {
        let mut samples: Vec<(SeriesKey, Sample)> = Vec::new();
        for (version, acc) in std::mem::take(&mut self.window) {
            let requests = {
                let total = self.request_totals.entry(version.clone()).or_insert(0.0);
                *total += acc.requests as f64;
                *total
            };
            samples.push((
                self.key(REQUESTS_TOTAL, &version),
                Sample::new(at, requests),
            ));
            let errors = {
                let total = self.error_totals.entry(version.clone()).or_insert(0.0);
                *total += acc.errors as f64;
                *total
            };
            samples.push((self.key(REQUEST_ERRORS, &version), Sample::new(at, errors)));
            if acc.requests > 0 {
                samples.push((
                    self.key(REQUEST_LATENCY_MS, &version),
                    Sample::new(at, acc.latency_ms_sum / acc.requests as f64),
                ));
            }
            if let Some(summary) = DistributionSummary::compute(&acc.latencies_ms) {
                samples.push((
                    self.key(REQUEST_LATENCY_P50_MS, &version),
                    Sample::new(at, summary.p50),
                ));
                samples.push((
                    self.key(REQUEST_LATENCY_P95_MS, &version),
                    Sample::new(at, summary.p95),
                ));
            }
        }
        for (version, count) in std::mem::take(&mut self.shed_window) {
            let shed = {
                let total = self.shed_totals.entry(version.clone()).or_insert(0.0);
                *total += count as f64;
                *total
            };
            samples.push((
                self.key(REQUESTS_SHED_TOTAL, &version),
                Sample::new(at, shed),
            ));
        }
        for (version, percent) in std::mem::take(&mut self.utilization_window) {
            samples.push((
                self.key(BACKEND_UTILIZATION, &version),
                Sample::new(at, percent),
            ));
        }
        for (version, count) in std::mem::take(&mut self.shadow_window) {
            let shadows = {
                let total = self.shadow_totals.entry(version.clone()).or_insert(0.0);
                *total += count as f64;
                *total
            };
            samples.push((
                self.key(SHADOW_REQUESTS_TOTAL, &version),
                Sample::new(at, shadows),
            ));
        }
        // Quiet versions re-publish their current totals so windowed queries
        // always see a sample (the shape of a Prometheus scrape loop).
        for (metric, totals) in [
            (REQUESTS_TOTAL, &self.request_totals),
            (REQUEST_ERRORS, &self.error_totals),
            (SHADOW_REQUESTS_TOTAL, &self.shadow_totals),
            (REQUESTS_SHED_TOTAL, &self.shed_totals),
        ] {
            for (version, total) in totals {
                let key = SeriesKey::new(metric)
                    .with_label("service", &self.service_label)
                    .with_label("version", version);
                if !samples.iter().any(|(k, _)| *k == key) {
                    samples.push((key, Sample::new(at, *total)));
                }
            }
        }
        self.store.record_many(samples);
    }

    /// The underlying store handle.
    pub fn store(&self) -> &SharedMetricStore {
        &self.store
    }

    fn key(&self, metric: &str, version: &str) -> SeriesKey {
        SeriesKey::new(metric)
            .with_label("service", &self.service_label)
            .with_label("version", version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregation, RangeQuery};

    fn last(store: &SharedMetricStore, metric: &str, version: &str, at_secs: u64) -> Option<f64> {
        store.evaluate(
            &RangeQuery::new(metric)
                .with_label("version", version)
                .aggregate(Aggregation::Last),
            TimestampMs::from_secs(at_secs),
        )
    }

    #[test]
    fn counters_accumulate_across_flushes() {
        let store = SharedMetricStore::new();
        let mut recorder = TrafficSeriesRecorder::new(store.clone(), "search");
        recorder.observe_request("v1", 10.0, true);
        recorder.observe_request("v1", 20.0, false);
        recorder.observe_request("v2", 30.0, true);
        recorder.observe_shadow("v2");
        recorder.flush(TimestampMs::from_secs(1));
        recorder.observe_request("v1", 40.0, true);
        recorder.flush(TimestampMs::from_secs(2));

        assert_eq!(last(&store, REQUESTS_TOTAL, "v1", 5), Some(3.0));
        assert_eq!(last(&store, REQUEST_ERRORS, "v1", 5), Some(1.0));
        assert_eq!(last(&store, REQUESTS_TOTAL, "v2", 5), Some(1.0));
        assert_eq!(last(&store, SHADOW_REQUESTS_TOTAL, "v2", 5), Some(1.0));
        // Mean latency per flush window: (10+20)/2 then 40.
        assert_eq!(last(&store, REQUEST_LATENCY_MS, "v1", 1), Some(15.0));
        assert_eq!(last(&store, REQUEST_LATENCY_MS, "v1", 5), Some(40.0));
    }

    #[test]
    fn shed_utilization_and_quantile_series_are_published() {
        let store = SharedMetricStore::new();
        let mut recorder = TrafficSeriesRecorder::new(store.clone(), "search");
        recorder.register_versions(["v1"], TimestampMs::from_secs(0));
        assert_eq!(last(&store, REQUESTS_SHED_TOTAL, "v1", 0), Some(0.0));
        for latency in [10.0, 20.0, 30.0, 40.0, 100.0] {
            recorder.observe_request("v1", latency, true);
        }
        recorder.observe_shed("v1");
        recorder.observe_shed("v1");
        recorder.observe_utilization("v1", 35.0);
        recorder.observe_utilization("v1", 80.0);
        recorder.flush(TimestampMs::from_secs(1));

        assert_eq!(last(&store, REQUESTS_SHED_TOTAL, "v1", 5), Some(2.0));
        assert_eq!(last(&store, REQUEST_LATENCY_P50_MS, "v1", 5), Some(30.0));
        assert_eq!(last(&store, REQUEST_LATENCY_P95_MS, "v1", 5), Some(100.0));
        // Latest utilisation of the tick wins.
        assert_eq!(last(&store, BACKEND_UTILIZATION, "v1", 5), Some(80.0));

        // The shed counter accumulates and is republished when quiet.
        recorder.observe_shed("v1");
        recorder.flush(TimestampMs::from_secs(2));
        recorder.flush(TimestampMs::from_secs(3));
        assert_eq!(last(&store, REQUESTS_SHED_TOTAL, "v1", 5), Some(3.0));
    }

    #[test]
    fn quiet_versions_republish_their_totals() {
        let store = SharedMetricStore::new();
        let mut recorder = TrafficSeriesRecorder::new(store.clone(), "search");
        recorder.register_versions(["v1"], TimestampMs::from_secs(0));
        assert_eq!(last(&store, REQUESTS_TOTAL, "v1", 0), Some(0.0));
        assert_eq!(last(&store, REQUEST_ERRORS, "v1", 0), Some(0.0));
        recorder.observe_request("v1", 5.0, true);
        recorder.flush(TimestampMs::from_secs(1));
        // A flush with no v1 activity still re-publishes the totals.
        recorder.flush(TimestampMs::from_secs(9));
        let increase = store.evaluate(
            &RangeQuery::new(REQUESTS_TOTAL)
                .with_label("version", "v1")
                .over_window_secs(5)
                .aggregate(Aggregation::Increase),
            TimestampMs::from_secs(9),
        );
        assert_eq!(increase, Some(0.0));
    }
}
