//! Summary statistics and moving averages used by the evaluation harness.
//!
//! Table 1 of the paper reports mean, min, max, standard deviation, and
//! median of response times per release phase; Figure 6 plots a 3-second
//! moving average. Both computations live here so the workload generator,
//! benches, and experiment binaries share one implementation.

use serde::{Deserialize, Serialize};

/// Basic summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for a single value).
    pub sd: f64,
    /// Median (mean of the two central values for even counts).
    pub median: f64,
}

impl SummaryStats {
    /// Computes summary statistics. Returns `None` for an empty slice.
    pub fn compute(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sd = if count > 1 {
            let variance =
                values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64;
            variance.sqrt()
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Some(Self {
            count,
            mean,
            min,
            max,
            sd,
            median,
        })
    }

    /// Computes the given percentile (0–100) of a sample using
    /// nearest-rank interpolation. Returns `None` for an empty slice.
    pub fn percentile(values: &[f64], percentile: f64) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let rank = (percentile / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }
}

/// Summary of a sample distribution including tail percentiles — the
/// aggregation the multi-trial benchmark runner reports per experiment
/// point (mean / p50 / p95 / standard deviation across trials).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for a single value).
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl DistributionSummary {
    /// Computes the summary. Returns `None` for an empty slice.
    pub fn compute(values: &[f64]) -> Option<Self> {
        let base = SummaryStats::compute(values)?;
        Some(Self {
            count: base.count,
            mean: base.mean,
            sd: base.sd,
            min: base.min,
            max: base.max,
            p50: SummaryStats::percentile(values, 50.0)?,
            p95: SummaryStats::percentile(values, 95.0)?,
        })
    }
}

/// Computes a centred-at-the-end moving average over `(time, value)` pairs:
/// for every input point, the output value is the mean of all values whose
/// time lies within `window` *before* (and including) that point. This is the
/// aggregation used to produce Figure 6 ("moving average with a window size
/// of 3 seconds").
pub fn moving_average(points: &[(f64, f64)], window: f64) -> Vec<(f64, f64)> {
    let mut result = Vec::with_capacity(points.len());
    let mut start = 0usize;
    let mut sum = 0.0;
    for (i, &(t, v)) in points.iter().enumerate() {
        sum += v;
        while points[start].0 < t - window {
            sum -= points[start].1;
            start += 1;
        }
        let count = i - start + 1;
        result.push((t, sum / count as f64));
    }
    result
}

/// Buckets `(time, value)` pairs into fixed-width time bins and averages the
/// values per bin, producing a compact series for plotting (used by the
/// experiment report printers).
pub fn bin_average(points: &[(f64, f64)], bin_width: f64) -> Vec<(f64, f64)> {
    if points.is_empty() || bin_width <= 0.0 {
        return Vec::new();
    }
    let mut bins: std::collections::BTreeMap<i64, (f64, usize)> = std::collections::BTreeMap::new();
    for &(t, v) in points {
        let bin = (t / bin_width).floor() as i64;
        let entry = bins.entry(bin).or_insert((0.0, 0));
        entry.0 += v;
        entry.1 += 1;
    }
    bins.into_iter()
        .map(|(bin, (sum, count))| (bin as f64 * bin_width, sum / count as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_slice_is_none() {
        assert!(SummaryStats::compute(&[]).is_none());
        assert!(SummaryStats::percentile(&[], 50.0).is_none());
    }

    #[test]
    fn summary_of_single_value() {
        let s = SummaryStats::compute(&[5.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = SummaryStats::compute(&values).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Sample sd of this classic example is sqrt(32/7).
        assert!((s.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn median_of_odd_count() {
        let s = SummaryStats::compute(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn percentiles() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(SummaryStats::percentile(&values, 0.0), Some(1.0));
        assert_eq!(SummaryStats::percentile(&values, 100.0), Some(100.0));
        let p50 = SummaryStats::percentile(&values, 50.0).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0);
        let p95 = SummaryStats::percentile(&values, 95.0).unwrap();
        assert!((p95 - 95.0).abs() <= 1.0);
    }

    #[test]
    fn distribution_summary_reports_tail_percentiles() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let d = DistributionSummary::compute(&values).unwrap();
        assert_eq!(d.count, 100);
        assert!((d.mean - 50.5).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert!((d.p50 - 50.0).abs() <= 1.0);
        assert!((d.p95 - 95.0).abs() <= 1.0);
        assert!(d.sd > 28.0 && d.sd < 30.0);
        assert!(DistributionSummary::compute(&[]).is_none());
        let single = DistributionSummary::compute(&[3.0]).unwrap();
        assert_eq!(single.p50, 3.0);
        assert_eq!(single.p95, 3.0);
        assert_eq!(single.sd, 0.0);
    }

    #[test]
    fn moving_average_smooths_series() {
        let points: Vec<(f64, f64)> = vec![(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (5.0, 40.0)];
        let avg = moving_average(&points, 3.0);
        assert_eq!(avg.len(), 4);
        assert_eq!(avg[0].1, 10.0);
        assert_eq!(avg[1].1, 15.0);
        assert_eq!(avg[2].1, 20.0);
        // At t=5 with window 3, only points at t >= 2 are included.
        assert_eq!(avg[3].1, 35.0);
    }

    #[test]
    fn moving_average_of_constant_series_is_constant() {
        let points: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.1, 22.5)).collect();
        for (_, v) in moving_average(&points, 3.0) {
            assert!((v - 22.5).abs() < 1e-12);
        }
    }

    #[test]
    fn bin_average_groups_points() {
        let points = vec![(0.1, 10.0), (0.4, 20.0), (1.2, 30.0), (2.9, 50.0)];
        let bins = bin_average(&points, 1.0);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0], (0.0, 15.0));
        assert_eq!(bins[1], (1.0, 30.0));
        assert_eq!(bins[2], (2.0, 50.0));
        assert!(bin_average(&[], 1.0).is_empty());
        assert!(bin_average(&points, 0.0).is_empty());
    }
}
