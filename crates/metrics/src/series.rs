//! A single time series: an append-mostly, time-ordered list of samples.

use crate::sample::{Sample, TimestampMs};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One time series `mᵢ = (t₀, …, tₙ)` of the monitoring data `Ω`.
///
/// Samples are kept sorted by timestamp. Appends at or after the current end
/// are O(1); out-of-order inserts (rare — e.g. backfilled data) fall back to
/// a binary-search insert.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample, keeping the series sorted by timestamp.
    pub fn push(&mut self, sample: Sample) {
        match self.samples.last() {
            Some(last) if last.timestamp > sample.timestamp => {
                let idx = self
                    .samples
                    .partition_point(|s| s.timestamp <= sample.timestamp);
                self.samples.insert(idx, sample);
            }
            _ => self.samples.push(sample),
        }
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The latest sample at or before `at`.
    pub fn latest_at(&self, at: TimestampMs) -> Option<&Sample> {
        let idx = self.samples.partition_point(|s| s.timestamp <= at);
        idx.checked_sub(1).map(|i| &self.samples[i])
    }

    /// The samples within the window `(at - window, at]`. A zero window
    /// yields at most the latest sample at or before `at`.
    pub fn window(&self, at: TimestampMs, window: Duration) -> &[Sample] {
        let end = self.samples.partition_point(|s| s.timestamp <= at);
        if window.is_zero() {
            return match end.checked_sub(1) {
                Some(i) => &self.samples[i..end],
                None => &[],
            };
        }
        let start_ts = at.saturating_sub(window);
        let start = self.samples.partition_point(|s| s.timestamp <= start_ts);
        // When the window start falls before the first sample the
        // partition_point is 0 and we include everything up to `end`.
        &self.samples[start.min(end)..end]
    }

    /// Drops samples older than `at - retention`, returning how many were
    /// removed. Keeps memory bounded for long experiments.
    pub fn prune(&mut self, at: TimestampMs, retention: Duration) -> usize {
        let cutoff = at.saturating_sub(retention);
        let keep_from = self.samples.partition_point(|s| s.timestamp < cutoff);
        self.samples.drain(..keep_from).count()
    }

    /// The last sample of the series, if any.
    pub fn last(&self) -> Option<&Sample> {
        self.samples.last()
    }
}

impl FromIterator<Sample> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        let mut series = TimeSeries::new();
        for sample in iter {
            series.push(sample);
        }
        series
    }
}

impl Extend<Sample> for TimeSeries {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for sample in iter {
            self.push(sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, f64)]) -> TimeSeries {
        points
            .iter()
            .map(|(t, v)| Sample::new(TimestampMs::from_secs(*t), *v))
            .collect()
    }

    #[test]
    fn push_keeps_order_even_out_of_order() {
        let mut s = TimeSeries::new();
        s.push(Sample::new(TimestampMs::from_secs(10), 1.0));
        s.push(Sample::new(TimestampMs::from_secs(5), 2.0));
        s.push(Sample::new(TimestampMs::from_secs(20), 3.0));
        let times: Vec<u64> = s
            .samples()
            .iter()
            .map(|s| s.timestamp.as_millis())
            .collect();
        assert_eq!(times, vec![5_000, 10_000, 20_000]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.last().unwrap().value, 3.0);
    }

    #[test]
    fn latest_at_finds_preceding_sample() {
        let s = series(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        assert!(s.latest_at(TimestampMs::from_secs(5)).is_none());
        assert_eq!(s.latest_at(TimestampMs::from_secs(10)).unwrap().value, 1.0);
        assert_eq!(s.latest_at(TimestampMs::from_secs(25)).unwrap().value, 2.0);
        assert_eq!(s.latest_at(TimestampMs::from_secs(99)).unwrap().value, 3.0);
    }

    #[test]
    fn window_selects_half_open_interval() {
        let s = series(&[(10, 1.0), (20, 2.0), (30, 3.0), (40, 4.0)]);
        // (10, 30] → samples at 20 and 30
        let w = s.window(TimestampMs::from_secs(30), Duration::from_secs(20));
        let values: Vec<f64> = w.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![2.0, 3.0]);
        // Zero window → just the latest at or before.
        let w = s.window(TimestampMs::from_secs(35), Duration::ZERO);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].value, 3.0);
        // Window before any data → empty.
        assert!(s
            .window(TimestampMs::from_secs(5), Duration::from_secs(2))
            .is_empty());
        // Window larger than the whole series → everything up to `at`.
        assert_eq!(
            s.window(TimestampMs::from_secs(100), Duration::from_secs(1_000))
                .len(),
            4
        );
    }

    #[test]
    fn prune_drops_old_samples() {
        let mut s = series(&[(10, 1.0), (20, 2.0), (30, 3.0), (40, 4.0)]);
        let removed = s.prune(TimestampMs::from_secs(40), Duration::from_secs(15));
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.samples()[0].value, 3.0);
    }

    #[test]
    fn extend_and_collect() {
        let mut s = series(&[(10, 1.0)]);
        s.extend(vec![Sample::new(TimestampMs::from_secs(5), 0.5)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.samples()[0].value, 0.5);
    }
}
