//! The metric store: a map of series keys to time series with query
//! evaluation, plus a cheap shared handle for concurrent producers.

use crate::query::RangeQuery;
use crate::sample::{Sample, SeriesKey, TimestampMs};
use crate::series::TimeSeries;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// An in-memory, label-indexed collection of time series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricStore {
    series: BTreeMap<SeriesKey, TimeSeries>,
}

impl MetricStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample for the given series (creating the series on first
    /// use).
    pub fn record(&mut self, key: SeriesKey, sample: Sample) {
        self.series.entry(key).or_default().push(sample);
    }

    /// Convenience: records `value` for `key` at time `at`.
    pub fn record_value(&mut self, key: SeriesKey, at: TimestampMs, value: f64) {
        self.record(key, Sample::new(at, value));
    }

    /// Increments a counter series by `delta` at time `at` (the new sample
    /// holds the running total).
    pub fn increment(&mut self, key: SeriesKey, at: TimestampMs, delta: f64) {
        let series = self.series.entry(key).or_default();
        let current = series.last().map(|s| s.value).unwrap_or(0.0);
        series.push(Sample::new(at, current + delta));
    }

    /// Returns the series stored under `key`, if any.
    pub fn series(&self, key: &SeriesKey) -> Option<&TimeSeries> {
        self.series.get(key)
    }

    /// All series keys currently known.
    pub fn keys(&self) -> impl Iterator<Item = &SeriesKey> {
        self.series.keys()
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total number of samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.values().map(TimeSeries::len).sum()
    }

    /// Evaluates a query at time `now`: all selected series are windowed,
    /// their windows concatenated in key order, and the aggregation applied
    /// to the union.
    pub fn evaluate(&self, query: &RangeQuery, now: TimestampMs) -> Option<f64> {
        let mut window: Vec<Sample> = Vec::new();
        for (key, series) in &self.series {
            if query.selects(key) {
                window.extend_from_slice(series.window(now, query.window()));
            }
        }
        window.sort_by_key(|s| s.timestamp);
        query.aggregation().apply(&window, query.window())
    }

    /// Prunes samples older than `retention` from every series.
    pub fn prune(&mut self, now: TimestampMs, retention: Duration) -> usize {
        self.series
            .values_mut()
            .map(|s| s.prune(now, retention))
            .sum()
    }
}

/// A cheaply clonable, thread-safe handle to a [`MetricStore`].
///
/// The simulator, the case-study services, and the engine all hold clones of
/// the same handle; writers take the lock briefly per sample.
#[derive(Debug, Clone, Default)]
pub struct SharedMetricStore {
    inner: Arc<RwLock<MetricStore>>,
}

impl SharedMetricStore {
    /// Creates an empty shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    pub fn record(&self, key: SeriesKey, sample: Sample) {
        self.inner.write().record(key, sample);
    }

    /// Records `value` at `at`.
    pub fn record_value(&self, key: SeriesKey, at: TimestampMs, value: f64) {
        self.inner.write().record_value(key, at, value);
    }

    /// Increments a counter series.
    pub fn increment(&self, key: SeriesKey, at: TimestampMs, delta: f64) {
        self.inner.write().increment(key, at, delta);
    }

    /// Records a batch of samples under a single write lock — the bulk path
    /// used by per-tick traffic recording, where taking the lock per sample
    /// would dominate.
    pub fn record_many(&self, samples: impl IntoIterator<Item = (SeriesKey, Sample)>) {
        let mut store = self.inner.write();
        for (key, sample) in samples {
            store.record(key, sample);
        }
    }

    /// Evaluates a query at `now`.
    pub fn evaluate(&self, query: &RangeQuery, now: TimestampMs) -> Option<f64> {
        self.inner.read().evaluate(query, now)
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.inner.read().series_count()
    }

    /// Total number of samples.
    pub fn sample_count(&self) -> usize {
        self.inner.read().sample_count()
    }

    /// Prunes samples older than `retention`.
    pub fn prune(&self, now: TimestampMs, retention: Duration) -> usize {
        self.inner.write().prune(now, retention)
    }

    /// Runs a closure with read access to the underlying store.
    pub fn with_store<R>(&self, f: impl FnOnce(&MetricStore) -> R) -> R {
        f(&self.inner.read())
    }

    /// Produces an owned snapshot of the store (for reports and debugging).
    pub fn snapshot(&self) -> MetricStore {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregation;

    fn key(instance: &str) -> SeriesKey {
        SeriesKey::new("request_errors").with_label("instance", instance)
    }

    #[test]
    fn record_and_query_single_series() {
        let mut store = MetricStore::new();
        store.record_value(key("search:80"), TimestampMs::from_secs(10), 2.0);
        store.record_value(key("search:80"), TimestampMs::from_secs(20), 3.0);
        store.record_value(key("product:80"), TimestampMs::from_secs(20), 50.0);

        let q = RangeQuery::new("request_errors")
            .with_label("instance", "search:80")
            .over_window_secs(60)
            .aggregate(Aggregation::Sum);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(30)), Some(5.0));
        assert_eq!(store.series_count(), 2);
        assert_eq!(store.sample_count(), 3);
        assert!(store.series(&key("search:80")).is_some());
        assert_eq!(store.keys().count(), 2);
    }

    #[test]
    fn evaluate_unions_matching_series() {
        let mut store = MetricStore::new();
        store.record_value(key("search:80"), TimestampMs::from_secs(10), 2.0);
        store.record_value(key("product:80"), TimestampMs::from_secs(12), 4.0);
        // No matcher → both series contribute.
        let q = RangeQuery::new("request_errors")
            .over_window_secs(60)
            .aggregate(Aggregation::Sum);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(30)), Some(6.0));
        // Unknown metric → None.
        let q = RangeQuery::new("nope").over_window_secs(60);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(30)), None);
    }

    #[test]
    fn increment_accumulates_counter() {
        let mut store = MetricStore::new();
        store.increment(key("search:80"), TimestampMs::from_secs(1), 1.0);
        store.increment(key("search:80"), TimestampMs::from_secs(2), 1.0);
        store.increment(key("search:80"), TimestampMs::from_secs(3), 2.0);
        let q = RangeQuery::new("request_errors")
            .with_label("instance", "search:80")
            .aggregate(Aggregation::Last);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(5)), Some(4.0));
        // Increase over the window (1,3] — the sample at t=1 is excluded, so
        // the counter grows from 2 (t=2) to 4 (t=3).
        let q = q.over_window_secs(2).aggregate(Aggregation::Increase);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(3)), Some(2.0));
    }

    #[test]
    fn evaluation_is_time_scoped() {
        let mut store = MetricStore::new();
        store.record_value(key("search:80"), TimestampMs::from_secs(100), 7.0);
        let q = RangeQuery::new("request_errors").with_label("instance", "search:80");
        // Querying before the sample exists sees nothing.
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(50)), None);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(100)), Some(7.0));
    }

    #[test]
    fn prune_removes_old_samples_across_series() {
        let mut store = MetricStore::new();
        for t in 0..10 {
            store.record_value(key("search:80"), TimestampMs::from_secs(t), t as f64);
            store.record_value(key("product:80"), TimestampMs::from_secs(t), t as f64);
        }
        let removed = store.prune(TimestampMs::from_secs(10), Duration::from_secs(3));
        assert_eq!(removed, 14);
        assert_eq!(store.sample_count(), 6);
    }

    #[test]
    fn record_many_matches_individual_records() {
        let bulk = SharedMetricStore::new();
        let single = SharedMetricStore::new();
        let samples: Vec<(SeriesKey, Sample)> = (0..10)
            .map(|t| {
                (
                    key(if t % 2 == 0 {
                        "search:80"
                    } else {
                        "product:80"
                    }),
                    Sample::new(TimestampMs::from_secs(t), t as f64),
                )
            })
            .collect();
        for (k, s) in &samples {
            single.record(k.clone(), *s);
        }
        bulk.record_many(samples);
        assert_eq!(bulk.snapshot(), single.snapshot());
    }

    #[test]
    fn shared_store_roundtrip() {
        let store = SharedMetricStore::new();
        let writer = store.clone();
        writer.record_value(key("search:80"), TimestampMs::from_secs(1), 1.0);
        writer.increment(key("search:80"), TimestampMs::from_secs(2), 2.0);
        assert_eq!(store.series_count(), 1);
        assert_eq!(store.sample_count(), 2);
        let q = RangeQuery::new("request_errors")
            .with_label("instance", "search:80")
            .aggregate(Aggregation::Last);
        assert_eq!(store.evaluate(&q, TimestampMs::from_secs(3)), Some(3.0));
        assert_eq!(store.snapshot().sample_count(), 2);
        assert_eq!(store.with_store(|s| s.series_count()), 1);
        assert_eq!(
            store.prune(TimestampMs::from_secs(10), Duration::from_secs(1)),
            2
        );
    }
}
