//! Dynamic routing configuration `dcᵢ = ⟨M, Γ⟩` of a service.
//!
//! The routing state of a service consists of user mappings
//! `M = ⟨uₖ, vⱼ, sticky⟩` (which user uses which version, and whether the
//! assignment is permanent within the current state) and dark-launch routes
//! `Γ = ⟨v_src, v_tgt, p⟩` (from which version what share of traffic is
//! duplicated to which shadow version). Additionally this module provides
//! the higher-level [`TrafficSplit`] and [`RoutingRule`] descriptions that
//! states carry in their routing configuration `Φ` and that proxies turn
//! into concrete per-request decisions.

use crate::error::ModelError;
use crate::ids::{ServiceId, UserId, VersionId};
use crate::user::UserSelector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A percentage in the inclusive range `0.0..=100.0`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Percentage(f64);

/// The default shard count of a proxy's sticky-session table.
///
/// Eight shards keep per-shard trees shallow at realistic binding counts
/// and stripe lock contention well below typical core counts, while
/// staying cheap for tiny stores. Defined here (rather than in the proxy
/// crate) so the DSL and CLI can validate the knob without depending on
/// the proxy implementation; `bifrost_proxy` re-exports both constants.
pub const DEFAULT_SESSION_SHARDS: usize = 8;

/// The maximum shard count of a proxy's sticky-session table. Shards
/// beyond any plausible core count only add fixed per-shard cost, and an
/// unbounded knob would let a config typo demand an absurd allocation per
/// proxy — the DSL and CLI reject values above this, and the store clamps
/// as a last line.
pub const MAX_SESSION_SHARDS: usize = 1_024;

impl Percentage {
    /// Creates a percentage.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPercentage`] if the value is not finite
    /// or outside `0.0..=100.0`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if !value.is_finite() || !(0.0..=100.0).contains(&value) {
            return Err(ModelError::InvalidPercentage(value));
        }
        Ok(Self(value))
    }

    /// 0 %.
    pub const fn zero() -> Self {
        Self(0.0)
    }

    /// 100 %.
    pub const fn full() -> Self {
        Self(100.0)
    }

    /// The raw value in `0.0..=100.0`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value as a fraction in `0.0..=1.0`.
    pub fn fraction(self) -> f64 {
        self.0 / 100.0
    }
}

impl fmt::Display for Percentage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0)
    }
}

impl TryFrom<f64> for Percentage {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

/// A user-to-version assignment `⟨uₖ, vⱼ, sticky⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserAssignment {
    /// The assigned user.
    pub user: UserId,
    /// The version the user is routed to.
    pub version: VersionId,
    /// Whether the assignment is permanent within the current state
    /// ("sticky session"): subsequent requests by the same user must reach
    /// the same version.
    pub sticky: bool,
}

impl UserAssignment {
    /// Creates an assignment.
    pub fn new(user: UserId, version: VersionId, sticky: bool) -> Self {
        Self {
            user,
            version,
            sticky,
        }
    }
}

/// A dark-launch route `⟨v_src, v_tgt, p⟩`: `p` percent of the traffic hitting
/// `source` is duplicated and also sent to `target` (whose responses are
/// discarded).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DarkLaunchRoute {
    /// The version whose traffic is observed.
    pub source: VersionId,
    /// The shadow version receiving duplicated traffic.
    pub target: VersionId,
    /// The share of traffic that is duplicated.
    pub percentage: Percentage,
}

impl DarkLaunchRoute {
    /// Creates a dark-launch route.
    pub fn new(source: VersionId, target: VersionId, percentage: Percentage) -> Self {
        Self {
            source,
            target,
            percentage,
        }
    }
}

/// How the proxy identifies a user across requests when making routing
/// decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RoutingMode {
    /// The proxy sets and reads a UUID cookie (`Set-Cookie`) to bucket and
    /// re-identify clients itself. Slightly slower but self-contained.
    #[default]
    CookieBased,
    /// The proxy routes purely on a request header injected upstream (e.g. by
    /// the login service); it never makes bucketing decisions itself.
    HeaderBased,
}

/// A weighted traffic split across versions of one service.
///
/// The weights must sum to 100 % (within a small tolerance to absorb
/// floating-point error accumulated by gradual-rollout step arithmetic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSplit {
    shares: Vec<(VersionId, Percentage)>,
}

impl TrafficSplit {
    /// Tolerance (in percentage points) allowed when validating that shares
    /// sum to 100.
    pub const TOLERANCE: f64 = 1e-6;

    /// Creates a traffic split.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTrafficSplit`] if no share is given, a
    /// version appears twice, or the shares do not sum to 100 %.
    pub fn new(shares: Vec<(VersionId, Percentage)>) -> Result<Self, ModelError> {
        if shares.is_empty() {
            return Err(ModelError::InvalidTrafficSplit(
                "a traffic split needs at least one version".into(),
            ));
        }
        for (i, (v, _)) in shares.iter().enumerate() {
            if shares.iter().skip(i + 1).any(|(other, _)| other == v) {
                return Err(ModelError::InvalidTrafficSplit(format!(
                    "version {v} appears more than once"
                )));
            }
        }
        let total: f64 = shares.iter().map(|(_, p)| p.value()).sum();
        if (total - 100.0).abs() > Self::TOLERANCE {
            return Err(ModelError::InvalidTrafficSplit(format!(
                "shares sum to {total}, expected 100"
            )));
        }
        Ok(Self { shares })
    }

    /// A split sending all traffic to a single version.
    pub fn all_to(version: VersionId) -> Self {
        Self {
            shares: vec![(version, Percentage::full())],
        }
    }

    /// A two-way split: `canary_share` percent to `canary`, the rest to
    /// `stable`. This is the shape used by canary releases and gradual
    /// rollouts.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTrafficSplit`] if both versions are the
    /// same.
    pub fn canary(
        stable: VersionId,
        canary: VersionId,
        canary_share: Percentage,
    ) -> Result<Self, ModelError> {
        let stable_share = Percentage::new(100.0 - canary_share.value())
            .expect("complement of a valid percentage is valid");
        Self::new(vec![(stable, stable_share), (canary, canary_share)])
    }

    /// A 50/50 split between two alternatives (A/B test).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTrafficSplit`] if both versions are the
    /// same.
    pub fn ab(a: VersionId, b: VersionId) -> Result<Self, ModelError> {
        Self::new(vec![
            (a, Percentage::new(50.0).expect("50 is valid")),
            (b, Percentage::new(50.0).expect("50 is valid")),
        ])
    }

    /// The shares of the split.
    pub fn shares(&self) -> &[(VersionId, Percentage)] {
        &self.shares
    }

    /// The share routed to `version`, or 0 % if the version is not part of
    /// the split.
    pub fn share_of(&self, version: VersionId) -> Percentage {
        self.shares
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, p)| *p)
            .unwrap_or(Percentage::zero())
    }

    /// The versions participating in the split.
    pub fn versions(&self) -> impl Iterator<Item = VersionId> + '_ {
        self.shares.iter().map(|(v, _)| *v)
    }

    /// Picks the version a request falls into given a uniform draw in
    /// `0.0..1.0` (e.g. from hashing a sticky cookie). The cumulative
    /// distribution over shares is walked in declaration order, which makes
    /// bucketing stable as long as the share order is stable.
    pub fn pick(&self, uniform_draw: f64) -> VersionId {
        let draw = uniform_draw.clamp(0.0, 1.0 - f64::EPSILON);
        let mut cumulative = 0.0;
        for (version, share) in &self.shares {
            cumulative += share.fraction();
            if draw < cumulative {
                return *version;
            }
        }
        // Fall back to the last version to absorb floating point residue.
        self.shares.last().expect("split is non-empty").0
    }
}

/// A routing rule of a state: for one service, either split live traffic
/// across versions or duplicate ("shadow") traffic to a dark-launched
/// version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoutingRule {
    /// Split live traffic between versions according to a [`TrafficSplit`].
    Split {
        /// The service whose traffic is split.
        service: ServiceId,
        /// The split across the service's versions.
        split: TrafficSplit,
        /// Whether a user, once bucketed, must stay in the same bucket for the
        /// remainder of the state (sticky sessions).
        sticky: bool,
        /// Which users the rule applies to; users not selected keep using the
        /// stable (first-listed) version.
        selector: UserSelector,
        /// How the proxy identifies users (cookie vs header routing).
        mode: RoutingMode,
    },
    /// Duplicate traffic to a shadow version without affecting user-visible
    /// responses.
    Shadow {
        /// The service whose traffic is duplicated.
        service: ServiceId,
        /// The dark-launch route.
        route: DarkLaunchRoute,
    },
}

impl RoutingRule {
    /// The service this rule applies to.
    pub fn service(&self) -> ServiceId {
        match self {
            RoutingRule::Split { service, .. } | RoutingRule::Shadow { service, .. } => *service,
        }
    }

    /// All versions referenced by this rule.
    pub fn versions(&self) -> Vec<VersionId> {
        match self {
            RoutingRule::Split { split, .. } => split.versions().collect(),
            RoutingRule::Shadow { route, .. } => vec![route.source, route.target],
        }
    }

    /// Whether the rule duplicates traffic (dark launch).
    pub fn is_shadow(&self) -> bool {
        matches!(self, RoutingRule::Shadow { .. })
    }
}

/// The dynamic routing configuration `dcᵢ = ⟨M, Γ⟩` of one service: the
/// materialised user assignments plus the active dark-launch routes. Proxies
/// hold one of these per service and update it whenever the engine pushes a
/// new state's routing rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DynamicRoutingConfig {
    assignments: BTreeMap<UserId, UserAssignment>,
    dark_launches: Vec<DarkLaunchRoute>,
}

impl DynamicRoutingConfig {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or replaces) a user assignment.
    pub fn assign(&mut self, assignment: UserAssignment) {
        self.assignments.insert(assignment.user, assignment);
    }

    /// Returns the current assignment of a user, if any.
    pub fn assignment_of(&self, user: UserId) -> Option<&UserAssignment> {
        self.assignments.get(&user)
    }

    /// Removes the assignment of a user (e.g. when a state ends and
    /// non-sticky assignments are discarded).
    pub fn unassign(&mut self, user: UserId) -> Option<UserAssignment> {
        self.assignments.remove(&user)
    }

    /// Removes all non-sticky assignments; sticky ones survive (within the
    /// state, a sticky user keeps its version even if traffic shares shift).
    pub fn clear_non_sticky(&mut self) {
        self.assignments.retain(|_, a| a.sticky);
    }

    /// Removes every assignment (used on state transitions).
    pub fn clear(&mut self) {
        self.assignments.clear();
        self.dark_launches.clear();
    }

    /// Adds a dark-launch route.
    pub fn add_dark_launch(&mut self, route: DarkLaunchRoute) {
        self.dark_launches.push(route);
    }

    /// The active dark-launch routes.
    pub fn dark_launches(&self) -> &[DarkLaunchRoute] {
        &self.dark_launches
    }

    /// All current user assignments.
    pub fn assignments(&self) -> impl Iterator<Item = &UserAssignment> {
        self.assignments.values()
    }

    /// Number of assigned users.
    pub fn assigned_users(&self) -> usize {
        self.assignments.len()
    }

    /// Number of users currently assigned to `version`.
    pub fn users_on(&self, version: VersionId) -> usize {
        self.assignments
            .values()
            .filter(|a| a.version == version)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentage_bounds() {
        assert!(Percentage::new(-0.1).is_err());
        assert!(Percentage::new(100.1).is_err());
        assert!(Percentage::new(f64::NAN).is_err());
        assert_eq!(Percentage::new(0.0).unwrap(), Percentage::zero());
        assert_eq!(Percentage::new(100.0).unwrap(), Percentage::full());
        assert_eq!(Percentage::new(25.0).unwrap().fraction(), 0.25);
        assert_eq!(Percentage::new(5.0).unwrap().to_string(), "5%");
        assert!(Percentage::try_from(50.0).is_ok());
    }

    #[test]
    fn traffic_split_must_sum_to_100() {
        let v1 = VersionId::new(1);
        let v2 = VersionId::new(2);
        assert!(TrafficSplit::new(vec![
            (v1, Percentage::new(60.0).unwrap()),
            (v2, Percentage::new(30.0).unwrap()),
        ])
        .is_err());
        assert!(TrafficSplit::new(vec![]).is_err());
        assert!(TrafficSplit::new(vec![
            (v1, Percentage::new(95.0).unwrap()),
            (v2, Percentage::new(5.0).unwrap()),
        ])
        .is_ok());
    }

    #[test]
    fn traffic_split_rejects_duplicate_versions() {
        let v1 = VersionId::new(1);
        let err = TrafficSplit::new(vec![
            (v1, Percentage::new(50.0).unwrap()),
            (v1, Percentage::new(50.0).unwrap()),
        ])
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidTrafficSplit(_)));
    }

    #[test]
    fn canary_split_computes_complement() {
        let stable = VersionId::new(1);
        let canary = VersionId::new(2);
        let split = TrafficSplit::canary(stable, canary, Percentage::new(5.0).unwrap()).unwrap();
        assert_eq!(split.share_of(stable).value(), 95.0);
        assert_eq!(split.share_of(canary).value(), 5.0);
        assert_eq!(split.share_of(VersionId::new(9)).value(), 0.0);
    }

    #[test]
    fn ab_split_is_even() {
        let split = TrafficSplit::ab(VersionId::new(1), VersionId::new(2)).unwrap();
        assert_eq!(split.share_of(VersionId::new(1)).value(), 50.0);
        assert_eq!(split.share_of(VersionId::new(2)).value(), 50.0);
    }

    #[test]
    fn pick_respects_shares() {
        let stable = VersionId::new(1);
        let canary = VersionId::new(2);
        let split = TrafficSplit::canary(stable, canary, Percentage::new(10.0).unwrap()).unwrap();
        assert_eq!(split.pick(0.0), stable);
        assert_eq!(split.pick(0.5), stable);
        assert_eq!(split.pick(0.899), stable);
        assert_eq!(split.pick(0.95), canary);
        assert_eq!(split.pick(1.0), canary);
    }

    #[test]
    fn pick_distribution_roughly_matches_shares() {
        let stable = VersionId::new(1);
        let canary = VersionId::new(2);
        let split = TrafficSplit::canary(stable, canary, Percentage::new(20.0).unwrap()).unwrap();
        let n = 10_000;
        let canary_hits = (0..n)
            .map(|i| i as f64 / n as f64)
            .filter(|&d| split.pick(d) == canary)
            .count();
        let fraction = canary_hits as f64 / n as f64;
        assert!((fraction - 0.2).abs() < 0.01, "fraction {fraction}");
    }

    #[test]
    fn routing_rule_accessors() {
        let service = ServiceId::new(1);
        let v1 = VersionId::new(1);
        let v2 = VersionId::new(2);
        let split_rule = RoutingRule::Split {
            service,
            split: TrafficSplit::ab(v1, v2).unwrap(),
            sticky: true,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        };
        assert_eq!(split_rule.service(), service);
        assert_eq!(split_rule.versions(), vec![v1, v2]);
        assert!(!split_rule.is_shadow());

        let shadow_rule = RoutingRule::Shadow {
            service,
            route: DarkLaunchRoute::new(v1, v2, Percentage::full()),
        };
        assert!(shadow_rule.is_shadow());
        assert_eq!(shadow_rule.versions(), vec![v1, v2]);
    }

    #[test]
    fn dynamic_config_assignment_lifecycle() {
        let mut config = DynamicRoutingConfig::new();
        let u1 = UserId::new(1);
        let u2 = UserId::new(2);
        let v1 = VersionId::new(1);
        let v2 = VersionId::new(2);

        config.assign(UserAssignment::new(u1, v1, true));
        config.assign(UserAssignment::new(u2, v2, false));
        assert_eq!(config.assigned_users(), 2);
        assert_eq!(config.users_on(v1), 1);
        assert_eq!(config.assignment_of(u1).unwrap().version, v1);

        // Reassignment replaces the old mapping (a user uses exactly one version).
        config.assign(UserAssignment::new(u1, v2, true));
        assert_eq!(config.users_on(v1), 0);
        assert_eq!(config.users_on(v2), 2);

        config.clear_non_sticky();
        assert_eq!(config.assigned_users(), 1);
        assert!(config.assignment_of(u2).is_none());

        config.add_dark_launch(DarkLaunchRoute::new(v1, v2, Percentage::full()));
        assert_eq!(config.dark_launches().len(), 1);

        config.clear();
        assert_eq!(config.assigned_users(), 0);
        assert!(config.dark_launches().is_empty());
        assert!(config.unassign(u1).is_none());
    }
}
