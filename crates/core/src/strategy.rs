//! Strategies `S = ⟨B, A⟩` and the phase-oriented strategy builder.
//!
//! A [`Strategy`] pairs the service catalog with the release automaton. The
//! [`StrategyBuilder`] offers the ergonomic, phase-oriented way of building
//! one: a sequence of [`PhaseSpec`]s is expanded into automaton states wired
//! up in order, with a shared *success* final state at the end and a shared
//! *rollback* final state that every phase can fall back to.

use crate::automaton::{Automaton, AutomatonBuilder};
use crate::error::ModelError;
use crate::ids::{IdAllocator, StateId, StrategyId};
use crate::outcome::{OutcomeMapping, Weight};
use crate::phase::{gradual_steps, PhaseKind, PhaseSpec};
use crate::routing::{DarkLaunchRoute, RoutingMode, RoutingRule, TrafficSplit};
use crate::service::ServiceCatalog;
use crate::state::State;
use crate::thresholds::Thresholds;
use crate::timer::Timer;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A complete multi-phase live testing strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    id: StrategyId,
    name: String,
    services: ServiceCatalog,
    automaton: Automaton,
    success_state: StateId,
    rollback_state: StateId,
}

impl Strategy {
    /// Assembles a strategy directly from its parts: a catalog, a
    /// hand-built automaton, and the designated success and rollback final
    /// states. This is the escape hatch for strategies the phase-oriented
    /// [`StrategyBuilder`] cannot express (e.g. traffic splits across more
    /// than two versions in one state).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidStrategy`] if either designated final
    /// state is not a final state of the automaton, or if the strategy fails
    /// cross-reference validation (see [`Strategy::validate`]).
    pub fn from_parts(
        id: StrategyId,
        name: impl Into<String>,
        services: ServiceCatalog,
        automaton: Automaton,
        success_state: StateId,
        rollback_state: StateId,
    ) -> Result<Self, ModelError> {
        for (role, state) in [("success", success_state), ("rollback", rollback_state)] {
            if !automaton.is_final(state) {
                return Err(ModelError::InvalidStrategy(format!(
                    "designated {role} state {state} is not a final state of the automaton"
                )));
            }
        }
        let strategy = Self {
            id,
            name: name.into(),
            services,
            automaton,
            success_state,
            rollback_state,
        };
        strategy.validate()?;
        Ok(strategy)
    }

    /// The strategy id.
    pub fn id(&self) -> StrategyId {
        self.id
    }

    /// The strategy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The service catalog `B`.
    pub fn services(&self) -> &ServiceCatalog {
        &self.services
    }

    /// The release automaton `A`.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// The final state representing a fully completed rollout.
    pub fn success_state(&self) -> StateId {
        self.success_state
    }

    /// The final state representing a rollback.
    pub fn rollback_state(&self) -> StateId {
        self.rollback_state
    }

    /// Whether the given final state means the rollout succeeded.
    pub fn is_success(&self, state: StateId) -> bool {
        state == self.success_state
    }

    /// Total nominal duration of the happy path (sum of state durations from
    /// the start state following the highest-outcome transitions until a
    /// final state is reached). This supports "reasoning about the strategy
    /// in terms of expected rollout time".
    pub fn nominal_duration(&self) -> Duration {
        let mut total = Duration::ZERO;
        let mut current = self.automaton.start();
        let mut visited = std::collections::BTreeSet::new();
        while !self.automaton.is_final(current) && visited.insert(current) {
            let state = match self.automaton.state(current) {
                Some(s) => s,
                None => break,
            };
            total += state.duration();
            let table = match self.automaton.transitions_of(current) {
                Some(t) => t,
                None => break,
            };
            // Highest range = best outcome = the happy path.
            match table.target(table.len().saturating_sub(1)) {
                Some(next) if next != current => current = next,
                _ => break,
            }
        }
        total
    }

    /// Validates the cross-references between the automaton and the catalog:
    /// every routing rule must reference known versions of known services.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidStrategy`] describing the first dangling
    /// reference found.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.services.service_count() == 0 {
            return Err(ModelError::InvalidStrategy(
                "strategy has an empty service set".into(),
            ));
        }
        for state in self.automaton.states().values() {
            for rule in state.routing() {
                let service = rule.service();
                if !self.services.contains_service(service) {
                    return Err(ModelError::InvalidStrategy(format!(
                        "state '{}' routes unknown service {service}",
                        state.name()
                    )));
                }
                for version in rule.versions() {
                    self.services
                        .ensure_version_of(service, version)
                        .map_err(|e| {
                            ModelError::InvalidStrategy(format!("state '{}': {e}", state.name()))
                        })?;
                }
            }
        }
        Ok(())
    }
}

/// Builds a [`Strategy`] from a sequence of phases.
#[derive(Debug)]
pub struct StrategyBuilder {
    id: StrategyId,
    name: String,
    services: ServiceCatalog,
    phases: Vec<PhaseSpec>,
    routing_mode: RoutingMode,
}

impl StrategyBuilder {
    /// Creates a builder for a strategy over the given catalog.
    pub fn new(name: impl Into<String>, services: ServiceCatalog) -> Self {
        Self {
            id: StrategyId::new(0),
            name: name.into(),
            services,
            phases: Vec::new(),
            routing_mode: RoutingMode::CookieBased,
        }
    }

    /// Overrides the strategy id (defaults to 0; the engine reassigns ids on
    /// scheduling).
    pub fn id(mut self, id: StrategyId) -> Self {
        self.id = id;
        self
    }

    /// Selects header-based instead of cookie-based routing for all phases.
    pub fn routing_mode(mut self, mode: RoutingMode) -> Self {
        self.routing_mode = mode;
        self
    }

    /// Appends a phase.
    pub fn phase(mut self, phase: PhaseSpec) -> Self {
        self.phases.push(phase);
        self
    }

    /// Appends several phases.
    pub fn phases(mut self, phases: impl IntoIterator<Item = PhaseSpec>) -> Self {
        self.phases.extend(phases);
        self
    }

    /// Expands the phases into an automaton and assembles the strategy.
    ///
    /// Every phase becomes one state (gradual rollouts: one state per step).
    /// Each state transitions to the next phase's first state when its
    /// outcome exceeds the success threshold and to the shared rollback state
    /// otherwise; the last phase transitions to the shared success state.
    /// Phases without checks get a single pass-through threshold so that the
    /// structural invariants of the automaton hold.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidStrategy`] if no phase is given or a
    /// phase references services/versions not present in the catalog, and
    /// propagates automaton validation errors.
    pub fn build(self) -> Result<Strategy, ModelError> {
        if self.phases.is_empty() {
            return Err(ModelError::InvalidStrategy(
                "a strategy needs at least one phase".into(),
            ));
        }
        for phase in &self.phases {
            let service = phase.service();
            if !self.services.contains_service(service) {
                return Err(ModelError::InvalidStrategy(format!(
                    "phase '{}' references unknown service {service}",
                    phase.name()
                )));
            }
            for version in phase.versions() {
                self.services
                    .ensure_version_of(service, version)
                    .map_err(|e| {
                        ModelError::InvalidStrategy(format!("phase '{}': {e}", phase.name()))
                    })?;
            }
        }

        let mut state_ids = IdAllocator::new();
        let mut check_ids = IdAllocator::new();

        // Pre-allocate ids: phase states first, then success and rollback.
        let mut phase_state_ids: Vec<Vec<StateId>> = Vec::with_capacity(self.phases.len());
        for phase in &self.phases {
            let ids = (0..phase.state_count())
                .map(|_| state_ids.next_id())
                .collect();
            phase_state_ids.push(ids);
        }
        let success: StateId = state_ids.next_id();
        let rollback: StateId = state_ids.next_id();

        let mut builder = AutomatonBuilder::new();
        let mut transitions: Vec<(StateId, Vec<StateId>)> = Vec::new();

        for (phase_index, phase) in self.phases.iter().enumerate() {
            let ids = &phase_state_ids[phase_index];
            let next_phase_entry = phase_state_ids
                .get(phase_index + 1)
                .and_then(|v| v.first().copied())
                .unwrap_or(success);

            match phase.kind() {
                PhaseKind::GradualRollout {
                    service,
                    stable,
                    canary,
                    from,
                    to,
                    step,
                    step_duration,
                } => {
                    let shares = gradual_steps(*from, *to, *step);
                    for (step_index, share) in shares.iter().enumerate() {
                        let state_id = ids[step_index];
                        let next = ids.get(step_index + 1).copied().unwrap_or(next_phase_entry);
                        let split = TrafficSplit::canary(*stable, *canary, *share)?;
                        let rule = RoutingRule::Split {
                            service: *service,
                            split,
                            sticky: phase.is_sticky(),
                            selector: phase.user_selector().clone(),
                            mode: self.routing_mode,
                        };
                        let state = self.build_state(
                            state_id,
                            &format!("{}-{}pct", phase.name(), share.value()),
                            phase,
                            vec![rule],
                            Some(*step_duration),
                            rollback,
                            &mut check_ids,
                        )?;
                        builder = builder.state(state);
                        transitions.push((state_id, vec![rollback, next]));
                    }
                }
                kind => {
                    let state_id = ids[0];
                    let rule = match kind {
                        PhaseKind::Canary {
                            service,
                            stable,
                            canary,
                            share,
                        } => RoutingRule::Split {
                            service: *service,
                            split: TrafficSplit::canary(*stable, *canary, *share)?,
                            sticky: phase.is_sticky(),
                            selector: phase.user_selector().clone(),
                            mode: self.routing_mode,
                        },
                        PhaseKind::AbTest { service, a, b } => RoutingRule::Split {
                            service: *service,
                            split: TrafficSplit::ab(*a, *b)?,
                            sticky: phase.is_sticky(),
                            selector: phase.user_selector().clone(),
                            mode: self.routing_mode,
                        },
                        PhaseKind::DarkLaunch {
                            service,
                            source,
                            shadow,
                            share,
                        } => RoutingRule::Shadow {
                            service: *service,
                            route: DarkLaunchRoute::new(*source, *shadow, *share),
                        },
                        PhaseKind::GradualRollout { .. } => unreachable!("handled above"),
                    };
                    let state = self.build_state(
                        state_id,
                        phase.name(),
                        phase,
                        vec![rule],
                        phase.explicit_duration(),
                        rollback,
                        &mut check_ids,
                    )?;
                    builder = builder.state(state);
                    transitions.push((state_id, vec![rollback, next_phase_entry]));
                }
            }
        }

        // Terminal states: success keeps 100 % on the rolled-out version of
        // the last phase's service; rollback reverts to the stable version of
        // the first phase's service. Both are modelled as short final states.
        let last_phase = self.phases.last().expect("non-empty");
        let first_phase = self.phases.first().expect("non-empty");
        let success_rule = terminal_rule(last_phase, true, self.routing_mode);
        let rollback_rule = terminal_rule(first_phase, false, self.routing_mode);
        let success_state = State::builder(success, "success")
            .duration(Duration::from_secs(1))
            .routing(success_rule)
            .build()?;
        let rollback_state = State::builder(rollback, "rollback")
            .duration(Duration::from_secs(1))
            .routing(rollback_rule)
            .build()?;
        builder = builder
            .state(success_state)
            .state(rollback_state)
            .start(phase_state_ids[0][0])
            .final_state(success)
            .final_state(rollback);
        for (from, targets) in transitions {
            builder = builder.transition(from, targets);
        }
        let automaton = builder.build()?;
        let strategy = Strategy {
            id: self.id,
            name: self.name,
            services: self.services,
            automaton,
            success_state: success,
            rollback_state: rollback,
        };
        strategy.validate()?;
        Ok(strategy)
    }

    /// Builds a single state for a phase: instantiate the phase's checks (or
    /// a pass-through threshold when there are none) plus routing rules.
    ///
    /// The builder's single-threshold semantics are "the state passes iff the
    /// weighted outcome is strictly positive". Basic checks contribute their
    /// mapped value; exception checks are weighted with 0 in the linear
    /// combination because their role is to abort *immediately* on failure
    /// (via the fallback transition) — letting their raw success count flow
    /// into the sum would mask failing basic checks. States whose only checks
    /// are exception checks (and states without any checks) get a synthetic
    /// always-pass check so that an uneventful phase still advances.
    #[allow(clippy::too_many_arguments)]
    fn build_state(
        &self,
        id: StateId,
        name: &str,
        phase: &PhaseSpec,
        rules: Vec<RoutingRule>,
        duration: Option<Duration>,
        rollback: StateId,
        check_ids: &mut IdAllocator,
    ) -> Result<State, ModelError> {
        let mut builder = State::builder(id, name);
        for rule in rules {
            builder = builder.routing(rule);
        }
        let has_basic_checks = phase.checks().iter().any(|c| c.mapping.is_some());
        let pass_check = |check_ids: &mut IdAllocator,
                          duration: Duration|
         -> Result<crate::check::Check, ModelError> {
            Ok(crate::check::Check::basic(
                check_ids.next_id(),
                format!("{name}-pass"),
                crate::check::CheckSpec::all_of(vec![]),
                Timer::new(duration, 1)?,
                OutcomeMapping::binary(0, 0, 1)?,
            ))
        };
        if phase.checks().is_empty() {
            // No checks: the state passes automatically after its duration.
            let duration = duration
                .or(phase.explicit_duration())
                .unwrap_or(Duration::from_secs(60));
            builder = builder
                .check(pass_check(check_ids, duration)?)
                .thresholds(Thresholds::single(0))
                .duration(duration);
        } else {
            for phase_check in phase.checks() {
                let check = phase_check.instantiate(check_ids.next_id(), rollback);
                let weight = if check.is_exception() {
                    Weight::new(0.0).expect("zero is finite")
                } else {
                    phase_check.weight
                };
                builder = builder.weighted_check(check, weight);
            }
            let state_duration = duration.or(phase.explicit_duration());
            if !has_basic_checks {
                // Only exception checks: add a synthetic pass so the outcome
                // is positive when nothing trips.
                let pass_duration = state_duration.unwrap_or(Duration::from_secs(60));
                builder = builder.check(pass_check(check_ids, pass_duration)?);
            }
            // Success iff the weighted combination is strictly positive.
            builder = builder.thresholds(Thresholds::single(0));
            if let Some(d) = state_duration {
                builder = builder.duration(d);
            }
        }
        builder.build()
    }
}

/// The routing rule installed by a terminal state: all traffic to the new
/// version (success) or all traffic back to the stable version (rollback).
fn terminal_rule(phase: &PhaseSpec, success: bool, mode: RoutingMode) -> RoutingRule {
    let service = phase.service();
    let versions = phase.versions();
    let stable = versions[0];
    let new = versions[1];
    let target = if success { new } else { stable };
    RoutingRule::Split {
        service,
        split: TrafficSplit::all_to(target),
        sticky: false,
        selector: crate::user::UserSelector::All,
        mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{CheckSpec, MetricQuery, Validator};
    use crate::ids::{ServiceId, VersionId};
    use crate::phase::PhaseCheck;
    use crate::routing::Percentage;
    use crate::service::{Endpoint, Service, ServiceVersion};

    fn catalog() -> (ServiceCatalog, ServiceId, VersionId, VersionId) {
        let mut catalog = ServiceCatalog::new();
        let search = catalog.add_service(Service::new("search"));
        let stable = catalog
            .add_version(
                search,
                ServiceVersion::new("search-v1", Endpoint::new("10.0.0.1", 80)),
            )
            .unwrap();
        let fast = catalog
            .add_version(
                search,
                ServiceVersion::new("fastsearch", Endpoint::new("10.0.0.2", 80)),
            )
            .unwrap();
        (catalog, search, stable, fast)
    }

    fn error_check() -> PhaseCheck {
        PhaseCheck::basic(
            "errors",
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors"),
                Validator::LessThan(5.0),
            ),
            Timer::from_secs(12, 5).unwrap(),
            OutcomeMapping::binary(5, -1, 1).unwrap(),
        )
    }

    #[test]
    fn single_canary_phase_builds_three_states() {
        let (catalog, search, stable, fast) = catalog();
        let strategy = StrategyBuilder::new("canary-only", catalog)
            .phase(
                PhaseSpec::canary(
                    "canary-5",
                    search,
                    stable,
                    fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(error_check()),
            )
            .build()
            .unwrap();
        assert_eq!(strategy.automaton().state_count(), 3);
        assert_eq!(strategy.name(), "canary-only");
        assert!(strategy.automaton().is_final(strategy.success_state()));
        assert!(strategy.automaton().is_final(strategy.rollback_state()));
        assert!(strategy.is_success(strategy.success_state()));
        assert!(!strategy.is_success(strategy.rollback_state()));
        strategy.validate().unwrap();
    }

    #[test]
    fn multi_phase_strategy_chains_phases() {
        let (catalog, search, stable, fast) = catalog();
        let strategy = StrategyBuilder::new("full", catalog)
            .phase(
                PhaseSpec::canary(
                    "canary",
                    search,
                    stable,
                    fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(error_check())
                .duration_secs(60),
            )
            .phase(
                PhaseSpec::dark_launch("dark", search, stable, fast, Percentage::full())
                    .duration_secs(60),
            )
            .phase(
                PhaseSpec::ab_test("ab", search, stable, fast)
                    .check(error_check())
                    .duration_secs(60),
            )
            .phase(PhaseSpec::gradual_rollout(
                "rollout",
                search,
                stable,
                fast,
                Percentage::new(5.0).unwrap(),
                Percentage::new(100.0).unwrap(),
                Percentage::new(5.0).unwrap(),
                Duration::from_secs(10),
            ))
            .build()
            .unwrap();
        // 1 + 1 + 1 + 20 phase states + success + rollback
        assert_eq!(strategy.automaton().state_count(), 25);
        // Start state is the canary state.
        let start = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        assert_eq!(start.name(), "canary");
        // Every non-final state can reach rollback (first transition target).
        for id in strategy.automaton().states().keys() {
            if !strategy.automaton().is_final(*id) {
                let table = strategy.automaton().transitions_of(*id).unwrap();
                assert_eq!(table.target(0), Some(strategy.rollback_state()));
            }
        }
    }

    #[test]
    fn empty_strategy_rejected() {
        let (catalog, _, _, _) = catalog();
        assert!(matches!(
            StrategyBuilder::new("empty", catalog).build(),
            Err(ModelError::InvalidStrategy(_))
        ));
    }

    #[test]
    fn phase_with_foreign_version_rejected() {
        let (mut catalog, search, stable, _) = catalog();
        let product = catalog.add_service(Service::new("product"));
        let product_v = catalog
            .add_version(
                product,
                ServiceVersion::new("v1", Endpoint::new("10.0.1.1", 80)),
            )
            .unwrap();
        let err = StrategyBuilder::new("broken", catalog)
            .phase(PhaseSpec::canary(
                "canary",
                search,
                stable,
                product_v,
                Percentage::new(5.0).unwrap(),
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidStrategy(_)));
    }

    #[test]
    fn nominal_duration_sums_happy_path() {
        let (catalog, search, stable, fast) = catalog();
        let strategy = StrategyBuilder::new("timed", catalog)
            .phase(
                PhaseSpec::canary(
                    "canary",
                    search,
                    stable,
                    fast,
                    Percentage::new(5.0).unwrap(),
                )
                .duration_secs(60),
            )
            .phase(
                PhaseSpec::dark_launch("dark", search, stable, fast, Percentage::full())
                    .duration_secs(60),
            )
            .build()
            .unwrap();
        // 60 + 60 + 1 s success state... nominal duration counts only
        // non-final states on the happy path.
        assert_eq!(strategy.nominal_duration(), Duration::from_secs(120));
    }

    #[test]
    fn gradual_rollout_steps_route_increasing_shares() {
        let (catalog, search, stable, fast) = catalog();
        let strategy = StrategyBuilder::new("rollout", catalog)
            .phase(PhaseSpec::gradual_rollout(
                "rollout",
                search,
                stable,
                fast,
                Percentage::new(5.0).unwrap(),
                Percentage::new(20.0).unwrap(),
                Percentage::new(5.0).unwrap(),
                Duration::from_secs(10),
            ))
            .build()
            .unwrap();
        // Steps: 5, 10, 15, 20 → 4 states + success + rollback.
        assert_eq!(strategy.automaton().state_count(), 6);
        let mut shares = Vec::new();
        let mut current = strategy.automaton().start();
        while !strategy.automaton().is_final(current) {
            let state = strategy.automaton().state(current).unwrap();
            if let Some(RoutingRule::Split { split, .. }) = state.routing().first() {
                shares.push(split.share_of(fast).value());
            }
            let table = strategy.automaton().transitions_of(current).unwrap();
            current = table.target(table.len() - 1).unwrap();
        }
        assert_eq!(shares, vec![5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn header_routing_mode_propagates_to_rules() {
        let (catalog, search, stable, fast) = catalog();
        let strategy = StrategyBuilder::new("hdr", catalog)
            .routing_mode(RoutingMode::HeaderBased)
            .phase(PhaseSpec::canary(
                "canary",
                search,
                stable,
                fast,
                Percentage::new(5.0).unwrap(),
            ))
            .build()
            .unwrap();
        let start = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        match start.routing().first().unwrap() {
            RoutingRule::Split { mode, .. } => assert_eq!(*mode, RoutingMode::HeaderBased),
            _ => panic!("expected split rule"),
        }
    }
}
