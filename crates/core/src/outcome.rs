//! Check outcomes, output mappings, weights, and state-level aggregation.
//!
//! A single execution of a check's metric evaluating function yields `0` or
//! `1`. Over the course of a state, the executions of one check are summed
//! into an aggregated value `e ∈ ℤ`. Basic checks then map `e` through an
//! [`OutcomeMapping`] (thresholds → normalised integer); exception checks
//! either report the number of successful executions or trigger an immediate
//! fallback. Finally, all check results of a state are combined as a weighted
//! linear combination into the [`StateOutcome`] that drives the transition
//! function `δ`.

use crate::error::ModelError;
use crate::ids::{CheckId, StateId};
use crate::thresholds::Thresholds;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A weighting factor `wᵢ ∈ W` applied to a check's result in the state-level
/// linear combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weight(f64);

impl Weight {
    /// Creates a weight.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidWeights`] if the value is not finite.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if !value.is_finite() {
            return Err(ModelError::InvalidWeights(format!(
                "weight must be finite, got {value}"
            )));
        }
        Ok(Self(value))
    }

    /// The neutral weight of `1.0`.
    pub const fn one() -> Self {
        Self(1.0)
    }

    /// The underlying value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for Weight {
    fn default() -> Self {
        Self::one()
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One entry of an output mapping: values in `(lower, upper]` map to `result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeRange {
    /// Exclusive lower bound (`None` = −∞).
    pub lower: Option<i64>,
    /// Inclusive upper bound (`None` = +∞).
    pub upper: Option<i64>,
    /// The normalised integer result `rᵢ` for this range.
    pub result: i64,
}

/// The output mapping `Out_cᵢ` of a basic check: the aggregated execution sum
/// is classified by the check's thresholds and mapped onto a normalised
/// integer value.
///
/// ```
/// use bifrost_core::{OutcomeMapping, Thresholds};
///
/// // The paper's response-time example: thresholds ⟨75, 95⟩ with mappings
/// // (−∞,75,−5), (75,95,4), (95,∞,5).
/// let mapping = OutcomeMapping::new(Thresholds::new(vec![75, 95])?, vec![-5, 4, 5])?;
/// assert_eq!(mapping.map(60), -5);
/// assert_eq!(mapping.map(80), 4);
/// assert_eq!(mapping.map(100), 5);
/// # Ok::<(), bifrost_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeMapping {
    thresholds: Thresholds,
    results: Vec<i64>,
}

impl OutcomeMapping {
    /// Creates an output mapping from thresholds and one result per induced
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidOutcomeMapping`] if the number of results
    /// does not equal `thresholds.range_count()`.
    pub fn new(thresholds: Thresholds, results: Vec<i64>) -> Result<Self, ModelError> {
        if results.len() != thresholds.range_count() {
            return Err(ModelError::InvalidOutcomeMapping(format!(
                "{} thresholds require {} results, got {}",
                thresholds.len(),
                thresholds.range_count(),
                results.len()
            )));
        }
        Ok(Self {
            thresholds,
            results,
        })
    }

    /// A binary mapping used by the simplified DSL semantics: values above
    /// `threshold - 1` (i.e. `>= threshold`) map to `success`, everything else
    /// to `failure`.
    ///
    /// # Errors
    ///
    /// Never fails for finite inputs; kept fallible for interface symmetry.
    pub fn binary(threshold: i64, failure: i64, success: i64) -> Result<Self, ModelError> {
        Self::new(Thresholds::single(threshold - 1), vec![failure, success])
    }

    /// The thresholds of the mapping.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// The per-range results, index-aligned with the threshold ranges.
    pub fn results(&self) -> &[i64] {
        &self.results
    }

    /// Maps an aggregated execution sum onto its normalised result value.
    pub fn map(&self, aggregated: i64) -> i64 {
        self.results[self.thresholds.classify(aggregated)]
    }

    /// Returns the mapping as explicit [`OutcomeRange`] entries.
    pub fn ranges(&self) -> Vec<OutcomeRange> {
        (0..self.thresholds.range_count())
            .map(|i| {
                let (lower, upper) = self.thresholds.range_bounds(i);
                OutcomeRange {
                    lower,
                    upper,
                    result: self.results[i],
                }
            })
            .collect()
    }
}

/// The result of a completed check within a state execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// The check this outcome belongs to.
    pub check: CheckId,
    /// Sum of the 0/1 results of every timed execution (`Σⱼ f_cᵢʲ(Ωᵢ)`).
    pub aggregated_successes: i64,
    /// Number of executions performed.
    pub executions: u32,
    /// The value contributed to the state-level combination: for basic checks
    /// the mapped value, for exception checks the success count.
    pub value: i64,
    /// Whether an exception check tripped (an execution returned 0) and the
    /// automaton must switch to the fallback state immediately.
    pub exception_triggered: bool,
}

impl CheckOutcome {
    /// Outcome of a basic check after mapping the aggregated sum.
    pub fn basic(check: CheckId, aggregated: i64, executions: u32, mapped: i64) -> Self {
        Self {
            check,
            aggregated_successes: aggregated,
            executions,
            value: mapped,
            exception_triggered: false,
        }
    }

    /// Outcome of an exception check that completed all executions
    /// successfully (contributes `n`, the number of executions).
    pub fn exception_passed(check: CheckId, executions: u32) -> Self {
        Self {
            check,
            aggregated_successes: executions as i64,
            executions,
            value: executions as i64,
            exception_triggered: false,
        }
    }

    /// Outcome of an exception check whose evaluation returned `0`, tripping
    /// an immediate fallback transition.
    pub fn exception_tripped(check: CheckId, successes_before_trip: i64, executions: u32) -> Self {
        Self {
            check,
            aggregated_successes: successes_before_trip,
            executions,
            value: successes_before_trip,
            exception_triggered: true,
        }
    }
}

/// The aggregated outcome of a state: the weighted linear combination of its
/// check results, plus bookkeeping used by the engine and dashboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateOutcome {
    /// The state this outcome belongs to.
    pub state: StateId,
    /// Per-check outcomes in check order.
    pub checks: Vec<CheckOutcome>,
    /// The weighted linear combination `Σᵢ fᵢ · wᵢ`, truncated to `ℤ`.
    pub value: i64,
    /// Set if an exception check tripped; the automaton transitions to this
    /// fallback state regardless of `value`.
    pub exception_fallback: Option<StateId>,
}

impl StateOutcome {
    /// Computes the weighted linear combination of check outcomes.
    ///
    /// The weighted sum is computed in `f64` and truncated toward zero to
    /// yield the integer outcome `e ∈ ℤ` required by the transition function.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidWeights`] if the number of weights does
    /// not match the number of outcomes.
    pub fn combine(
        state: StateId,
        checks: Vec<CheckOutcome>,
        weights: &[Weight],
        exception_fallback: Option<StateId>,
    ) -> Result<Self, ModelError> {
        if checks.len() != weights.len() {
            return Err(ModelError::InvalidWeights(format!(
                "{} checks but {} weights",
                checks.len(),
                weights.len()
            )));
        }
        let value = checks
            .iter()
            .zip(weights)
            .map(|(c, w)| c.value as f64 * w.value())
            .sum::<f64>()
            .trunc() as i64;
        Ok(Self {
            state,
            checks,
            value,
            exception_fallback,
        })
    }

    /// Whether an exception check tripped during the state.
    pub fn exception_triggered(&self) -> bool {
        self.exception_fallback.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_rejects_non_finite() {
        assert!(Weight::new(f64::NAN).is_err());
        assert!(Weight::new(f64::INFINITY).is_err());
        assert_eq!(Weight::new(2.5).unwrap().value(), 2.5);
        assert_eq!(Weight::default().value(), 1.0);
    }

    #[test]
    fn mapping_requires_one_result_per_range() {
        let t = Thresholds::new(vec![75, 95]).unwrap();
        assert!(OutcomeMapping::new(t.clone(), vec![1, 2]).is_err());
        assert!(OutcomeMapping::new(t, vec![1, 2, 3]).is_ok());
    }

    #[test]
    fn paper_response_time_mapping() {
        let mapping =
            OutcomeMapping::new(Thresholds::new(vec![75, 95]).unwrap(), vec![-5, 4, 5]).unwrap();
        // "if the check fails more than 24 times [i.e. ≤ 75 successes], the
        // mapping returns −5, between 75 and 95 → 4, otherwise 5"
        assert_eq!(mapping.map(70), -5);
        assert_eq!(mapping.map(75), -5);
        assert_eq!(mapping.map(76), 4);
        assert_eq!(mapping.map(95), 4);
        assert_eq!(mapping.map(96), 5);
        assert_eq!(mapping.map(100), 5);
    }

    #[test]
    fn binary_mapping_matches_dsl_semantics() {
        // DSL: threshold 12 means "true only if all 12 executions succeed".
        let mapping = OutcomeMapping::binary(12, 0, 1).unwrap();
        assert_eq!(mapping.map(12), 1);
        assert_eq!(mapping.map(11), 0);
        assert_eq!(mapping.map(0), 0);
    }

    #[test]
    fn ranges_reconstruct_mapping() {
        let mapping =
            OutcomeMapping::new(Thresholds::new(vec![75, 95]).unwrap(), vec![-5, 4, 5]).unwrap();
        let ranges = mapping.ranges();
        assert_eq!(ranges.len(), 3);
        assert_eq!(
            ranges[0],
            OutcomeRange {
                lower: None,
                upper: Some(75),
                result: -5
            }
        );
        assert_eq!(
            ranges[1],
            OutcomeRange {
                lower: Some(75),
                upper: Some(95),
                result: 4
            }
        );
        assert_eq!(
            ranges[2],
            OutcomeRange {
                lower: Some(95),
                upper: None,
                result: 5
            }
        );
    }

    #[test]
    fn exception_outcomes() {
        let passed = CheckOutcome::exception_passed(CheckId::new(0), 10);
        assert_eq!(passed.value, 10);
        assert!(!passed.exception_triggered);

        let tripped = CheckOutcome::exception_tripped(CheckId::new(0), 4, 5);
        assert_eq!(tripped.value, 4);
        assert!(tripped.exception_triggered);
    }

    #[test]
    fn weighted_combination_truncates_to_integer() {
        let checks = vec![
            CheckOutcome::basic(CheckId::new(0), 90, 100, 4),
            CheckOutcome::basic(CheckId::new(1), 100, 100, 5),
        ];
        let weights = vec![Weight::new(0.5).unwrap(), Weight::new(0.5).unwrap()];
        let outcome = StateOutcome::combine(StateId::new(1), checks, &weights, None).unwrap();
        // 4*0.5 + 5*0.5 = 4.5 → truncated to 4
        assert_eq!(outcome.value, 4);
        assert!(!outcome.exception_triggered());
    }

    #[test]
    fn combination_rejects_mismatched_weights() {
        let checks = vec![CheckOutcome::basic(CheckId::new(0), 1, 1, 1)];
        let err = StateOutcome::combine(StateId::new(0), checks, &[], None).unwrap_err();
        assert!(matches!(err, ModelError::InvalidWeights(_)));
    }

    #[test]
    fn exception_fallback_is_reported() {
        let checks = vec![CheckOutcome::exception_tripped(CheckId::new(0), 2, 3)];
        let outcome = StateOutcome::combine(
            StateId::new(0),
            checks,
            &[Weight::one()],
            Some(StateId::new(9)),
        )
        .unwrap();
        assert!(outcome.exception_triggered());
        assert_eq!(outcome.exception_fallback, Some(StateId::new(9)));
    }
}
