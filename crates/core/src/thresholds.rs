//! Ordered threshold tuples and the disjoint ranges they induce.
//!
//! A tuple of thresholds `⟨t₁, …, tₙ⟩` with `n` values forms `n + 1` disjoint
//! ranges: `(-∞, t₁]`, `(t₁, t₂]`, …, `(tₙ, ∞)`. Both the state transition
//! function `δ` and the output mapping of basic checks rely on this
//! partitioning: an aggregated outcome value is classified into exactly one
//! range, and the range index selects the next state (or the mapped output
//! value).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered, strictly increasing tuple of integer thresholds.
///
/// The thresholds partition the integers into `len() + 1` disjoint ranges,
/// indexed from `0` (the range below or equal to the first threshold) to
/// `len()` (the range strictly above the last threshold).
///
/// ```
/// use bifrost_core::Thresholds;
///
/// let t = Thresholds::new(vec![2, 4])?;
/// assert_eq!(t.range_count(), 3);
/// assert_eq!(t.classify(1), 0);  // -∞ < 1 ≤ 2
/// assert_eq!(t.classify(2), 0);  // boundary belongs to the lower range
/// assert_eq!(t.classify(3), 1);  // 2 < 3 ≤ 4
/// assert_eq!(t.classify(9), 2);  // 4 < 9
/// # Ok::<(), bifrost_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Thresholds {
    values: Vec<i64>,
}

impl Thresholds {
    /// Creates a threshold tuple.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidThresholds`] if the tuple is empty or not
    /// strictly increasing.
    pub fn new(values: Vec<i64>) -> Result<Self, ModelError> {
        if values.is_empty() {
            return Err(ModelError::InvalidThresholds(
                "a threshold tuple must contain at least one value".into(),
            ));
        }
        if values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ModelError::InvalidThresholds(format!(
                "thresholds must be strictly increasing, got {values:?}"
            )));
        }
        Ok(Self { values })
    }

    /// Creates a tuple holding a single threshold.
    pub fn single(value: i64) -> Self {
        Self {
            values: vec![value],
        }
    }

    /// The threshold values in increasing order.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Number of thresholds `n`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tuple is empty (never true for validated tuples).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of disjoint ranges induced by the thresholds (`n + 1`).
    pub fn range_count(&self) -> usize {
        self.values.len() + 1
    }

    /// Classifies `value` into the index of the range it falls into.
    ///
    /// Range `i` (for `i < n`) is `(tᵢ₋₁, tᵢ]`; range `n` is `(tₙ, ∞)`.
    pub fn classify(&self, value: i64) -> usize {
        self.values
            .iter()
            .position(|&t| value <= t)
            .unwrap_or(self.values.len())
    }

    /// The inclusive-exclusive bounds of range `index` as
    /// `(lower_exclusive, upper_inclusive)`, where `None` stands for an
    /// unbounded side.
    ///
    /// # Panics
    ///
    /// Panics if `index >= range_count()`.
    pub fn range_bounds(&self, index: usize) -> (Option<i64>, Option<i64>) {
        assert!(
            index < self.range_count(),
            "range index {index} out of bounds for {} ranges",
            self.range_count()
        );
        let lower = if index == 0 {
            None
        } else {
            Some(self.values[index - 1])
        };
        let upper = if index == self.values.len() {
            None
        } else {
            Some(self.values[index])
        };
        (lower, upper)
    }

    /// Returns `true` if `value` falls into range `index`.
    pub fn contains(&self, index: usize, value: i64) -> bool {
        index < self.range_count() && self.classify(value) == index
    }
}

impl fmt::Display for Thresholds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl TryFrom<Vec<i64>> for Thresholds {
    type Error = ModelError;

    fn try_from(values: Vec<i64>) -> Result<Self, Self::Error> {
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_thresholds_rejected() {
        assert!(matches!(
            Thresholds::new(vec![]),
            Err(ModelError::InvalidThresholds(_))
        ));
    }

    #[test]
    fn non_increasing_thresholds_rejected() {
        assert!(Thresholds::new(vec![3, 3]).is_err());
        assert!(Thresholds::new(vec![5, 2]).is_err());
        assert!(Thresholds::new(vec![1, 2, 2]).is_err());
    }

    #[test]
    fn single_threshold_forms_two_ranges() {
        let t = Thresholds::single(3);
        assert_eq!(t.range_count(), 2);
        assert_eq!(t.classify(3), 0);
        assert_eq!(t.classify(4), 1);
        assert_eq!(t.classify(i64::MIN), 0);
        assert_eq!(t.classify(i64::MAX), 1);
    }

    #[test]
    fn paper_example_ranges() {
        // The paper's example: thresholds ⟨2, 4⟩ form the ranges
        // -∞ < x ≤ 2, 2 < x ≤ 4, 4 < x ≤ ∞.
        let t = Thresholds::new(vec![2, 4]).unwrap();
        assert_eq!(t.range_count(), 3);
        assert_eq!(t.classify(-10), 0);
        assert_eq!(t.classify(2), 0);
        assert_eq!(t.classify(3), 1);
        assert_eq!(t.classify(4), 1);
        assert_eq!(t.classify(5), 2);
    }

    #[test]
    fn range_bounds_are_half_open() {
        let t = Thresholds::new(vec![2, 4]).unwrap();
        assert_eq!(t.range_bounds(0), (None, Some(2)));
        assert_eq!(t.range_bounds(1), (Some(2), Some(4)));
        assert_eq!(t.range_bounds(2), (Some(4), None));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_bounds_panics_out_of_range() {
        let t = Thresholds::single(0);
        let _ = t.range_bounds(2);
    }

    #[test]
    fn contains_matches_classify() {
        let t = Thresholds::new(vec![0, 10, 20]).unwrap();
        for value in [-5, 0, 1, 10, 11, 20, 21, 100] {
            let idx = t.classify(value);
            assert!(t.contains(idx, value));
            for other in 0..t.range_count() {
                if other != idx {
                    assert!(!t.contains(other, value));
                }
            }
        }
    }

    #[test]
    fn display_renders_tuple_notation() {
        let t = Thresholds::new(vec![3, 4]).unwrap();
        assert_eq!(t.to_string(), "⟨3, 4⟩");
    }

    #[test]
    fn try_from_vec() {
        let t = Thresholds::try_from(vec![1, 2, 3]).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(Thresholds::try_from(vec![]).is_err());
    }
}
