//! Services, versions, and the catalog (`B` in the paper).
//!
//! A [`Service`] models an atomic architectural component of the application
//! (e.g. one microservice). A service is available in one or more
//! [`ServiceVersion`]s; each version carries its static configuration `scᵢ`
//! ([`Endpoint`]: host, port). Whenever a change is rolled out, a new version
//! of the service is launched and registered with the [`ServiceCatalog`].

use crate::error::ModelError;
use crate::ids::{IdAllocator, ServiceId, VersionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Static configuration `scᵢ` of a service version: where the version can be
/// reached on the (possibly simulated) network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    host: String,
    port: u16,
}

impl Endpoint {
    /// Creates an endpoint from a host name (or IP address) and a port.
    pub fn new(host: impl Into<String>, port: u16) -> Self {
        Self {
            host: host.into(),
            port,
        }
    }

    /// The host name or IP address.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The TCP port.
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// One concrete, deployable version `vⱼ` of a service, together with its
/// static configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceVersion {
    name: String,
    endpoint: Endpoint,
    /// Free-form labels (e.g. `track=canary`, `git-sha=…`). Not interpreted
    /// by the model, but carried along for tooling.
    labels: BTreeMap<String, String>,
}

impl ServiceVersion {
    /// Creates a version with a human readable name and an endpoint.
    pub fn new(name: impl Into<String>, endpoint: Endpoint) -> Self {
        Self {
            name: name.into(),
            endpoint,
            labels: BTreeMap::new(),
        }
    }

    /// Adds a label to the version (builder style).
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// The version name (e.g. `"v2-fastsearch"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The static endpoint configuration.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The labels attached to this version.
    pub fn labels(&self) -> &BTreeMap<String, String> {
        &self.labels
    }
}

/// An atomic architectural component `bᵢ ∈ B` (a microservice).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Service {
    name: String,
    description: Option<String>,
}

impl Service {
    /// Creates a service with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            description: None,
        }
    }

    /// Attaches a description (builder style).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// The service name (e.g. `"search"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The optional description.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }
}

/// Internal record of a registered service plus its versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServiceEntry {
    service: Service,
    versions: Vec<VersionId>,
}

/// The set of services `B = {b₁, …, bₙ}` of a strategy plus every known
/// version of each service.
///
/// The catalog owns id allocation so that services and versions get stable,
/// deterministic identifiers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceCatalog {
    services: BTreeMap<ServiceId, ServiceEntry>,
    versions: BTreeMap<VersionId, (ServiceId, ServiceVersion)>,
    service_ids: IdAllocator,
    version_ids: IdAllocator,
}

impl ServiceCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service and returns its id.
    pub fn add_service(&mut self, service: Service) -> ServiceId {
        let id: ServiceId = self.service_ids.next_id();
        self.services.insert(
            id,
            ServiceEntry {
                service,
                versions: Vec::new(),
            },
        );
        id
    }

    /// Registers a new version of `service`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownService`] if the service is not part of
    /// the catalog and [`ModelError::Duplicate`] if a version with the same
    /// name is already registered for the service.
    pub fn add_version(
        &mut self,
        service: ServiceId,
        version: ServiceVersion,
    ) -> Result<VersionId, ModelError> {
        let entry = self
            .services
            .get_mut(&service)
            .ok_or(ModelError::UnknownService(service))?;
        let duplicate = entry.versions.iter().any(|existing| {
            self.versions
                .get(existing)
                .map(|(_, v)| v.name() == version.name())
                .unwrap_or(false)
        });
        if duplicate {
            return Err(ModelError::Duplicate(format!(
                "version '{}' of service '{}'",
                version.name(),
                entry.service.name()
            )));
        }
        let id: VersionId = self.version_ids.next_id();
        entry.versions.push(id);
        self.versions.insert(id, (service, version));
        Ok(id)
    }

    /// Looks up a service by id.
    pub fn service(&self, id: ServiceId) -> Option<&Service> {
        self.services.get(&id).map(|e| &e.service)
    }

    /// Looks up a service by name.
    pub fn service_by_name(&self, name: &str) -> Option<(ServiceId, &Service)> {
        self.services
            .iter()
            .find(|(_, e)| e.service.name() == name)
            .map(|(id, e)| (*id, &e.service))
    }

    /// Looks up a version by id.
    pub fn version(&self, id: VersionId) -> Option<&ServiceVersion> {
        self.versions.get(&id).map(|(_, v)| v)
    }

    /// Returns the service a version belongs to.
    pub fn service_of_version(&self, id: VersionId) -> Option<ServiceId> {
        self.versions.get(&id).map(|(s, _)| *s)
    }

    /// Looks up a version of a given service by name.
    pub fn version_by_name(
        &self,
        service: ServiceId,
        name: &str,
    ) -> Option<(VersionId, &ServiceVersion)> {
        let entry = self.services.get(&service)?;
        entry.versions.iter().find_map(|vid| {
            let (_, version) = self.versions.get(vid)?;
            (version.name() == name).then_some((*vid, version))
        })
    }

    /// Returns all versions registered for a service, in registration order.
    pub fn versions_of(&self, service: ServiceId) -> Vec<VersionId> {
        self.services
            .get(&service)
            .map(|e| e.versions.clone())
            .unwrap_or_default()
    }

    /// Iterates over all services.
    pub fn services(&self) -> impl Iterator<Item = (ServiceId, &Service)> {
        self.services.iter().map(|(id, e)| (*id, &e.service))
    }

    /// Iterates over all versions of all services.
    pub fn all_versions(&self) -> impl Iterator<Item = (VersionId, ServiceId, &ServiceVersion)> {
        self.versions.iter().map(|(vid, (sid, v))| (*vid, *sid, v))
    }

    /// Number of registered services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Number of registered versions across all services.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// Returns `true` if the catalog knows the given service.
    pub fn contains_service(&self, id: ServiceId) -> bool {
        self.services.contains_key(&id)
    }

    /// Returns `true` if the catalog knows the given version.
    pub fn contains_version(&self, id: VersionId) -> bool {
        self.versions.contains_key(&id)
    }

    /// Validates that a version belongs to a service.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownService`], [`ModelError::UnknownVersion`],
    /// or [`ModelError::Validation`] if the version exists but belongs to a
    /// different service.
    pub fn ensure_version_of(
        &self,
        service: ServiceId,
        version: VersionId,
    ) -> Result<(), ModelError> {
        if !self.contains_service(service) {
            return Err(ModelError::UnknownService(service));
        }
        match self.service_of_version(version) {
            None => Err(ModelError::UnknownVersion(version)),
            Some(owner) if owner == service => Ok(()),
            Some(owner) => Err(ModelError::Validation(format!(
                "version {version} belongs to service {owner}, not {service}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_with_search() -> (ServiceCatalog, ServiceId, VersionId, VersionId) {
        let mut catalog = ServiceCatalog::new();
        let search = catalog.add_service(Service::new("search").with_description("product search"));
        let stable = catalog
            .add_version(
                search,
                ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 8080)),
            )
            .unwrap();
        let canary = catalog
            .add_version(
                search,
                ServiceVersion::new("v2-fast", Endpoint::new("10.0.0.2", 8080))
                    .with_label("track", "canary"),
            )
            .unwrap();
        (catalog, search, stable, canary)
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(
            Endpoint::new("search.internal", 80).to_string(),
            "search.internal:80"
        );
    }

    #[test]
    fn add_and_lookup_services_and_versions() {
        let (catalog, search, stable, canary) = catalog_with_search();
        assert_eq!(catalog.service_count(), 1);
        assert_eq!(catalog.version_count(), 2);
        assert_eq!(catalog.service(search).unwrap().name(), "search");
        assert_eq!(catalog.version(stable).unwrap().name(), "v1");
        assert_eq!(catalog.version(canary).unwrap().labels()["track"], "canary");
        assert_eq!(catalog.service_of_version(canary), Some(search));
        assert_eq!(catalog.versions_of(search), vec![stable, canary]);
    }

    #[test]
    fn lookup_by_name() {
        let (catalog, search, stable, _) = catalog_with_search();
        assert_eq!(catalog.service_by_name("search").unwrap().0, search);
        assert!(catalog.service_by_name("payments").is_none());
        assert_eq!(catalog.version_by_name(search, "v1").unwrap().0, stable);
        assert!(catalog.version_by_name(search, "v99").is_none());
    }

    #[test]
    fn duplicate_version_name_is_rejected() {
        let (mut catalog, search, _, _) = catalog_with_search();
        let err = catalog
            .add_version(
                search,
                ServiceVersion::new("v1", Endpoint::new("10.0.0.9", 80)),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::Duplicate(_)));
    }

    #[test]
    fn adding_version_to_unknown_service_fails() {
        let mut catalog = ServiceCatalog::new();
        let err = catalog
            .add_version(
                ServiceId::new(99),
                ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
            )
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownService(ServiceId::new(99)));
    }

    #[test]
    fn ensure_version_of_checks_ownership() {
        let (mut catalog, search, stable, _) = catalog_with_search();
        let product = catalog.add_service(Service::new("product"));
        let product_v1 = catalog
            .add_version(
                product,
                ServiceVersion::new("v1", Endpoint::new("10.0.1.1", 80)),
            )
            .unwrap();

        assert!(catalog.ensure_version_of(search, stable).is_ok());
        assert!(matches!(
            catalog.ensure_version_of(search, product_v1),
            Err(ModelError::Validation(_))
        ));
        assert!(matches!(
            catalog.ensure_version_of(ServiceId::new(77), stable),
            Err(ModelError::UnknownService(_))
        ));
        assert!(matches!(
            catalog.ensure_version_of(search, VersionId::new(77)),
            Err(ModelError::UnknownVersion(_))
        ));
    }

    #[test]
    fn all_versions_iterates_everything() {
        let (catalog, _, _, _) = catalog_with_search();
        assert_eq!(catalog.all_versions().count(), 2);
    }
}
