//! Deterministic seeding of experiments and trials.
//!
//! Every stochastic layer of the workspace — the workload generator's
//! arrival process, the case-study application's latency jitter, the
//! engine's (future) tie-breaking — draws from a [`Seed`]. A multi-trial
//! experiment derives one seed per trial with the transparent scheme
//! `base_seed + trial_index`, so any single trial of a parallel run can be
//! reproduced in isolation by handing the derived seed to a 1-thread run.
//!
//! [`TrialConfig`] bundles the base seed with a trial's index; it is the
//! value the `bifrost-bench` trial runner passes to each trial closure.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A deterministic RNG seed threaded through every seedable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Seed(u64);

impl Seed {
    /// The workspace-wide default seed (the historical `42` every harness
    /// used before seeds became explicit).
    pub const DEFAULT: Seed = Seed(42);

    /// Creates a seed from a raw value.
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// The raw seed value (what `SimRng::seeded` consumes).
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The seed of trial `trial_index` under this base seed. The scheme is
    /// deliberately the simplest possible — `base + index`, wrapping — so a
    /// trial printed in a report can be re-run by hand without consulting
    /// any mixing function.
    pub const fn for_trial(self, trial_index: u64) -> Seed {
        Seed(self.0.wrapping_add(trial_index))
    }

    /// A decorrelated sub-seed for a named stream (e.g. `"workload"` vs
    /// `"latency-jitter"`), so layers seeded from the same trial seed do not
    /// consume identical random sequences. Uses FNV-1a over the label,
    /// folded into the seed.
    pub fn stream(self, label: &str) -> Seed {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Seed(self.0 ^ hash)
    }
}

impl Default for Seed {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl From<u64> for Seed {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl fmt::Display for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The identity of one trial within a multi-trial experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrialConfig {
    /// The experiment's base seed.
    pub base_seed: Seed,
    /// This trial's index (0-based).
    pub trial_index: u64,
    /// Total number of trials in the experiment (for reporting).
    pub trials: u64,
}

impl TrialConfig {
    /// Creates the configuration of trial `trial_index` of `trials` under
    /// `base_seed`.
    pub const fn new(base_seed: Seed, trial_index: u64, trials: u64) -> Self {
        Self {
            base_seed,
            trial_index,
            trials,
        }
    }

    /// The derived seed of this trial: `base_seed + trial_index`.
    pub const fn seed(&self) -> Seed {
        self.base_seed.for_trial(self.trial_index)
    }
}

impl fmt::Display for TrialConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {}/{} (seed {})",
            self.trial_index + 1,
            self.trials,
            self.seed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_base_plus_index() {
        let base = Seed::new(100);
        assert_eq!(base.for_trial(0), Seed::new(100));
        assert_eq!(base.for_trial(7), Seed::new(107));
        assert_eq!(Seed::new(u64::MAX).for_trial(2), Seed::new(1));
    }

    #[test]
    fn trial_config_derives_its_seed() {
        let config = TrialConfig::new(Seed::new(1_000), 3, 8);
        assert_eq!(config.seed(), Seed::new(1_003));
        assert_eq!(config.to_string(), "trial 4/8 (seed 1003)");
    }

    #[test]
    fn streams_decorrelate_but_stay_deterministic() {
        let seed = Seed::new(42);
        assert_eq!(seed.stream("workload"), seed.stream("workload"));
        assert_ne!(seed.stream("workload"), seed.stream("jitter"));
        assert_ne!(seed.stream("workload"), seed);
    }

    #[test]
    fn default_and_conversions() {
        assert_eq!(Seed::default(), Seed::new(42));
        assert_eq!(Seed::from(9).value(), 9);
        assert_eq!(Seed::new(5).to_string(), "5");
    }
}
