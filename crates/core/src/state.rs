//! Automaton states `sᵢ = ⟨C, T, W, Φ, η⟩`.
//!
//! A state bundles the checks `C` executed in parallel, the thresholds `T`
//! used by the transition function, the weights `W` of the linear
//! combination, the dynamic routing configurations `Φ` activated while the
//! state is running, and the user selection function `η` (carried inside the
//! routing rules' selectors).

use crate::check::Check;
use crate::error::ModelError;
use crate::ids::{CheckId, StateId};
use crate::outcome::Weight;
use crate::routing::RoutingRule;
use crate::thresholds::Thresholds;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One state of the release automaton.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    id: StateId,
    name: String,
    checks: Vec<Check>,
    weights: Vec<Weight>,
    thresholds: Option<Thresholds>,
    routing: Vec<RoutingRule>,
    duration: Duration,
}

impl State {
    /// Starts building a state. See [`StateBuilder`].
    pub fn builder(id: StateId, name: impl Into<String>) -> StateBuilder {
        StateBuilder::new(id, name)
    }

    /// The state id.
    pub fn id(&self) -> StateId {
        self.id
    }

    /// The human-readable state name (e.g. `"canary-5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The checks executed in parallel while the state is active.
    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    /// Looks up a check by id.
    pub fn check(&self, id: CheckId) -> Option<&Check> {
        self.checks.iter().find(|c| c.id() == id)
    }

    /// The weights `W`, index-aligned with [`State::checks`].
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// The thresholds `T` of the transition function for this state, if the
    /// state has outgoing outcome-based transitions (final states have none).
    pub fn thresholds(&self) -> Option<&Thresholds> {
        self.thresholds.as_ref()
    }

    /// The routing rules `Φ` activated when the state is entered.
    pub fn routing(&self) -> &[RoutingRule] {
        &self.routing
    }

    /// The nominal duration of the state: the time until the slowest check
    /// has finished all its repetitions, or an explicitly configured
    /// duration for states without checks (e.g. pure gradual-rollout steps).
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// Whether the state contains at least one exception check.
    pub fn has_exception_checks(&self) -> bool {
        self.checks.iter().any(Check::is_exception)
    }
}

/// Builder for [`State`].
#[derive(Debug)]
pub struct StateBuilder {
    id: StateId,
    name: String,
    checks: Vec<Check>,
    weights: Vec<Weight>,
    thresholds: Option<Thresholds>,
    routing: Vec<RoutingRule>,
    duration: Option<Duration>,
}

impl StateBuilder {
    /// Creates a builder for a state with the given id and name.
    pub fn new(id: StateId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            checks: Vec::new(),
            weights: Vec::new(),
            thresholds: None,
            routing: Vec::new(),
            duration: None,
        }
    }

    /// Adds a check with the default weight of 1.0.
    pub fn check(self, check: Check) -> Self {
        self.weighted_check(check, Weight::one())
    }

    /// Adds a check with an explicit weight.
    pub fn weighted_check(mut self, check: Check, weight: Weight) -> Self {
        self.checks.push(check);
        self.weights.push(weight);
        self
    }

    /// Sets the thresholds used by the transition function for this state.
    pub fn thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Adds a routing rule activated when the state is entered.
    pub fn routing(mut self, rule: RoutingRule) -> Self {
        self.routing.push(rule);
        self
    }

    /// Overrides the state duration. Without an override, the duration is the
    /// maximum total timer duration across all checks.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Finalises the state.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Validation`] if the state has neither checks nor
    /// an explicit duration (its end would be undefined), or
    /// [`ModelError::Duplicate`] if two checks share an id.
    pub fn build(self) -> Result<State, ModelError> {
        for (i, check) in self.checks.iter().enumerate() {
            if self.checks[i + 1..].iter().any(|c| c.id() == check.id()) {
                return Err(ModelError::Duplicate(format!(
                    "check {} in state '{}'",
                    check.id(),
                    self.name
                )));
            }
        }
        let check_duration = self
            .checks
            .iter()
            .map(|c| c.timer().total_duration())
            .max()
            .unwrap_or(Duration::ZERO);
        let duration = match self.duration {
            Some(d) => d.max(check_duration),
            None if self.checks.is_empty() => {
                return Err(ModelError::Validation(format!(
                    "state '{}' has neither checks nor an explicit duration",
                    self.name
                )))
            }
            None => check_duration,
        };
        Ok(State {
            id: self.id,
            name: self.name,
            checks: self.checks,
            weights: self.weights,
            thresholds: self.thresholds,
            routing: self.routing,
            duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{CheckSpec, MetricQuery, Validator};
    use crate::ids::{ServiceId, VersionId};
    use crate::outcome::OutcomeMapping;
    use crate::routing::{Percentage, RoutingMode, RoutingRule, TrafficSplit};
    use crate::timer::Timer;
    use crate::user::UserSelector;

    fn sample_check(id: u64, interval_secs: u64, reps: u32) -> Check {
        Check::basic(
            CheckId::new(id),
            format!("check-{id}"),
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors"),
                Validator::LessThan(5.0),
            ),
            Timer::from_secs(interval_secs, reps).unwrap(),
            OutcomeMapping::binary(reps as i64, 0, 1).unwrap(),
        )
    }

    fn sample_routing() -> RoutingRule {
        RoutingRule::Split {
            service: ServiceId::new(0),
            split: TrafficSplit::canary(
                VersionId::new(0),
                VersionId::new(1),
                Percentage::new(5.0).unwrap(),
            )
            .unwrap(),
            sticky: false,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        }
    }

    #[test]
    fn duration_is_max_of_check_timers() {
        let state = State::builder(StateId::new(0), "canary")
            .check(sample_check(0, 5, 12)) // 60 s
            .check(sample_check(1, 10, 3)) // 30 s
            .thresholds(Thresholds::single(1))
            .routing(sample_routing())
            .build()
            .unwrap();
        assert_eq!(state.duration(), Duration::from_secs(60));
        assert_eq!(state.checks().len(), 2);
        assert_eq!(state.weights().len(), 2);
        assert!(state.thresholds().is_some());
        assert_eq!(state.routing().len(), 1);
        assert!(!state.has_exception_checks());
        assert!(state.check(CheckId::new(1)).is_some());
        assert!(state.check(CheckId::new(9)).is_none());
    }

    #[test]
    fn explicit_duration_extends_but_never_truncates_checks() {
        let state = State::builder(StateId::new(0), "s")
            .check(sample_check(0, 5, 12))
            .duration(Duration::from_secs(10))
            .build()
            .unwrap();
        // Cannot end before the slowest check finishes.
        assert_eq!(state.duration(), Duration::from_secs(60));

        let state = State::builder(StateId::new(0), "s")
            .check(sample_check(0, 5, 2))
            .duration(Duration::from_secs(120))
            .build()
            .unwrap();
        assert_eq!(state.duration(), Duration::from_secs(120));
    }

    #[test]
    fn state_without_checks_needs_duration() {
        assert!(State::builder(StateId::new(0), "rollout-step")
            .build()
            .is_err());
        let state = State::builder(StateId::new(0), "rollout-step")
            .duration(Duration::from_secs(10))
            .routing(sample_routing())
            .build()
            .unwrap();
        assert_eq!(state.duration(), Duration::from_secs(10));
        assert!(state.checks().is_empty());
    }

    #[test]
    fn duplicate_check_ids_rejected() {
        let err = State::builder(StateId::new(0), "s")
            .check(sample_check(3, 5, 1))
            .check(sample_check(3, 10, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::Duplicate(_)));
    }

    #[test]
    fn exception_checks_detected() {
        let exception = Check::exception(
            CheckId::new(7),
            "error-spike",
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors"),
                Validator::LessThan(100.0),
            ),
            Timer::from_secs(5, 12).unwrap(),
            StateId::new(42),
        );
        let state = State::builder(StateId::new(0), "a")
            .check(sample_check(0, 5, 12))
            .check(exception)
            .build()
            .unwrap();
        assert!(state.has_exception_checks());
    }

    #[test]
    fn weighted_checks_keep_weight_order() {
        let state = State::builder(StateId::new(0), "s")
            .weighted_check(sample_check(0, 5, 1), Weight::new(0.25).unwrap())
            .weighted_check(sample_check(1, 5, 1), Weight::new(0.75).unwrap())
            .build()
            .unwrap();
        assert_eq!(state.weights()[0].value(), 0.25);
        assert_eq!(state.weights()[1].value(), 0.75);
    }
}
