//! Users, user attributes, populations, and the user selection function `η`.
//!
//! A user `uₖ ∈ U` connected to the system always uses exactly one version of
//! a service; the selection function `η : U → V` decides which one. Bifrost
//! is agnostic about how users are filtered — the model supports random
//! percentage sampling, attribute filters (e.g. "US users"), and combinations
//! thereof, which covers the selection approaches used by the paper's running
//! example and by Facebook's Configurator.

use crate::ids::UserId;
use crate::routing::Percentage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single attribute of a user (e.g. `country = "US"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserAttribute {
    key: String,
    value: String,
}

impl UserAttribute {
    /// Creates an attribute.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
        }
    }

    /// The attribute key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The attribute value.
    pub fn value(&self) -> &str {
        &self.value
    }
}

/// A user of the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    id: UserId,
    attributes: BTreeMap<String, String>,
}

impl User {
    /// Creates a user with no attributes.
    pub fn new(id: UserId) -> Self {
        Self {
            id,
            attributes: BTreeMap::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// The user id.
    pub fn id(&self) -> UserId {
        self.id
    }

    /// Returns the value of an attribute, if present.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes.get(key).map(String::as_str)
    }

    /// All attributes of the user.
    pub fn attributes(&self) -> &BTreeMap<String, String> {
        &self.attributes
    }

    /// Whether the user matches the given attribute.
    pub fn matches(&self, attribute: &UserAttribute) -> bool {
        self.attribute(attribute.key()) == Some(attribute.value())
    }
}

/// The user selection function `η`: decides which users a routing rule
/// applies to.
///
/// Selectors compose: [`UserSelector::All`] matches everyone,
/// [`UserSelector::Attribute`] filters on a user attribute,
/// [`UserSelector::Percentage`] deterministically samples a fraction of the
/// population by hashing the user id (so the same user is consistently in or
/// out of the sample), and [`UserSelector::And`] intersects selectors (e.g.
/// "1 % of the US users").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UserSelector {
    /// Matches every user.
    All,
    /// Matches users having the given attribute value.
    Attribute(UserAttribute),
    /// Matches a deterministic pseudo-random sample of the given size.
    Percentage(Percentage),
    /// Matches users that satisfy **all** nested selectors.
    And(Vec<UserSelector>),
    /// Matches users that satisfy **at least one** nested selector.
    Or(Vec<UserSelector>),
    /// Matches users that do **not** satisfy the nested selector.
    Not(Box<UserSelector>),
}

impl UserSelector {
    /// Convenience constructor for an attribute selector.
    pub fn attribute(key: impl Into<String>, value: impl Into<String>) -> Self {
        Self::Attribute(UserAttribute::new(key, value))
    }

    /// Convenience constructor for a percentage selector.
    pub fn percentage(p: Percentage) -> Self {
        Self::Percentage(p)
    }

    /// Evaluates the selector against a user.
    ///
    /// The percentage selector hashes the user id with a stable hash, so the
    /// decision is deterministic per user and independent of evaluation
    /// order — the property required for consistent canary group membership.
    pub fn selects(&self, user: &User) -> bool {
        match self {
            UserSelector::All => true,
            UserSelector::Attribute(attr) => user.matches(attr),
            UserSelector::Percentage(p) => {
                let bucket = stable_bucket(user.id());
                (bucket as f64) < p.value() / 100.0 * BUCKETS as f64
            }
            UserSelector::And(selectors) => selectors.iter().all(|s| s.selects(user)),
            UserSelector::Or(selectors) => selectors.iter().any(|s| s.selects(user)),
            UserSelector::Not(selector) => !selector.selects(user),
        }
    }
}

const BUCKETS: u64 = 10_000;

/// Deterministically maps a user id onto one of [`BUCKETS`] buckets using a
/// splitmix64-style finalizer. This mirrors hashing a sticky cookie.
fn stable_bucket(user: UserId) -> u64 {
    let mut z = user.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % BUCKETS
}

/// A population of users, used by the simulation substrate and by examples to
/// drive selection functions against realistic user bases.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UserPopulation {
    users: Vec<User>,
}

impl UserPopulation {
    /// Creates an empty population.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates `count` synthetic users with a `country` attribute drawn
    /// from a fixed distribution (60 % US, 25 % EU, 15 % APAC), seeded for
    /// reproducibility.
    pub fn synthetic(count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let users = (0..count)
            .map(|i| {
                let roll: f64 = rng.gen();
                let country = if roll < 0.60 {
                    "US"
                } else if roll < 0.85 {
                    "EU"
                } else {
                    "APAC"
                };
                User::new(UserId::new(i as u64)).with_attribute("country", country)
            })
            .collect();
        Self { users }
    }

    /// Adds a user to the population.
    pub fn push(&mut self, user: User) {
        self.users.push(user);
    }

    /// The users in the population.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Returns the users selected by `selector`.
    pub fn select<'a>(&'a self, selector: &'a UserSelector) -> impl Iterator<Item = &'a User> {
        self.users.iter().filter(move |u| selector.selects(u))
    }

    /// Fraction of the population selected by `selector` (0.0–1.0).
    pub fn selected_fraction(&self, selector: &UserSelector) -> f64 {
        if self.users.is_empty() {
            return 0.0;
        }
        self.select(selector).count() as f64 / self.users.len() as f64
    }
}

impl FromIterator<User> for UserPopulation {
    fn from_iter<T: IntoIterator<Item = User>>(iter: T) -> Self {
        Self {
            users: iter.into_iter().collect(),
        }
    }
}

impl Extend<User> for UserPopulation {
    fn extend<T: IntoIterator<Item = User>>(&mut self, iter: T) {
        self.users.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_attributes() {
        let user = User::new(UserId::new(1))
            .with_attribute("country", "US")
            .with_attribute("plan", "pro");
        assert_eq!(user.attribute("country"), Some("US"));
        assert_eq!(user.attribute("missing"), None);
        assert!(user.matches(&UserAttribute::new("plan", "pro")));
        assert!(!user.matches(&UserAttribute::new("plan", "free")));
        assert_eq!(user.attributes().len(), 2);
    }

    #[test]
    fn all_selector_matches_everyone() {
        let pop = UserPopulation::synthetic(100, 7);
        assert_eq!(pop.selected_fraction(&UserSelector::All), 1.0);
    }

    #[test]
    fn attribute_selector_filters() {
        let pop = UserPopulation::synthetic(2_000, 7);
        let us = pop.selected_fraction(&UserSelector::attribute("country", "US"));
        // 60 % +- sampling noise
        assert!(us > 0.5 && us < 0.7, "us fraction {us}");
    }

    #[test]
    fn percentage_selector_is_deterministic_and_close() {
        let pop = UserPopulation::synthetic(20_000, 3);
        let selector = UserSelector::percentage(Percentage::new(5.0).unwrap());
        let f1 = pop.selected_fraction(&selector);
        let f2 = pop.selected_fraction(&selector);
        assert_eq!(f1, f2, "selection must be deterministic");
        assert!((f1 - 0.05).abs() < 0.01, "fraction {f1} not near 5%");
    }

    #[test]
    fn percentage_selector_membership_is_monotone_in_percentage() {
        // A user selected at 5% must also be selected at 20%: this is the
        // property that makes gradual rollouts only ever *add* users.
        let pop = UserPopulation::synthetic(5_000, 11);
        let small = UserSelector::percentage(Percentage::new(5.0).unwrap());
        let large = UserSelector::percentage(Percentage::new(20.0).unwrap());
        for user in pop.users() {
            if small.selects(user) {
                assert!(
                    large.selects(user),
                    "user {} lost during rollout",
                    user.id()
                );
            }
        }
    }

    #[test]
    fn and_or_not_compose() {
        let user_us = User::new(UserId::new(1)).with_attribute("country", "US");
        let user_eu = User::new(UserId::new(2)).with_attribute("country", "EU");

        let us = UserSelector::attribute("country", "US");
        let not_us = UserSelector::Not(Box::new(us.clone()));
        assert!(us.selects(&user_us));
        assert!(!us.selects(&user_eu));
        assert!(not_us.selects(&user_eu));

        let both = UserSelector::And(vec![UserSelector::All, us.clone()]);
        assert!(both.selects(&user_us));
        assert!(!both.selects(&user_eu));

        let either = UserSelector::Or(vec![us, UserSelector::attribute("country", "EU")]);
        assert!(either.selects(&user_us));
        assert!(either.selects(&user_eu));
    }

    #[test]
    fn population_collects_and_extends() {
        let mut pop: UserPopulation = (0..3).map(|i| User::new(UserId::new(i))).collect();
        pop.extend(vec![User::new(UserId::new(3))]);
        assert_eq!(pop.len(), 4);
        assert!(!pop.is_empty());
    }

    #[test]
    fn empty_population_fraction_is_zero() {
        let pop = UserPopulation::new();
        assert_eq!(pop.selected_fraction(&UserSelector::All), 0.0);
    }
}
