//! # bifrost-core
//!
//! The formal model of multi-phase live testing strategies described in
//! *"Bifrost: Supporting Continuous Deployment with Automated Enactment of
//! Multi-Phase Live Testing Strategies"* (Schermann et al., Middleware 2016).
//!
//! A release strategy `S = ⟨B, A⟩` combines:
//!
//! * a set of [`Service`]s `B`, each available in one or more
//!   [`ServiceVersion`]s with static endpoint configuration, and
//! * a deterministic finite automaton [`Automaton`] `A = ⟨Ω, S, s₁, δ, F⟩`
//!   whose states execute timed, weighted [`Check`]s against monitoring data
//!   `Ω` and whose transition function `δ` maps the aggregated outcome of a
//!   state onto the next state via ordered [`Thresholds`].
//!
//! The crate is a *pure model*: it owns no clocks, no network, and no metric
//! store. Timed execution is enacted by `bifrost-engine`, traffic routing by
//! `bifrost-proxy`, and monitoring data by `bifrost-metrics`. Everything here
//! is deterministic and trivially testable.
//!
//! ## Quick example
//!
//! ```
//! use bifrost_core::prelude::*;
//!
//! // Two versions of the search service: the stable one and the canary.
//! let mut catalog = ServiceCatalog::new();
//! let search = catalog.add_service(Service::new("search"));
//! let stable = catalog.add_version(search, ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)))?;
//! let canary = catalog.add_version(search, ServiceVersion::new("v2-fast", Endpoint::new("10.0.0.2", 80)))?;
//!
//! // A two-state strategy: 5% canary, then full rollout or rollback.
//! let strategy = StrategyBuilder::new("fastsearch-canary", catalog)
//!     .phase(
//!         PhaseSpec::canary("canary-5", search, stable, canary, Percentage::new(5.0)?)
//!             .duration_secs(60),
//!     )
//!     .build()?;
//! assert_eq!(strategy.automaton().states().len(), 3); // canary + success + rollback
//! # Ok::<(), bifrost_core::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod automaton;
pub mod check;
pub mod error;
pub mod hash;
pub mod ids;
pub mod outcome;
pub mod phase;
pub mod routing;
pub mod seed;
pub mod service;
pub mod state;
pub mod strategy;
pub mod thresholds;
pub mod timer;
pub mod user;

pub use automaton::{Automaton, AutomatonBuilder, Transition, TransitionTable};
pub use check::{BasicCheck, Check, CheckKind, CheckSpec, ExceptionCheck, MetricQuery, Validator};
pub use error::ModelError;
pub use ids::{CheckId, ServiceId, StateId, StrategyId, UserId, VersionId};
pub use outcome::{CheckOutcome, OutcomeMapping, OutcomeRange, StateOutcome, Weight};
pub use phase::{PhaseKind, PhaseSpec};
pub use routing::{
    DarkLaunchRoute, DynamicRoutingConfig, Percentage, RoutingMode, RoutingRule, TrafficSplit,
    UserAssignment,
};
pub use seed::{Seed, TrialConfig};
pub use service::{Endpoint, Service, ServiceCatalog, ServiceVersion};
pub use state::{State, StateBuilder};
pub use strategy::{Strategy, StrategyBuilder};
pub use thresholds::Thresholds;
pub use timer::Timer;
pub use user::{User, UserAttribute, UserPopulation, UserSelector};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::automaton::{Automaton, AutomatonBuilder, Transition};
    pub use crate::check::{
        BasicCheck, Check, CheckKind, CheckSpec, ExceptionCheck, MetricQuery, Validator,
    };
    pub use crate::error::ModelError;
    pub use crate::ids::{CheckId, ServiceId, StateId, StrategyId, UserId, VersionId};
    pub use crate::outcome::{CheckOutcome, OutcomeMapping, StateOutcome, Weight};
    pub use crate::phase::{PhaseKind, PhaseSpec};
    pub use crate::routing::{
        DarkLaunchRoute, DynamicRoutingConfig, Percentage, RoutingMode, RoutingRule, TrafficSplit,
        UserAssignment,
    };
    pub use crate::seed::{Seed, TrialConfig};
    pub use crate::service::{Endpoint, Service, ServiceCatalog, ServiceVersion};
    pub use crate::state::{State, StateBuilder};
    pub use crate::strategy::{Strategy, StrategyBuilder};
    pub use crate::thresholds::Thresholds;
    pub use crate::timer::Timer;
    pub use crate::user::{User, UserAttribute, UserPopulation, UserSelector};
}
