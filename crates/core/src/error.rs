//! Error type shared by the model crate.

use crate::ids::{CheckId, ServiceId, StateId, VersionId};
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating model entities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A percentage was outside of the inclusive `0.0..=100.0` range.
    InvalidPercentage(f64),
    /// A threshold tuple was empty or not strictly increasing.
    InvalidThresholds(String),
    /// An outcome mapping does not cover the ranges induced by the thresholds.
    InvalidOutcomeMapping(String),
    /// A timer was configured with a zero interval or zero repetitions.
    InvalidTimer(String),
    /// A weight vector does not match the number of checks or contains
    /// non-finite values.
    InvalidWeights(String),
    /// A referenced service does not exist in the catalog.
    UnknownService(ServiceId),
    /// A referenced version does not exist (or does not belong to the given
    /// service).
    UnknownVersion(VersionId),
    /// A referenced automaton state does not exist.
    UnknownState(StateId),
    /// A referenced check does not exist.
    UnknownCheck(CheckId),
    /// A duplicate entity was registered (e.g. two versions with the same
    /// name for one service).
    Duplicate(String),
    /// The automaton violates a structural invariant (no start state, an
    /// unreachable state, a transition target outside the state set, …).
    InvalidAutomaton(String),
    /// The strategy violates a structural invariant (empty service set,
    /// routing rules that reference unknown versions, …).
    InvalidStrategy(String),
    /// The traffic split of a state does not sum up to 100 %.
    InvalidTrafficSplit(String),
    /// A generic validation failure with a human-readable reason.
    Validation(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidPercentage(p) => {
                write!(f, "percentage {p} is outside the range 0..=100")
            }
            ModelError::InvalidThresholds(reason) => write!(f, "invalid thresholds: {reason}"),
            ModelError::InvalidOutcomeMapping(reason) => {
                write!(f, "invalid outcome mapping: {reason}")
            }
            ModelError::InvalidTimer(reason) => write!(f, "invalid timer: {reason}"),
            ModelError::InvalidWeights(reason) => write!(f, "invalid weights: {reason}"),
            ModelError::UnknownService(id) => write!(f, "unknown service {id}"),
            ModelError::UnknownVersion(id) => write!(f, "unknown version {id}"),
            ModelError::UnknownState(id) => write!(f, "unknown state {id}"),
            ModelError::UnknownCheck(id) => write!(f, "unknown check {id}"),
            ModelError::Duplicate(what) => write!(f, "duplicate entity: {what}"),
            ModelError::InvalidAutomaton(reason) => write!(f, "invalid automaton: {reason}"),
            ModelError::InvalidStrategy(reason) => write!(f, "invalid strategy: {reason}"),
            ModelError::InvalidTrafficSplit(reason) => {
                write!(f, "invalid traffic split: {reason}")
            }
            ModelError::Validation(reason) => write!(f, "validation failed: {reason}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = ModelError::InvalidPercentage(140.0);
        assert_eq!(
            err.to_string(),
            "percentage 140 is outside the range 0..=100"
        );

        let err = ModelError::UnknownService(ServiceId::new(4));
        assert_eq!(err.to_string(), "unknown service svc-4");

        let err = ModelError::InvalidAutomaton("no start state".into());
        assert!(err.to_string().contains("no start state"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_send_sync_error<T: Error + Send + Sync + 'static>() {}
        assert_send_sync_error::<ModelError>();
    }
}
