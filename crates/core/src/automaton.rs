//! The deterministic finite automaton `A = ⟨Ω, S, s₁, δ, F⟩` of a strategy.
//!
//! The automaton owns the states, the start state, the set of final states,
//! and the transition table implementing `δ : S × ℤ → S`: for every
//! non-final state, its [`Thresholds`] induce `n + 1` disjoint ranges and
//! each range is mapped to a successor state. The monitoring data `Ω` is not
//! stored here — it lives in the metric providers and is consulted by the
//! engine when executing checks.

use crate::error::ModelError;
use crate::ids::StateId;
use crate::outcome::StateOutcome;
use crate::state::State;
use crate::thresholds::Thresholds;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// One resolved transition: from a state, for outcome values falling into
/// `range_index` of the state's thresholds, move to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// The origin state.
    pub from: StateId,
    /// The index of the threshold range (0 = lowest outcomes).
    pub range_index: usize,
    /// The successor state.
    pub target: StateId,
}

/// The transition table of one state: a successor per threshold range.
///
/// Range indices follow [`Thresholds::classify`]: index 0 covers the lowest
/// outcome values. A target may be the state itself, which models
/// "stay in the current state and re-execute it with all timers reset".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionTable {
    targets: Vec<StateId>,
}

impl TransitionTable {
    /// Creates a table from one target per threshold range.
    pub fn new(targets: Vec<StateId>) -> Self {
        Self { targets }
    }

    /// The successor for a given range index, if it exists.
    pub fn target(&self, range_index: usize) -> Option<StateId> {
        self.targets.get(range_index).copied()
    }

    /// All targets in range order.
    pub fn targets(&self) -> &[StateId] {
        &self.targets
    }

    /// Number of ranges covered.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// The release automaton.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Automaton {
    states: BTreeMap<StateId, State>,
    start: StateId,
    finals: BTreeSet<StateId>,
    transitions: BTreeMap<StateId, TransitionTable>,
}

impl Automaton {
    /// Starts building an automaton. See [`AutomatonBuilder`].
    pub fn builder() -> AutomatonBuilder {
        AutomatonBuilder::new()
    }

    /// The start state `s₁`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The set of final states `F`.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(&state)
    }

    /// All states keyed by id.
    pub fn states(&self) -> &BTreeMap<StateId, State> {
        &self.states
    }

    /// Looks up a state.
    pub fn state(&self, id: StateId) -> Option<&State> {
        self.states.get(&id)
    }

    /// Looks up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<&State> {
        self.states.values().find(|s| s.name() == name)
    }

    /// The transition table of a state, if the state has outgoing
    /// outcome-based transitions.
    pub fn transitions_of(&self, state: StateId) -> Option<&TransitionTable> {
        self.transitions.get(&state)
    }

    /// All transitions of the automaton, flattened.
    pub fn transitions(&self) -> Vec<Transition> {
        self.transitions
            .iter()
            .flat_map(|(from, table)| {
                table
                    .targets()
                    .iter()
                    .enumerate()
                    .map(|(range_index, target)| Transition {
                        from: *from,
                        range_index,
                        target: *target,
                    })
            })
            .collect()
    }

    /// Applies the transition function `δ` to a completed state outcome.
    ///
    /// If an exception check tripped, the fallback state wins regardless of
    /// the aggregated value. Otherwise the outcome value is classified by the
    /// state's thresholds and the corresponding successor returned. Returns
    /// `None` for final states.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownState`] if the outcome references a state
    /// not part of the automaton, and [`ModelError::InvalidAutomaton`] if a
    /// non-final state lacks thresholds or a transition entry (which
    /// [`AutomatonBuilder::build`] prevents).
    pub fn next_state(&self, outcome: &StateOutcome) -> Result<Option<StateId>, ModelError> {
        let state = self
            .states
            .get(&outcome.state)
            .ok_or(ModelError::UnknownState(outcome.state))?;
        if let Some(fallback) = outcome.exception_fallback {
            if !self.states.contains_key(&fallback) {
                return Err(ModelError::UnknownState(fallback));
            }
            return Ok(Some(fallback));
        }
        if self.is_final(state.id()) {
            return Ok(None);
        }
        let thresholds = state.thresholds().ok_or_else(|| {
            ModelError::InvalidAutomaton(format!(
                "non-final state '{}' has no thresholds",
                state.name()
            ))
        })?;
        let table = self.transitions.get(&state.id()).ok_or_else(|| {
            ModelError::InvalidAutomaton(format!(
                "non-final state '{}' has no transition table",
                state.name()
            ))
        })?;
        let range = thresholds.classify(outcome.value);
        table.target(range).map(Some).ok_or_else(|| {
            ModelError::InvalidAutomaton(format!(
                "state '{}' has no transition for range {range}",
                state.name()
            ))
        })
    }

    /// The states reachable from the start state (including the start state).
    pub fn reachable_states(&self) -> BTreeSet<StateId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([self.start]);
        while let Some(id) = queue.pop_front() {
            if !seen.insert(id) {
                continue;
            }
            if let Some(table) = self.transitions.get(&id) {
                for target in table.targets() {
                    if !seen.contains(target) {
                        queue.push_back(*target);
                    }
                }
            }
            if let Some(state) = self.states.get(&id) {
                for check in state.checks() {
                    if let Some(fallback) = check.fallback() {
                        if !seen.contains(&fallback) {
                            queue.push_back(fallback);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// A Graphviz `dot` rendering of the automaton, useful for the dashboard
    /// and for documentation.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph strategy {\n  rankdir=LR;\n");
        for state in self.states.values() {
            let shape = if self.is_final(state.id()) {
                "doublecircle"
            } else {
                "circle"
            };
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\", shape={}];\n",
                state.id(),
                state.name(),
                shape
            ));
        }
        for t in self.transitions() {
            let state = &self.states[&t.from];
            let label = state
                .thresholds()
                .map(|th| {
                    let (lower, upper) = th.range_bounds(t.range_index);
                    match (lower, upper) {
                        (None, Some(u)) => format!("<= {u}"),
                        (Some(l), Some(u)) => format!("{l} < e <= {u}"),
                        (Some(l), None) => format!("> {l}"),
                        (None, None) => String::from("*"),
                    }
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                t.from, t.target, label
            ));
        }
        for state in self.states.values() {
            for check in state.checks() {
                if let Some(fallback) = check.fallback() {
                    out.push_str(&format!(
                        "  \"{}\" -> \"{}\" [style=dashed, label=\"exception\"];\n",
                        state.id(),
                        fallback
                    ));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Automaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "automaton with {} states, start {}, {} final",
            self.states.len(),
            self.start,
            self.finals.len()
        )
    }
}

/// Builder for [`Automaton`], validating the structural invariants of the
/// formal model.
#[derive(Debug, Default)]
pub struct AutomatonBuilder {
    states: BTreeMap<StateId, State>,
    start: Option<StateId>,
    finals: BTreeSet<StateId>,
    transitions: BTreeMap<StateId, TransitionTable>,
}

impl AutomatonBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state.
    pub fn state(mut self, state: State) -> Self {
        self.states.insert(state.id(), state);
        self
    }

    /// Marks the start state `s₁`.
    pub fn start(mut self, id: StateId) -> Self {
        self.start = Some(id);
        self
    }

    /// Marks a state as final (`∈ F`).
    pub fn final_state(mut self, id: StateId) -> Self {
        self.finals.insert(id);
        self
    }

    /// Sets the transition table of a state (one target per threshold range).
    pub fn transition(mut self, from: StateId, targets: Vec<StateId>) -> Self {
        self.transitions.insert(from, TransitionTable::new(targets));
        self
    }

    /// Finalises and validates the automaton.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAutomaton`] if:
    ///
    /// * no start state is set or the start state is unknown,
    /// * a final state id is unknown,
    /// * a non-final state has no thresholds or its transition table does not
    ///   cover exactly `thresholds.range_count()` ranges,
    /// * a transition or exception fallback targets an unknown state,
    /// * a state is unreachable from the start state, or
    /// * there is no final state at all.
    pub fn build(self) -> Result<Automaton, ModelError> {
        let start = self
            .start
            .ok_or_else(|| ModelError::InvalidAutomaton("no start state set".into()))?;
        if !self.states.contains_key(&start) {
            return Err(ModelError::InvalidAutomaton(format!(
                "start state {start} is not part of the state set"
            )));
        }
        if self.finals.is_empty() {
            return Err(ModelError::InvalidAutomaton(
                "automaton has no final state".into(),
            ));
        }
        for final_state in &self.finals {
            if !self.states.contains_key(final_state) {
                return Err(ModelError::InvalidAutomaton(format!(
                    "final state {final_state} is not part of the state set"
                )));
            }
        }
        for state in self.states.values() {
            let is_final = self.finals.contains(&state.id());
            match (
                is_final,
                state.thresholds(),
                self.transitions.get(&state.id()),
            ) {
                (true, _, _) => {}
                (false, None, _) => {
                    return Err(ModelError::InvalidAutomaton(format!(
                        "non-final state '{}' has no thresholds",
                        state.name()
                    )))
                }
                (false, Some(_), None) => {
                    return Err(ModelError::InvalidAutomaton(format!(
                        "non-final state '{}' has no transitions",
                        state.name()
                    )))
                }
                (false, Some(thresholds), Some(table)) => {
                    if table.len() != thresholds.range_count() {
                        return Err(ModelError::InvalidAutomaton(format!(
                            "state '{}' has {} threshold ranges but {} transition targets",
                            state.name(),
                            thresholds.range_count(),
                            table.len()
                        )));
                    }
                }
            }
            for check in state.checks() {
                if let Some(fallback) = check.fallback() {
                    if !self.states.contains_key(&fallback) {
                        return Err(ModelError::InvalidAutomaton(format!(
                            "exception check '{}' of state '{}' falls back to unknown state {fallback}",
                            check.name(),
                            state.name()
                        )));
                    }
                }
            }
        }
        for (from, table) in &self.transitions {
            if !self.states.contains_key(from) {
                return Err(ModelError::InvalidAutomaton(format!(
                    "transition table for unknown state {from}"
                )));
            }
            for target in table.targets() {
                if !self.states.contains_key(target) {
                    return Err(ModelError::InvalidAutomaton(format!(
                        "transition from {from} targets unknown state {target}"
                    )));
                }
            }
        }
        let automaton = Automaton {
            states: self.states,
            start,
            finals: self.finals,
            transitions: self.transitions,
        };
        let reachable = automaton.reachable_states();
        if let Some(unreachable) = automaton.states.keys().find(|id| !reachable.contains(id)) {
            return Err(ModelError::InvalidAutomaton(format!(
                "state '{}' ({unreachable}) is unreachable from the start state",
                automaton.states[unreachable].name()
            )));
        }
        Ok(automaton)
    }
}

/// Returns a threshold tuple sized for a table of `targets` transitions, i.e.
/// `targets - 1` consecutive integer thresholds starting at `first`. Helper
/// for tests and simple strategies.
pub fn consecutive_thresholds(first: i64, targets: usize) -> Result<Thresholds, ModelError> {
    Thresholds::new(
        (0..targets.saturating_sub(1))
            .map(|i| first + i as i64)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{Check, CheckSpec, MetricQuery, Validator};
    use crate::ids::CheckId;
    use crate::outcome::{CheckOutcome, OutcomeMapping, Weight};
    use crate::timer::Timer;
    use std::time::Duration;

    fn basic_check(id: u64) -> Check {
        Check::basic(
            CheckId::new(id),
            format!("check-{id}"),
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors"),
                Validator::LessThan(5.0),
            ),
            Timer::from_secs(5, 12).unwrap(),
            OutcomeMapping::binary(12, 0, 5).unwrap(),
        )
    }

    fn state(id: u64, name: &str, thresholds: Option<Vec<i64>>) -> State {
        let mut builder = State::builder(StateId::new(id), name).check(basic_check(id * 10));
        if let Some(t) = thresholds {
            builder = builder.thresholds(Thresholds::new(t).unwrap());
        }
        builder.build().unwrap()
    }

    /// Builds the paper's running-example automaton (Figure 2): states a–g.
    fn running_example() -> Automaton {
        let a = state(0, "a", Some(vec![3]));
        let b = state(1, "b", Some(vec![3, 4]));
        let c = state(2, "c", Some(vec![3]));
        let d = state(3, "d", Some(vec![3]));
        let e = state(4, "e", Some(vec![14]));
        let f = state(5, "f", None);
        let g = state(6, "g", None);
        let (sa, sb, sc, sd, se, sf, sg) = (
            StateId::new(0),
            StateId::new(1),
            StateId::new(2),
            StateId::new(3),
            StateId::new(4),
            StateId::new(5),
            StateId::new(6),
        );
        Automaton::builder()
            .state(a)
            .state(b)
            .state(c)
            .state(d)
            .state(e)
            .state(f)
            .state(g)
            .start(sa)
            .final_state(sf)
            .final_state(sg)
            .transition(sa, vec![sg, sb]) // <=3 rollback, >3 continue
            .transition(sb, vec![sg, sc, sd]) // <=3, =4, >4
            .transition(sc, vec![sg, sd])
            .transition(sd, vec![sg, se])
            .transition(se, vec![sg, sf]) // <15 rollback, >=15 full rollout
            .build()
            .unwrap()
    }

    fn outcome(state: StateId, value: i64) -> StateOutcome {
        StateOutcome::combine(
            state,
            vec![CheckOutcome::basic(CheckId::new(0), value, 12, value)],
            &[Weight::one()],
            None,
        )
        .unwrap()
    }

    #[test]
    fn running_example_structure() {
        let automaton = running_example();
        assert_eq!(automaton.state_count(), 7);
        assert_eq!(automaton.start(), StateId::new(0));
        assert!(automaton.is_final(StateId::new(5)));
        assert!(automaton.is_final(StateId::new(6)));
        assert!(!automaton.is_final(StateId::new(0)));
        assert_eq!(automaton.reachable_states().len(), 7);
        assert_eq!(automaton.transitions().len(), 2 + 3 + 2 + 2 + 2);
        assert!(automaton.state_by_name("b").is_some());
        assert!(automaton.state_by_name("zzz").is_none());
        assert!(automaton.to_string().contains("7 states"));
    }

    #[test]
    fn transition_function_follows_thresholds() {
        let automaton = running_example();
        let (sa, sb, sc, sd, sg) = (
            StateId::new(0),
            StateId::new(1),
            StateId::new(2),
            StateId::new(3),
            StateId::new(6),
        );
        // State a: <=3 → rollback g, >3 → b
        assert_eq!(automaton.next_state(&outcome(sa, 3)).unwrap(), Some(sg));
        assert_eq!(automaton.next_state(&outcome(sa, 4)).unwrap(), Some(sb));
        // State b: <=3 → g, =4 → c, >4 → d
        assert_eq!(automaton.next_state(&outcome(sb, 2)).unwrap(), Some(sg));
        assert_eq!(automaton.next_state(&outcome(sb, 4)).unwrap(), Some(sc));
        assert_eq!(automaton.next_state(&outcome(sb, 5)).unwrap(), Some(sd));
        // Final states have no successor.
        assert_eq!(automaton.next_state(&outcome(sg, 0)).unwrap(), None);
        // State d continues to e on success.
        assert_eq!(
            automaton.next_state(&outcome(sd, 5)).unwrap(),
            Some(StateId::new(4))
        );
    }

    #[test]
    fn exception_fallback_overrides_thresholds() {
        let automaton = running_example();
        let sa = StateId::new(0);
        let sg = StateId::new(6);
        let tripped = StateOutcome::combine(
            sa,
            vec![CheckOutcome::exception_tripped(CheckId::new(0), 2, 12)],
            &[Weight::one()],
            Some(sg),
        )
        .unwrap();
        assert_eq!(automaton.next_state(&tripped).unwrap(), Some(sg));
    }

    #[test]
    fn next_state_rejects_unknown_states() {
        let automaton = running_example();
        assert!(matches!(
            automaton.next_state(&outcome(StateId::new(99), 1)),
            Err(ModelError::UnknownState(_))
        ));
    }

    #[test]
    fn build_rejects_missing_start() {
        let err = Automaton::builder()
            .state(state(0, "a", Some(vec![1])))
            .final_state(StateId::new(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidAutomaton(_)));
    }

    #[test]
    fn build_rejects_unknown_start() {
        let err = Automaton::builder()
            .state(state(0, "a", None))
            .start(StateId::new(5))
            .final_state(StateId::new(0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("start state"));
    }

    #[test]
    fn build_rejects_no_final_state() {
        let err = Automaton::builder()
            .state(state(0, "a", Some(vec![1])))
            .start(StateId::new(0))
            .transition(StateId::new(0), vec![StateId::new(0), StateId::new(0)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no final state"));
    }

    #[test]
    fn build_rejects_mismatched_transition_arity() {
        // State with thresholds ⟨3⟩ (2 ranges) but 3 transition targets.
        let err = Automaton::builder()
            .state(state(0, "a", Some(vec![3])))
            .state(state(1, "f", None))
            .start(StateId::new(0))
            .final_state(StateId::new(1))
            .transition(
                StateId::new(0),
                vec![StateId::new(1), StateId::new(1), StateId::new(1)],
            )
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("transition targets"));
    }

    #[test]
    fn build_rejects_unreachable_state() {
        let err = Automaton::builder()
            .state(state(0, "a", Some(vec![3])))
            .state(state(1, "f", None))
            .state(state(2, "island", None))
            .start(StateId::new(0))
            .final_state(StateId::new(1))
            .final_state(StateId::new(2))
            .transition(StateId::new(0), vec![StateId::new(1), StateId::new(1)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn build_rejects_transition_to_unknown_state() {
        let err = Automaton::builder()
            .state(state(0, "a", Some(vec![3])))
            .state(state(1, "f", None))
            .start(StateId::new(0))
            .final_state(StateId::new(1))
            .transition(StateId::new(0), vec![StateId::new(1), StateId::new(9)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unknown state"));
    }

    #[test]
    fn build_rejects_exception_fallback_to_unknown_state() {
        let exception = Check::exception(
            CheckId::new(50),
            "spike",
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors"),
                Validator::LessThan(100.0),
            ),
            Timer::from_secs(5, 12).unwrap(),
            StateId::new(99),
        );
        let bad_state = State::builder(StateId::new(0), "a")
            .check(exception)
            .thresholds(Thresholds::single(3))
            .build()
            .unwrap();
        let err = Automaton::builder()
            .state(bad_state)
            .state(state(1, "f", None))
            .start(StateId::new(0))
            .final_state(StateId::new(1))
            .transition(StateId::new(0), vec![StateId::new(1), StateId::new(1)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unknown state"));
    }

    #[test]
    fn self_loop_reexecutes_state() {
        // A state may transition to itself ("results are not definite").
        let s0 = StateId::new(0);
        let s1 = StateId::new(1);
        let automaton = Automaton::builder()
            .state(state(0, "a", Some(vec![3])))
            .state(
                State::builder(s1, "done")
                    .duration(Duration::from_secs(1))
                    .build()
                    .unwrap(),
            )
            .start(s0)
            .final_state(s1)
            .transition(s0, vec![s0, s1])
            .build()
            .unwrap();
        assert_eq!(automaton.next_state(&outcome(s0, 0)).unwrap(), Some(s0));
        assert_eq!(automaton.next_state(&outcome(s0, 10)).unwrap(), Some(s1));
    }

    #[test]
    fn dot_rendering_contains_states_and_edges() {
        let automaton = running_example();
        let dot = automaton.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn consecutive_thresholds_helper() {
        let t = consecutive_thresholds(3, 3).unwrap();
        assert_eq!(t.values(), &[3, 4]);
        assert!(consecutive_thresholds(0, 1).is_err());
    }
}
