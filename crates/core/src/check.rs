//! Checks: the data-driven decision primitives executed inside a state.
//!
//! A check `cᵢ` couples a metric evaluating function `f_cᵢ : Ωᵢ → {0, 1}`
//! with the monitoring data it reads and a [`Timer`] controlling its timed
//! (re-)execution. The model distinguishes *basic checks* (evaluated once at
//! the end of the state, via thresholds and an output mapping) from
//! *exception checks* (any single failing execution immediately moves the
//! automaton to a fallback state).
//!
//! The model itself does not fetch metrics; it only carries the
//! [`MetricQuery`] descriptors and the [`Validator`] that turns a metric
//! value into a 0/1 result. Fetching is the engine's job (via
//! `bifrost-metrics` providers).

use crate::error::ModelError;
use crate::ids::{CheckId, StateId};
use crate::outcome::OutcomeMapping;
use crate::timer::Timer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A comparison applied to a scalar metric value, e.g. `"< 5"` in the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Validator {
    /// Metric must be strictly less than the bound.
    LessThan(f64),
    /// Metric must be less than or equal to the bound.
    LessOrEqual(f64),
    /// Metric must be strictly greater than the bound.
    GreaterThan(f64),
    /// Metric must be greater than or equal to the bound.
    GreaterOrEqual(f64),
    /// Metric must equal the bound within the given absolute tolerance.
    Equals {
        /// The expected value.
        value: f64,
        /// Allowed absolute deviation.
        tolerance: f64,
    },
    /// Metric must lie within the inclusive range.
    Between(f64, f64),
}

impl Validator {
    /// Evaluates the validator against a metric value, yielding the 0/1
    /// result of a single check execution.
    pub fn evaluate(&self, value: f64) -> bool {
        match *self {
            Validator::LessThan(bound) => value < bound,
            Validator::LessOrEqual(bound) => value <= bound,
            Validator::GreaterThan(bound) => value > bound,
            Validator::GreaterOrEqual(bound) => value >= bound,
            Validator::Equals {
                value: expected,
                tolerance,
            } => (value - expected).abs() <= tolerance,
            Validator::Between(lo, hi) => value >= lo && value <= hi,
        }
    }

    /// Parses the compact DSL syntax (`"<150"`, `">= 3"`, `"=0"`, …).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Validation`] if the expression cannot be parsed.
    pub fn parse(expr: &str) -> Result<Self, ModelError> {
        let expr = expr.trim();
        let (op, rest) = if let Some(rest) = expr.strip_prefix("<=") {
            ("<=", rest)
        } else if let Some(rest) = expr.strip_prefix(">=") {
            (">=", rest)
        } else if let Some(rest) = expr.strip_prefix("==") {
            ("==", rest)
        } else if let Some(rest) = expr.strip_prefix('<') {
            ("<", rest)
        } else if let Some(rest) = expr.strip_prefix('>') {
            (">", rest)
        } else if let Some(rest) = expr.strip_prefix('=') {
            ("=", rest)
        } else {
            return Err(ModelError::Validation(format!(
                "validator '{expr}' must start with <, <=, >, >=, = or =="
            )));
        };
        let value: f64 = rest.trim().parse().map_err(|_| {
            ModelError::Validation(format!("validator '{expr}' has a non-numeric bound"))
        })?;
        Ok(match op {
            "<" => Validator::LessThan(value),
            "<=" => Validator::LessOrEqual(value),
            ">" => Validator::GreaterThan(value),
            ">=" => Validator::GreaterOrEqual(value),
            _ => Validator::Equals {
                value,
                tolerance: 1e-9,
            },
        })
    }
}

impl fmt::Display for Validator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Validator::LessThan(b) => write!(f, "< {b}"),
            Validator::LessOrEqual(b) => write!(f, "<= {b}"),
            Validator::GreaterThan(b) => write!(f, "> {b}"),
            Validator::GreaterOrEqual(b) => write!(f, ">= {b}"),
            Validator::Equals { value, .. } => write!(f, "= {value}"),
            Validator::Between(lo, hi) => write!(f, "in [{lo}, {hi}]"),
        }
    }
}

/// How the samples fetched for a metric query are reduced to the scalar that
/// the [`Validator`] is applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QueryAggregation {
    /// Use the most recent sample.
    #[default]
    Last,
    /// Average over the queried window.
    Mean,
    /// Sum over the queried window.
    Sum,
    /// Maximum over the queried window.
    Max,
    /// Minimum over the queried window.
    Min,
    /// Number of samples in the window.
    Count,
    /// Increase of a counter over the window (last − first, clamped at 0).
    Rate,
}

/// A named query against a metrics provider (`Ωᵢ ⊆ Ω` of a check), e.g. the
/// `request_errors{instance="search:80"}` Prometheus query of Listing 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricQuery {
    /// The provider to query (e.g. `"prometheus"`).
    provider: String,
    /// The name under which the fetched value is exposed to the validator
    /// (e.g. `"search_error"`).
    name: String,
    /// The metric/series name queried from the provider (e.g.
    /// `"request_errors"`).
    metric: String,
    /// Label selectors (e.g. `instance = "search:80"`).
    labels: BTreeMap<String, String>,
    /// How the fetched window is reduced to a scalar.
    aggregation: QueryAggregation,
    /// The look-back window in seconds (0 = only the latest sample).
    window_secs: u64,
}

impl MetricQuery {
    /// Creates a query for `metric` against `provider`, exposed as `name`.
    pub fn new(
        provider: impl Into<String>,
        name: impl Into<String>,
        metric: impl Into<String>,
    ) -> Self {
        Self {
            provider: provider.into(),
            name: name.into(),
            metric: metric.into(),
            labels: BTreeMap::new(),
            aggregation: QueryAggregation::default(),
            window_secs: 0,
        }
    }

    /// Adds a label selector (builder style).
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// Sets the aggregation (builder style).
    pub fn with_aggregation(mut self, aggregation: QueryAggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Sets the look-back window in seconds (builder style).
    pub fn with_window_secs(mut self, window_secs: u64) -> Self {
        self.window_secs = window_secs;
        self
    }

    /// The provider name.
    pub fn provider(&self) -> &str {
        &self.provider
    }

    /// The exposed name of the query result.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metric/series name.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// The label selectors.
    pub fn labels(&self) -> &BTreeMap<String, String> {
        &self.labels
    }

    /// The aggregation applied to the fetched window.
    pub fn aggregation(&self) -> QueryAggregation {
        self.aggregation
    }

    /// The look-back window in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }
}

/// The evaluation specification of a check: which metrics to fetch and how to
/// turn them into a 0/1 result.
///
/// The common case ties one query to one validator, but a check may fetch
/// several metrics and require all (or any) of the validators to pass, which
/// covers cross-version comparisons used for A/B test evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckSpec {
    queries: Vec<(MetricQuery, Validator)>,
    require_all: bool,
}

impl CheckSpec {
    /// A spec with a single metric query and validator.
    pub fn single(query: MetricQuery, validator: Validator) -> Self {
        Self {
            queries: vec![(query, validator)],
            require_all: true,
        }
    }

    /// A spec whose execution succeeds only if **all** validators pass.
    pub fn all_of(queries: Vec<(MetricQuery, Validator)>) -> Self {
        Self {
            queries,
            require_all: true,
        }
    }

    /// A spec whose execution succeeds if **any** validator passes.
    pub fn any_of(queries: Vec<(MetricQuery, Validator)>) -> Self {
        Self {
            queries,
            require_all: false,
        }
    }

    /// The metric queries and their validators.
    pub fn queries(&self) -> &[(MetricQuery, Validator)] {
        &self.queries
    }

    /// Whether all validators must pass (vs any).
    pub fn requires_all(&self) -> bool {
        self.require_all
    }

    /// Evaluates the spec against already-fetched metric values, keyed by the
    /// query's exposed [`MetricQuery::name`]. Missing values count as a
    /// failing validator.
    pub fn evaluate(&self, values: &BTreeMap<String, f64>) -> bool {
        let mut results = self.queries.iter().map(|(query, validator)| {
            values
                .get(query.name())
                .map(|v| validator.evaluate(*v))
                .unwrap_or(false)
        });
        if self.require_all {
            results.all(|r| r)
        } else {
            results.any(|r| r)
        }
    }
}

/// Distinguishes basic from exception checks, carrying the kind-specific
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckKind {
    /// Basic check: the per-execution results are summed up at the end of
    /// the state and mapped through an output mapping.
    Basic(BasicCheck),
    /// Exception check: a single failing execution immediately transitions
    /// the automaton to the fallback state.
    Exception(ExceptionCheck),
}

/// Kind-specific configuration of a basic check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicCheck {
    /// The output mapping applied to the aggregated execution sum.
    pub mapping: OutcomeMapping,
}

/// Kind-specific configuration of an exception check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionCheck {
    /// The state the automaton falls back to when an execution fails.
    pub fallback: StateId,
}

/// A complete check `cᵢ`: spec (metric function), timer, and kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    id: CheckId,
    name: String,
    spec: CheckSpec,
    timer: Timer,
    kind: CheckKind,
}

impl Check {
    /// Creates a basic check.
    pub fn basic(
        id: CheckId,
        name: impl Into<String>,
        spec: CheckSpec,
        timer: Timer,
        mapping: OutcomeMapping,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            spec,
            timer,
            kind: CheckKind::Basic(BasicCheck { mapping }),
        }
    }

    /// Creates an exception check with the given fallback state.
    pub fn exception(
        id: CheckId,
        name: impl Into<String>,
        spec: CheckSpec,
        timer: Timer,
        fallback: StateId,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            spec,
            timer,
            kind: CheckKind::Exception(ExceptionCheck { fallback }),
        }
    }

    /// The check id.
    pub fn id(&self) -> CheckId {
        self.id
    }

    /// The human-readable check name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The evaluation spec.
    pub fn spec(&self) -> &CheckSpec {
        &self.spec
    }

    /// The timer controlling re-execution.
    pub fn timer(&self) -> &Timer {
        &self.timer
    }

    /// The check kind (basic vs exception).
    pub fn kind(&self) -> &CheckKind {
        &self.kind
    }

    /// Whether this is an exception check.
    pub fn is_exception(&self) -> bool {
        matches!(self.kind, CheckKind::Exception(_))
    }

    /// The fallback state if this is an exception check.
    pub fn fallback(&self) -> Option<StateId> {
        match &self.kind {
            CheckKind::Exception(e) => Some(e.fallback),
            CheckKind::Basic(_) => None,
        }
    }

    /// Maps the aggregated execution sum to the check's contribution to the
    /// state outcome. For basic checks this applies the output mapping; for
    /// exception checks the aggregated sum is used directly (the paper: "if
    /// all n function executions are successful, the aggregated outcome value
    /// of an exception check equals n").
    pub fn map_aggregate(&self, aggregated: i64) -> i64 {
        match &self.kind {
            CheckKind::Basic(basic) => basic.mapping.map(aggregated),
            CheckKind::Exception(_) => aggregated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::Thresholds;
    use std::time::Duration;

    fn timer() -> Timer {
        Timer::from_secs(5, 12).unwrap()
    }

    fn error_query() -> MetricQuery {
        MetricQuery::new("prometheus", "search_error", "request_errors")
            .with_label("instance", "search:80")
            .with_aggregation(QueryAggregation::Sum)
            .with_window_secs(60)
    }

    #[test]
    fn validator_evaluation() {
        assert!(Validator::LessThan(5.0).evaluate(4.9));
        assert!(!Validator::LessThan(5.0).evaluate(5.0));
        assert!(Validator::LessOrEqual(5.0).evaluate(5.0));
        assert!(Validator::GreaterThan(5.0).evaluate(5.1));
        assert!(Validator::GreaterOrEqual(5.0).evaluate(5.0));
        assert!(Validator::Equals {
            value: 3.0,
            tolerance: 0.01
        }
        .evaluate(3.005));
        assert!(!Validator::Equals {
            value: 3.0,
            tolerance: 0.01
        }
        .evaluate(3.5));
        assert!(Validator::Between(1.0, 2.0).evaluate(1.5));
        assert!(!Validator::Between(1.0, 2.0).evaluate(2.5));
    }

    #[test]
    fn validator_parse_dsl_syntax() {
        assert_eq!(Validator::parse("<5").unwrap(), Validator::LessThan(5.0));
        assert_eq!(
            Validator::parse("< 150").unwrap(),
            Validator::LessThan(150.0)
        );
        assert_eq!(
            Validator::parse(">=3").unwrap(),
            Validator::GreaterOrEqual(3.0)
        );
        assert_eq!(
            Validator::parse("<= 0.5").unwrap(),
            Validator::LessOrEqual(0.5)
        );
        assert_eq!(
            Validator::parse("> 10").unwrap(),
            Validator::GreaterThan(10.0)
        );
        assert!(matches!(
            Validator::parse("=0").unwrap(),
            Validator::Equals { .. }
        ));
        assert!(matches!(
            Validator::parse("== 7").unwrap(),
            Validator::Equals { .. }
        ));
        assert!(Validator::parse("~5").is_err());
        assert!(Validator::parse("<abc").is_err());
    }

    #[test]
    fn validator_display() {
        assert_eq!(Validator::LessThan(5.0).to_string(), "< 5");
        assert_eq!(Validator::Between(1.0, 2.0).to_string(), "in [1, 2]");
    }

    #[test]
    fn metric_query_builder() {
        let q = error_query();
        assert_eq!(q.provider(), "prometheus");
        assert_eq!(q.name(), "search_error");
        assert_eq!(q.metric(), "request_errors");
        assert_eq!(q.labels()["instance"], "search:80");
        assert_eq!(q.aggregation(), QueryAggregation::Sum);
        assert_eq!(q.window_secs(), 60);
    }

    #[test]
    fn check_spec_single_evaluation() {
        let spec = CheckSpec::single(error_query(), Validator::LessThan(5.0));
        let mut values = BTreeMap::new();
        values.insert("search_error".to_string(), 3.0);
        assert!(spec.evaluate(&values));
        values.insert("search_error".to_string(), 12.0);
        assert!(!spec.evaluate(&values));
    }

    #[test]
    fn check_spec_missing_metric_fails() {
        let spec = CheckSpec::single(error_query(), Validator::LessThan(5.0));
        assert!(!spec.evaluate(&BTreeMap::new()));
    }

    #[test]
    fn check_spec_all_vs_any() {
        let q1 = MetricQuery::new("prometheus", "a", "metric_a");
        let q2 = MetricQuery::new("prometheus", "b", "metric_b");
        let all = CheckSpec::all_of(vec![
            (q1.clone(), Validator::LessThan(5.0)),
            (q2.clone(), Validator::LessThan(5.0)),
        ]);
        let any = CheckSpec::any_of(vec![
            (q1, Validator::LessThan(5.0)),
            (q2, Validator::LessThan(5.0)),
        ]);
        let mut values = BTreeMap::new();
        values.insert("a".to_string(), 1.0);
        values.insert("b".to_string(), 10.0);
        assert!(!all.evaluate(&values));
        assert!(any.evaluate(&values));
        assert!(all.requires_all());
        assert!(!any.requires_all());
    }

    #[test]
    fn basic_check_maps_aggregate() {
        let mapping =
            OutcomeMapping::new(Thresholds::new(vec![75, 95]).unwrap(), vec![-5, 4, 5]).unwrap();
        let check = Check::basic(
            CheckId::new(0),
            "response-time",
            CheckSpec::single(error_query(), Validator::LessThan(150.0)),
            Timer::new(Duration::from_secs(600), 100).unwrap(),
            mapping,
        );
        assert!(!check.is_exception());
        assert_eq!(check.fallback(), None);
        assert_eq!(check.map_aggregate(100), 5);
        assert_eq!(check.map_aggregate(80), 4);
        assert_eq!(check.map_aggregate(10), -5);
        assert_eq!(check.name(), "response-time");
        assert_eq!(check.timer().repetitions(), 100);
        assert_eq!(check.spec().queries().len(), 1);
    }

    #[test]
    fn exception_check_reports_fallback_and_identity_mapping() {
        let check = Check::exception(
            CheckId::new(1),
            "error-spike",
            CheckSpec::single(error_query(), Validator::LessThan(100.0)),
            timer(),
            StateId::new(9),
        );
        assert!(check.is_exception());
        assert_eq!(check.fallback(), Some(StateId::new(9)));
        // Exception checks contribute their raw success count.
        assert_eq!(check.map_aggregate(12), 12);
        assert!(matches!(check.kind(), CheckKind::Exception(_)));
    }
}
