//! Shared deterministic 64-bit mixing primitives.
//!
//! Several components hash identities into uniform draws or bucket indices:
//! the proxy buckets session tokens into traffic splits, salts dark-launch
//! cohort draws, and assigns tokens to session-store shards. They all build
//! on the same splitmix64 finalizer so the statistical properties (full
//! avalanche, uniform low bits) are shared and tested in one place — and so
//! two draws over the same identity can be decorrelated by salting instead
//! of by inventing new mixers.

/// The splitmix64 increment ("golden gamma"), also used as the additive
/// pre-whitening step when finalizing raw identity bits.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijective avalanche mix of all 64 bits.
///
/// Every output bit depends on every input bit, so both the high bits
/// (bucket indices via modulo) and the low 53 bits (uniform doubles) of the
/// result are usable independently.
#[inline]
#[must_use]
pub const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One step of the splitmix64 sequence: advances `state` by
/// [`GOLDEN_GAMMA`] and finalizes it with [`mix64`].
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    mix64(*state)
}

/// Maps 64 identity bits to a uniform draw in `[0, 1)` (splitmix64-style:
/// pre-whiten with [`GOLDEN_GAMMA`], finalize, take the high 53 bits).
#[inline]
#[must_use]
pub fn mix_unit(bits: u64) -> f64 {
    (mix64(bits.wrapping_add(GOLDEN_GAMMA)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Folds a 128-bit identity (e.g. a session token) into 64 mixed bits.
#[inline]
#[must_use]
pub const fn fold128(raw: u128) -> u64 {
    mix64((raw as u64) ^ ((raw >> 64) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_sequence_matches_reference_vectors() {
        // Reference values of splitmix64 seeded with 0 (Vigna's sequence).
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix_unit_is_uniform_and_in_range() {
        let n = 10_000u64;
        let draws: Vec<f64> = (0..n).map(mix_unit).collect();
        assert!(draws.iter().all(|d| (0.0..1.0).contains(d)));
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fold128_depends_on_both_halves() {
        let base = 0x0123_4567_89ab_cdef_0123_4567_89ab_cdefu128;
        assert_ne!(fold128(base), fold128(base ^ 1));
        assert_ne!(fold128(base), fold128(base ^ (1u128 << 100)));
        assert_eq!(fold128(base), fold128(base));
    }
}
