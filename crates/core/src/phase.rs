//! High-level phase descriptions that compile into automaton states.
//!
//! The formal model operates on individual states; strategies in practice
//! are written as a sequence of *phases* (canary release, dark launch, A/B
//! test, gradual rollout). A [`PhaseSpec`] captures one such phase along with
//! its checks and duration; [`crate::StrategyBuilder`] expands phases into
//! the corresponding states, transitions, success path, and rollback state.

use crate::check::{Check, CheckSpec};
use crate::ids::{ServiceId, VersionId};
use crate::outcome::{OutcomeMapping, Weight};
use crate::routing::Percentage;
use crate::timer::Timer;
use crate::user::UserSelector;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A check attached to a phase, before ids are assigned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseCheck {
    /// Human-readable name.
    pub name: String,
    /// Metric queries and validators.
    pub spec: CheckSpec,
    /// Re-execution timer.
    pub timer: Timer,
    /// Output mapping for basic checks; `None` marks an exception check
    /// falling back to the strategy's rollback state.
    pub mapping: Option<OutcomeMapping>,
    /// Weight in the state-level combination.
    pub weight: Weight,
}

impl PhaseCheck {
    /// A basic check with the default weight.
    pub fn basic(
        name: impl Into<String>,
        spec: CheckSpec,
        timer: Timer,
        mapping: OutcomeMapping,
    ) -> Self {
        Self {
            name: name.into(),
            spec,
            timer,
            mapping: Some(mapping),
            weight: Weight::one(),
        }
    }

    /// An exception check (falls back to the rollback state on any failure).
    pub fn exception(name: impl Into<String>, spec: CheckSpec, timer: Timer) -> Self {
        Self {
            name: name.into(),
            spec,
            timer,
            mapping: None,
            weight: Weight::one(),
        }
    }

    /// Overrides the weight (builder style).
    pub fn with_weight(mut self, weight: Weight) -> Self {
        self.weight = weight;
        self
    }

    /// Instantiates the check with concrete ids.
    pub(crate) fn instantiate(
        &self,
        id: crate::ids::CheckId,
        rollback: crate::ids::StateId,
    ) -> Check {
        match &self.mapping {
            Some(mapping) => Check::basic(
                id,
                &self.name,
                self.spec.clone(),
                self.timer,
                mapping.clone(),
            ),
            None => Check::exception(id, &self.name, self.spec.clone(), self.timer, rollback),
        }
    }
}

/// The kind of live testing performed in a phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Canary release: route `share` percent of the selected users to the
    /// canary version, the rest stays on the stable version.
    Canary {
        /// The service being live-tested.
        service: ServiceId,
        /// The stable version.
        stable: VersionId,
        /// The canary version.
        canary: VersionId,
        /// Canary traffic share.
        share: Percentage,
    },
    /// Dark launch: duplicate `share` percent of the traffic hitting
    /// `source` to `shadow`, discarding the shadow's responses.
    DarkLaunch {
        /// The service being live-tested.
        service: ServiceId,
        /// The version whose traffic is observed.
        source: VersionId,
        /// The shadow version receiving duplicated traffic.
        shadow: VersionId,
        /// Share of traffic duplicated.
        share: Percentage,
    },
    /// A/B test: split traffic 50/50 between two alternatives with sticky
    /// sessions.
    AbTest {
        /// The service being live-tested.
        service: ServiceId,
        /// Alternative A.
        a: VersionId,
        /// Alternative B.
        b: VersionId,
    },
    /// Gradual rollout: increase the canary share from `from` to `to` in
    /// `step` increments, holding each step for `step_duration`.
    GradualRollout {
        /// The service being live-tested.
        service: ServiceId,
        /// The version being phased out.
        stable: VersionId,
        /// The version being rolled out.
        canary: VersionId,
        /// Initial canary share.
        from: Percentage,
        /// Final canary share.
        to: Percentage,
        /// Share increment per step.
        step: Percentage,
        /// Duration of each step.
        step_duration: Duration,
    },
}

/// A declarative phase of a multi-phase live testing strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    name: String,
    kind: PhaseKind,
    checks: Vec<PhaseCheck>,
    duration: Option<Duration>,
    selector: UserSelector,
    sticky: bool,
}

impl PhaseSpec {
    /// Creates a phase from its kind.
    pub fn new(name: impl Into<String>, kind: PhaseKind) -> Self {
        let sticky = matches!(kind, PhaseKind::AbTest { .. });
        Self {
            name: name.into(),
            kind,
            checks: Vec::new(),
            duration: None,
            selector: UserSelector::All,
            sticky,
        }
    }

    /// Convenience constructor for a canary phase.
    pub fn canary(
        name: impl Into<String>,
        service: ServiceId,
        stable: VersionId,
        canary: VersionId,
        share: Percentage,
    ) -> Self {
        Self::new(
            name,
            PhaseKind::Canary {
                service,
                stable,
                canary,
                share,
            },
        )
    }

    /// Convenience constructor for a dark-launch phase.
    pub fn dark_launch(
        name: impl Into<String>,
        service: ServiceId,
        source: VersionId,
        shadow: VersionId,
        share: Percentage,
    ) -> Self {
        Self::new(
            name,
            PhaseKind::DarkLaunch {
                service,
                source,
                shadow,
                share,
            },
        )
    }

    /// Convenience constructor for an A/B test phase.
    pub fn ab_test(
        name: impl Into<String>,
        service: ServiceId,
        a: VersionId,
        b: VersionId,
    ) -> Self {
        Self::new(name, PhaseKind::AbTest { service, a, b })
    }

    /// Convenience constructor for a gradual rollout phase.
    #[allow(clippy::too_many_arguments)]
    pub fn gradual_rollout(
        name: impl Into<String>,
        service: ServiceId,
        stable: VersionId,
        canary: VersionId,
        from: Percentage,
        to: Percentage,
        step: Percentage,
        step_duration: Duration,
    ) -> Self {
        Self::new(
            name,
            PhaseKind::GradualRollout {
                service,
                stable,
                canary,
                from,
                to,
                step,
                step_duration,
            },
        )
    }

    /// Adds a check to the phase (builder style).
    pub fn check(mut self, check: PhaseCheck) -> Self {
        self.checks.push(check);
        self
    }

    /// Sets an explicit phase duration in seconds (builder style).
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.duration = Some(Duration::from_secs(secs));
        self
    }

    /// Sets an explicit phase duration (builder style).
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Restricts the phase to users matched by `selector` (builder style).
    pub fn selector(mut self, selector: UserSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Overrides whether sessions are sticky within the phase (builder style).
    pub fn sticky(mut self, sticky: bool) -> Self {
        self.sticky = sticky;
        self
    }

    /// The phase name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phase kind.
    pub fn kind(&self) -> &PhaseKind {
        &self.kind
    }

    /// The phase checks.
    pub fn checks(&self) -> &[PhaseCheck] {
        &self.checks
    }

    /// The explicit phase duration, if any.
    pub fn explicit_duration(&self) -> Option<Duration> {
        self.duration
    }

    /// The user selector of the phase.
    pub fn user_selector(&self) -> &UserSelector {
        &self.selector
    }

    /// Whether sessions are sticky within the phase.
    pub fn is_sticky(&self) -> bool {
        self.sticky
    }

    /// Number of automaton states this phase expands into (gradual rollouts
    /// expand into one state per step, every other phase into one state).
    pub fn state_count(&self) -> usize {
        match &self.kind {
            PhaseKind::GradualRollout { from, to, step, .. } => {
                gradual_steps(*from, *to, *step).len()
            }
            _ => 1,
        }
    }

    /// The service this phase operates on.
    pub fn service(&self) -> ServiceId {
        match self.kind {
            PhaseKind::Canary { service, .. }
            | PhaseKind::DarkLaunch { service, .. }
            | PhaseKind::AbTest { service, .. }
            | PhaseKind::GradualRollout { service, .. } => service,
        }
    }

    /// All versions referenced by the phase.
    pub fn versions(&self) -> Vec<VersionId> {
        match self.kind {
            PhaseKind::Canary { stable, canary, .. } => vec![stable, canary],
            PhaseKind::DarkLaunch { source, shadow, .. } => vec![source, shadow],
            PhaseKind::AbTest { a, b, .. } => vec![a, b],
            PhaseKind::GradualRollout { stable, canary, .. } => vec![stable, canary],
        }
    }
}

/// The canary shares of every step of a gradual rollout: `from`, `from+step`,
/// …, capped at `to` (the final step always equals `to`).
pub(crate) fn gradual_steps(from: Percentage, to: Percentage, step: Percentage) -> Vec<Percentage> {
    let mut shares = Vec::new();
    if step.value() <= 0.0 || from.value() > to.value() {
        shares.push(to);
        return shares;
    }
    let mut current = from.value();
    loop {
        if current >= to.value() {
            shares.push(to);
            break;
        }
        shares.push(Percentage::new(current).expect("bounded by from/to"));
        current += step.value();
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{MetricQuery, Validator};

    fn ids() -> (ServiceId, VersionId, VersionId) {
        (ServiceId::new(0), VersionId::new(0), VersionId::new(1))
    }

    #[test]
    fn canary_phase_defaults() {
        let (svc, v1, v2) = ids();
        let phase = PhaseSpec::canary("canary", svc, v1, v2, Percentage::new(5.0).unwrap());
        assert_eq!(phase.name(), "canary");
        assert_eq!(phase.state_count(), 1);
        assert_eq!(phase.service(), svc);
        assert_eq!(phase.versions(), vec![v1, v2]);
        assert!(!phase.is_sticky());
        assert_eq!(phase.user_selector(), &UserSelector::All);
    }

    #[test]
    fn ab_test_is_sticky_by_default() {
        let (svc, v1, v2) = ids();
        assert!(PhaseSpec::ab_test("ab", svc, v1, v2).is_sticky());
        assert!(!PhaseSpec::ab_test("ab", svc, v1, v2)
            .sticky(false)
            .is_sticky());
    }

    #[test]
    fn gradual_steps_match_paper_experiment() {
        // 5% → 100% in 5% steps: 5, 10, …, 95, 100 → 20 states, matching the
        // paper's "Corresponds to 20 states in the model".
        let steps = gradual_steps(
            Percentage::new(5.0).unwrap(),
            Percentage::new(100.0).unwrap(),
            Percentage::new(5.0).unwrap(),
        );
        assert_eq!(steps.len(), 20);
        assert_eq!(steps[0].value(), 5.0);
        assert_eq!(steps[19].value(), 100.0);
    }

    #[test]
    fn gradual_steps_cap_at_target() {
        let steps = gradual_steps(
            Percentage::new(10.0).unwrap(),
            Percentage::new(50.0).unwrap(),
            Percentage::new(15.0).unwrap(),
        );
        // 10, 25, 40, 50
        assert_eq!(steps.len(), 4);
        assert_eq!(steps.last().unwrap().value(), 50.0);
    }

    #[test]
    fn degenerate_gradual_steps() {
        // from > to or zero step collapses to a single step at the target.
        assert_eq!(
            gradual_steps(
                Percentage::new(80.0).unwrap(),
                Percentage::new(50.0).unwrap(),
                Percentage::new(5.0).unwrap()
            )
            .len(),
            1
        );
        assert_eq!(
            gradual_steps(
                Percentage::new(0.0).unwrap(),
                Percentage::new(50.0).unwrap(),
                Percentage::zero()
            )
            .len(),
            1
        );
    }

    #[test]
    fn gradual_rollout_state_count() {
        let (svc, v1, v2) = ids();
        let phase = PhaseSpec::gradual_rollout(
            "rollout",
            svc,
            v1,
            v2,
            Percentage::new(5.0).unwrap(),
            Percentage::new(100.0).unwrap(),
            Percentage::new(5.0).unwrap(),
            Duration::from_secs(10),
        );
        assert_eq!(phase.state_count(), 20);
    }

    #[test]
    fn phase_checks_and_duration_builders() {
        let (svc, v1, v2) = ids();
        let check = PhaseCheck::basic(
            "errors",
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors"),
                Validator::LessThan(5.0),
            ),
            Timer::from_secs(12, 5).unwrap(),
            OutcomeMapping::binary(5, 0, 5).unwrap(),
        )
        .with_weight(Weight::new(2.0).unwrap());
        let phase = PhaseSpec::dark_launch("dark", svc, v1, v2, Percentage::full())
            .check(check)
            .duration_secs(60)
            .selector(UserSelector::attribute("country", "US"));
        assert_eq!(phase.checks().len(), 1);
        assert_eq!(phase.checks()[0].weight.value(), 2.0);
        assert_eq!(phase.explicit_duration(), Some(Duration::from_secs(60)));
        assert!(matches!(phase.kind(), PhaseKind::DarkLaunch { .. }));
    }
}
