//! Timers `τ` controlling when and how often checks execute.
//!
//! The model expresses timed execution through a timer attached to every
//! check: the check's metric evaluating function is (re-)executed every
//! `interval` for `repetitions` times. A state is complete when the slowest
//! of its checks has finished all repetitions.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// A timer `τ = (interval, repetitions)` controlling the re-execution of a
/// check's evaluation function.
///
/// ```
/// use bifrost_core::Timer;
/// use std::time::Duration;
///
/// // "re-executed every 5 seconds and 12 times in total" (Listing 1)
/// let timer = Timer::new(Duration::from_secs(5), 12)?;
/// assert_eq!(timer.total_duration(), Duration::from_secs(60));
/// # Ok::<(), bifrost_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Timer {
    interval: Duration,
    repetitions: u32,
}

impl Timer {
    /// Creates a timer firing every `interval`, `repetitions` times in total.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTimer`] if the interval is zero or the
    /// repetition count is zero.
    pub fn new(interval: Duration, repetitions: u32) -> Result<Self, ModelError> {
        if interval.is_zero() {
            return Err(ModelError::InvalidTimer(
                "interval must be greater than zero".into(),
            ));
        }
        if repetitions == 0 {
            return Err(ModelError::InvalidTimer(
                "repetitions must be greater than zero".into(),
            ));
        }
        Ok(Self {
            interval,
            repetitions,
        })
    }

    /// Convenience constructor taking whole seconds.
    ///
    /// # Errors
    ///
    /// Same as [`Timer::new`].
    pub fn from_secs(interval_secs: u64, repetitions: u32) -> Result<Self, ModelError> {
        Self::new(Duration::from_secs(interval_secs), repetitions)
    }

    /// A timer that fires exactly once after `interval` (used for checks that
    /// are evaluated only at the end of a phase, e.g. A/B test evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTimer`] if the interval is zero.
    pub fn once(interval: Duration) -> Result<Self, ModelError> {
        Self::new(interval, 1)
    }

    /// The interval between executions.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The number of executions.
    pub fn repetitions(&self) -> u32 {
        self.repetitions
    }

    /// Total time from the start of the state until the last execution of the
    /// check fires (`interval * repetitions`).
    pub fn total_duration(&self) -> Duration {
        self.interval * self.repetitions
    }

    /// The virtual time offsets (relative to the state start) at which the
    /// check fires: `interval, 2·interval, …, repetitions·interval`.
    pub fn fire_offsets(&self) -> impl Iterator<Item = Duration> + '_ {
        (1..=self.repetitions).map(move |i| self.interval * i)
    }
}

impl fmt::Display for Timer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "every {:?} x {} (total {:?})",
            self.interval,
            self.repetitions,
            self.total_duration()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_rejected() {
        assert!(matches!(
            Timer::new(Duration::ZERO, 3),
            Err(ModelError::InvalidTimer(_))
        ));
    }

    #[test]
    fn zero_repetitions_rejected() {
        assert!(matches!(
            Timer::from_secs(5, 0),
            Err(ModelError::InvalidTimer(_))
        ));
    }

    #[test]
    fn listing1_timer_covers_60_seconds() {
        // intervalTime: 5, intervalLimit: 12  → 60 s total
        let t = Timer::from_secs(5, 12).unwrap();
        assert_eq!(t.interval(), Duration::from_secs(5));
        assert_eq!(t.repetitions(), 12);
        assert_eq!(t.total_duration(), Duration::from_secs(60));
    }

    #[test]
    fn once_fires_a_single_time() {
        let t = Timer::once(Duration::from_secs(60)).unwrap();
        assert_eq!(t.repetitions(), 1);
        assert_eq!(t.fire_offsets().count(), 1);
    }

    #[test]
    fn fire_offsets_are_multiples_of_interval() {
        let t = Timer::from_secs(10, 3).unwrap();
        let offsets: Vec<_> = t.fire_offsets().collect();
        assert_eq!(
            offsets,
            vec![
                Duration::from_secs(10),
                Duration::from_secs(20),
                Duration::from_secs(30)
            ]
        );
    }

    #[test]
    fn display_is_informative() {
        let t = Timer::from_secs(5, 2).unwrap();
        let s = t.to_string();
        assert!(s.contains("5s"));
        assert!(s.contains("x 2"));
    }
}
