//! Strongly-typed identifiers used throughout the model.
//!
//! Every entity of the formal model (services, versions, users, automaton
//! states, checks, strategies) is referenced by a dedicated newtype so that
//! the compiler rules out mixing them up (e.g. passing a [`StateId`] where a
//! [`CheckId`] is expected).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! numeric_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

numeric_id!(
    /// Identifies a [`Service`](crate::Service) (`bᵢ ∈ B` in the paper).
    ServiceId,
    "svc-"
);
numeric_id!(
    /// Identifies a concrete [`ServiceVersion`](crate::ServiceVersion) (`vⱼ` of a service).
    VersionId,
    "ver-"
);
numeric_id!(
    /// Identifies a [`User`](crate::User) (`uₖ ∈ U`).
    UserId,
    "user-"
);
numeric_id!(
    /// Identifies a [`State`](crate::State) (`sᵢ ∈ S`) of the automaton.
    StateId,
    "state-"
);
numeric_id!(
    /// Identifies a [`Check`](crate::Check) (`cᵢ ∈ C`) inside a state.
    CheckId,
    "check-"
);
numeric_id!(
    /// Identifies a complete [`Strategy`](crate::Strategy) (`S = ⟨B, A⟩`).
    StrategyId,
    "strategy-"
);

/// A small helper that hands out monotonically increasing identifiers.
///
/// Builders use this to assign ids deterministically, which keeps model
/// construction reproducible (important for the simulation substrate).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator starting at `first`.
    pub fn starting_at(first: u64) -> Self {
        Self { next: first }
    }

    /// Returns the next raw id and advances the allocator.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Returns the next id converted into the requested newtype.
    pub fn next_id<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }

    /// Number of identifiers handed out so far (when starting at zero).
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(ServiceId::new(3).to_string(), "svc-3");
        assert_eq!(VersionId::new(0).to_string(), "ver-0");
        assert_eq!(UserId::new(42).to_string(), "user-42");
        assert_eq!(StateId::new(7).to_string(), "state-7");
        assert_eq!(CheckId::new(9).to_string(), "check-9");
        assert_eq!(StrategyId::new(1).to_string(), "strategy-1");
    }

    #[test]
    fn roundtrip_raw_conversion() {
        let id = StateId::from(17u64);
        assert_eq!(id.raw(), 17);
        assert_eq!(u64::from(id), 17);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(CheckId::new(1) < CheckId::new(2));
        assert!(StateId::new(10) > StateId::new(3));
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::new();
        let a: StateId = alloc.next_id();
        let b: StateId = alloc.next_id();
        let c: StateId = alloc.next_id();
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(c.raw(), 2);
        assert_eq!(alloc.allocated(), 3);
    }

    #[test]
    fn allocator_starting_at_offset() {
        let mut alloc = IdAllocator::starting_at(100);
        let id: VersionId = alloc.next_id();
        assert_eq!(id.raw(), 100);
    }
}
