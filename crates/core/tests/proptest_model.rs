//! Property-based tests for the invariants of the formal model.

use bifrost_core::ids::UserId;
use bifrost_core::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::time::Duration;

/// Strategy producing strictly increasing threshold vectors.
fn thresholds_vec() -> impl proptest::strategy::Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(-1_000i64..1_000, 1..8)
        .prop_map(|set| set.into_iter().collect::<Vec<_>>())
}

proptest! {
    /// Every integer value is classified into exactly one of the n+1 ranges,
    /// and the ranges partition ℤ (classification index is monotone in the
    /// value).
    #[test]
    fn thresholds_partition_the_integers(values in thresholds_vec(), probe in -2_000i64..2_000) {
        let t = Thresholds::new(values.clone()).unwrap();
        prop_assert_eq!(t.range_count(), values.len() + 1);
        let idx = t.classify(probe);
        prop_assert!(idx < t.range_count());
        prop_assert!(t.contains(idx, probe));
        // Bounds of the chosen range actually contain the probe.
        let (lower, upper) = t.range_bounds(idx);
        if let Some(l) = lower {
            prop_assert!(probe > l);
        }
        if let Some(u) = upper {
            prop_assert!(probe <= u);
        }
    }

    /// Classification is monotone: larger values never land in a lower range.
    #[test]
    fn threshold_classification_is_monotone(values in thresholds_vec(), a in -2_000i64..2_000, b in -2_000i64..2_000) {
        let t = Thresholds::new(values).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.classify(lo) <= t.classify(hi));
    }

    /// An outcome mapping always returns one of its configured results.
    #[test]
    fn outcome_mapping_is_total(values in thresholds_vec(), probe in -2_000i64..2_000) {
        let t = Thresholds::new(values).unwrap();
        let results: Vec<i64> = (0..t.range_count() as i64).collect();
        let mapping = OutcomeMapping::new(t, results.clone()).unwrap();
        prop_assert!(results.contains(&mapping.map(probe)));
    }

    /// A canary traffic split always sums to 100 % and `pick` never selects a
    /// version that has 0 % share (for draws in [0, 1)).
    #[test]
    fn canary_split_is_well_formed(share in 0.0f64..=100.0, draw in 0.0f64..1.0) {
        let stable = VersionId::new(0);
        let canary = VersionId::new(1);
        let split = TrafficSplit::canary(stable, canary, Percentage::new(share).unwrap()).unwrap();
        let total: f64 = split.shares().iter().map(|(_, p)| p.value()).sum();
        prop_assert!((total - 100.0).abs() < 1e-9);
        let picked = split.pick(draw);
        if share == 0.0 {
            prop_assert_eq!(picked, stable);
        }
        if share == 100.0 {
            prop_assert_eq!(picked, canary);
        }
    }

    /// The fraction of draws routed to the canary converges to its share.
    #[test]
    fn pick_distribution_tracks_share(share in 1.0f64..=99.0) {
        let stable = VersionId::new(0);
        let canary = VersionId::new(1);
        let split = TrafficSplit::canary(stable, canary, Percentage::new(share).unwrap()).unwrap();
        let n = 4_000usize;
        let hits = (0..n)
            .map(|i| (i as f64 + 0.5) / n as f64)
            .filter(|&d| split.pick(d) == canary)
            .count();
        let measured = hits as f64 / n as f64 * 100.0;
        prop_assert!((measured - share).abs() < 1.0, "share {share} measured {measured}");
    }

    /// Percentage selectors are monotone: raising the percentage never drops
    /// a previously selected user (gradual rollouts only add users).
    #[test]
    fn selector_membership_is_monotone(user_id in 0u64..50_000, small in 0.0f64..=100.0, extra in 0.0f64..=100.0) {
        let large = (small + extra).min(100.0);
        let user = User::new(UserId::new(user_id));
        let small_sel = UserSelector::percentage(Percentage::new(small).unwrap());
        let large_sel = UserSelector::percentage(Percentage::new(large).unwrap());
        if small_sel.selects(&user) {
            prop_assert!(large_sel.selects(&user));
        }
    }

    /// Weighted outcome combination is linear in the weights: doubling all
    /// weights doubles the (untruncated) outcome, and zero weights yield 0.
    #[test]
    fn zero_weights_produce_zero_outcome(values in proptest::collection::vec(-10i64..10, 1..6)) {
        let checks: Vec<CheckOutcome> = values
            .iter()
            .enumerate()
            .map(|(i, v)| CheckOutcome::basic(CheckId::new(i as u64), *v, 1, *v))
            .collect();
        let weights = vec![Weight::new(0.0).unwrap(); checks.len()];
        let outcome = StateOutcome::combine(StateId::new(0), checks, &weights, None).unwrap();
        prop_assert_eq!(outcome.value, 0);
    }

    /// The state transition function is total and deterministic for any
    /// outcome value: the same value always yields the same successor, and a
    /// successor always exists for non-final states.
    #[test]
    fn transition_function_is_total_and_deterministic(outcome_value in -100i64..100) {
        let (catalog, search, stable, fast) = simple_catalog();
        let strategy = StrategyBuilder::new("prop", catalog)
            .phase(
                PhaseSpec::canary("canary", search, stable, fast, Percentage::new(5.0).unwrap())
                    .duration_secs(60),
            )
            .phase(
                PhaseSpec::ab_test("ab", search, stable, fast).duration_secs(60),
            )
            .build()
            .unwrap();
        let automaton = strategy.automaton();
        for (id, state) in automaton.states() {
            if automaton.is_final(*id) {
                continue;
            }
            let check_id = state.checks()[0].id();
            let outcome = StateOutcome::combine(
                *id,
                vec![CheckOutcome::basic(check_id, outcome_value, 1, outcome_value)],
                &[Weight::one()],
                None,
            )
            .unwrap();
            let next_a = automaton.next_state(&outcome).unwrap();
            let next_b = automaton.next_state(&outcome).unwrap();
            prop_assert_eq!(next_a, next_b);
            prop_assert!(next_a.is_some());
        }
    }

    /// Gradual rollouts never decrease the canary share along the happy path.
    #[test]
    fn gradual_rollout_shares_are_non_decreasing(from in 1.0f64..50.0, step in 1.0f64..30.0) {
        let (catalog, search, stable, fast) = simple_catalog();
        let strategy = StrategyBuilder::new("rollout", catalog)
            .phase(PhaseSpec::gradual_rollout(
                "rollout",
                search,
                stable,
                fast,
                Percentage::new(from).unwrap(),
                Percentage::new(100.0).unwrap(),
                Percentage::new(step).unwrap(),
                Duration::from_secs(10),
            ))
            .build()
            .unwrap();
        let automaton = strategy.automaton();
        let mut current = automaton.start();
        let mut last_share = 0.0f64;
        while !automaton.is_final(current) {
            let state = automaton.state(current).unwrap();
            if let Some(RoutingRule::Split { split, .. }) = state.routing().first() {
                let share = split.share_of(fast).value();
                prop_assert!(share + 1e-9 >= last_share, "share dropped from {last_share} to {share}");
                last_share = share;
            }
            let table = automaton.transitions_of(current).unwrap();
            current = table.target(table.len() - 1).unwrap();
        }
        prop_assert!((last_share - 100.0).abs() < 1e-6);
    }
}

fn simple_catalog() -> (ServiceCatalog, ServiceId, VersionId, VersionId) {
    let mut catalog = ServiceCatalog::new();
    let search = catalog.add_service(Service::new("search"));
    let stable = catalog
        .add_version(
            search,
            ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
        )
        .unwrap();
    let fast = catalog
        .add_version(
            search,
            ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)),
        )
        .unwrap();
    (catalog, search, stable, fast)
}
