//! Property tests of [`CpuResource::sample_utilization`]'s windowing: a
//! pending execution interval that spans a sample boundary must be *split*
//! across the windows — the busy time attributed to all windows together
//! equals the busy time a single end-of-run sample attributes, no matter
//! where the boundaries fall. Double-counting the overlap (or dropping the
//! carried-over tail) breaks this conservation.

use bifrost_simnet::{CpuResource, SimTime};
use proptest::collection::vec as any_vec;
use proptest::prelude::*;
use std::time::Duration;

/// Busy seconds a sample attributes to its window: utilisation is percent
/// of `window × cores` capacity.
fn busy_secs(cpu: &mut CpuResource, from: SimTime, to: SimTime, cores: usize) -> f64 {
    let percent = cpu.sample_utilization(to);
    percent / 100.0 * (to - from).as_secs_f64() * cores as f64
}

proptest! {
    /// Sampling at arbitrary intermediate boundaries attributes exactly the
    /// same total busy time as one sample at the end: boundary-spanning
    /// intervals are split, not double-counted or dropped.
    #[test]
    fn window_sampling_conserves_busy_time(
        cores in 1usize..4,
        // Arrival gaps (ms since the previous arrival) and service demands
        // (ms), zipped pairwise below.
        gaps in any_vec(0u64..400, 1..40),
        demands in any_vec(1u64..120, 1..40),
        // Sample boundaries as offsets (ms) into the run, deduplicated and
        // sorted below.
        boundaries in any_vec(1u64..20_000, 0..8),
    ) {
        // Build the identical submission sequence on two CPUs.
        let mut sampled = CpuResource::new(cores);
        let mut reference = CpuResource::new(cores);
        let mut at = SimTime::ZERO;
        let mut horizon = SimTime::ZERO;
        for (gap_ms, demand_ms) in gaps.into_iter().zip(demands) {
            at += Duration::from_millis(gap_ms);
            let demand = Duration::from_millis(demand_ms);
            let receipt = sampled.submit(at, demand);
            reference.submit(at, demand);
            horizon = horizon.max(receipt.completed);
        }
        // The end time covers every completion, so nothing is left pending.
        let end = horizon + Duration::from_millis(1);

        let mut cuts: Vec<SimTime> = boundaries
            .into_iter()
            .map(|ms| SimTime::ZERO + Duration::from_millis(ms))
            .filter(|t| *t < end)
            .collect();
        cuts.sort();
        cuts.dedup();
        cuts.push(end);

        let mut split_total = 0.0;
        let mut from = SimTime::ZERO;
        for cut in cuts {
            split_total += busy_secs(&mut sampled, from, cut, cores);
            from = cut;
        }
        let single_total = busy_secs(&mut reference, SimTime::ZERO, end, cores);

        // Both equal each other and the CPU's own busy accounting.
        prop_assert!(
            (split_total - single_total).abs() < 1e-6,
            "split {split_total} vs single {single_total}"
        );
        prop_assert!(
            (split_total - reference.total_busy().as_secs_f64()).abs() < 1e-6,
            "split {split_total} vs busy {}",
            reference.total_busy().as_secs_f64()
        );
    }

    /// A saturating window never reports more than 100% and the carried
    /// tail of a spanning interval lands in later windows: sampling midway
    /// through one long job attributes exactly the elapsed part.
    #[test]
    fn spanning_interval_is_split_at_the_boundary(
        demand_ms in 2u64..10_000,
        cut_fraction in 0.1f64..0.9,
    ) {
        let mut cpu = CpuResource::new(1);
        cpu.submit(SimTime::ZERO, Duration::from_millis(demand_ms));
        let total = Duration::from_millis(demand_ms).as_secs_f64();
        let cut = SimTime::from_secs_f64(total * cut_fraction);
        let head = busy_secs(&mut cpu, SimTime::ZERO, cut, 1);
        // The first window is fully busy (the job spans it) ...
        prop_assert!((head - cut.as_secs_f64()).abs() < 1e-9, "head {head}");
        // ... and the remainder — exactly the demand minus the head — is
        // attributed to the rest, not lost and not counted twice.
        let end = SimTime::from_secs_f64(total + 0.001);
        let tail = busy_secs(&mut cpu, cut, end, 1);
        prop_assert!(
            (head + tail - total).abs() < 1e-9,
            "head {head} + tail {tail} != total {total}"
        );
    }
}
