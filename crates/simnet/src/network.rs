//! Network latency model between containers.
//!
//! The case-study application runs on a Docker Swarm where every service sits
//! in its own container on its own VM; requests hop between containers over
//! the cloud provider's network. The model captures per-hop latency as a
//! base latency plus a payload-size-dependent term plus jitter, with
//! colocated containers (same VM) getting a cheaper loopback path.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Parameters of a single network hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed one-way latency in milliseconds.
    pub base_ms: f64,
    /// Additional milliseconds per kilobyte of payload.
    pub per_kb_ms: f64,
    /// Standard deviation of the jitter in milliseconds.
    pub jitter_ms: f64,
}

impl LatencyModel {
    /// A typical intra-zone cloud network hop (~0.5 ms).
    pub fn cloud_internal() -> Self {
        Self {
            base_ms: 0.5,
            per_kb_ms: 0.01,
            jitter_ms: 0.1,
        }
    }

    /// Loopback / same-VM hop (~0.05 ms).
    pub fn loopback() -> Self {
        Self {
            base_ms: 0.05,
            per_kb_ms: 0.001,
            jitter_ms: 0.01,
        }
    }

    /// The latency of one traversal carrying `payload_bytes`, with jitter
    /// drawn from `rng`.
    pub fn sample(&self, payload_bytes: usize, rng: &mut SimRng) -> Duration {
        let kb = payload_bytes as f64 / 1024.0;
        let ms = rng.normal(self.base_ms + self.per_kb_ms * kb, self.jitter_ms);
        Duration::from_secs_f64(ms.max(0.0) / 1_000.0)
    }

    /// The deterministic (jitter-free) latency of one traversal.
    pub fn expected(&self, payload_bytes: usize) -> Duration {
        let kb = payload_bytes as f64 / 1024.0;
        Duration::from_secs_f64((self.base_ms + self.per_kb_ms * kb).max(0.0) / 1_000.0)
    }
}

/// The cluster-wide network model: which latency applies between two
/// containers depending on placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Latency between containers on different VMs.
    pub remote: LatencyModel,
    /// Latency between containers on the same VM.
    pub local: LatencyModel,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self {
            remote: LatencyModel::cloud_internal(),
            local: LatencyModel::loopback(),
        }
    }
}

impl NetworkModel {
    /// Creates a model with the given remote and local hop parameters.
    pub fn new(remote: LatencyModel, local: LatencyModel) -> Self {
        Self { remote, local }
    }

    /// The latency of a hop between two containers.
    pub fn hop(&self, same_vm: bool, payload_bytes: usize, rng: &mut SimRng) -> Duration {
        if same_vm {
            self.local.sample(payload_bytes, rng)
        } else {
            self.remote.sample(payload_bytes, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_latency_grows_with_payload() {
        let model = LatencyModel::cloud_internal();
        let small = model.expected(1_024);
        let large = model.expected(100 * 1_024);
        assert!(large > small);
        assert!(small >= Duration::from_micros(500));
    }

    #[test]
    fn sampled_latency_is_near_expected() {
        let model = LatencyModel::cloud_internal();
        let mut rng = SimRng::seeded(5);
        let n = 2_000;
        let mean_ms = (0..n)
            .map(|_| model.sample(10 * 1024, &mut rng).as_secs_f64() * 1_000.0)
            .sum::<f64>()
            / n as f64;
        let expected_ms = model.expected(10 * 1024).as_secs_f64() * 1_000.0;
        assert!(
            (mean_ms - expected_ms).abs() < 0.1,
            "mean {mean_ms} vs {expected_ms}"
        );
    }

    #[test]
    fn loopback_is_cheaper_than_remote() {
        let network = NetworkModel::default();
        let mut rng = SimRng::seeded(7);
        let local: Duration = (0..500).map(|_| network.hop(true, 1024, &mut rng)).sum();
        let remote: Duration = (0..500).map(|_| network.hop(false, 1024, &mut rng)).sum();
        assert!(local < remote);
    }

    #[test]
    fn custom_model_construction() {
        let model = NetworkModel::new(
            LatencyModel {
                base_ms: 2.0,
                per_kb_ms: 0.0,
                jitter_ms: 0.0,
            },
            LatencyModel::loopback(),
        );
        let mut rng = SimRng::seeded(1);
        let hop = model.hop(false, 0, &mut rng);
        assert!((hop.as_secs_f64() * 1000.0 - 2.0).abs() < 1e-9);
    }
}
