//! Virtual time with microsecond resolution.

use bifrost_metrics::TimestampMs;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, measured in microseconds since the start of the
/// simulation.
///
/// Microsecond resolution keeps sub-millisecond proxy overheads and CPU slices
/// representable while still allowing multi-day experiments within `u64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: Self = Self(0);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000)
    }

    /// Creates a time from fractional seconds (values below zero clamp to 0).
    pub fn from_secs_f64(secs: f64) -> Self {
        Self((secs.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration since an earlier point (zero if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> Self {
        Self(self.0.saturating_add(d.as_micros() as u64))
    }

    /// The later of two times.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Converts to the millisecond timestamps used by the metric store.
    pub fn to_timestamp(self) -> TimestampMs {
        TimestampMs::from_millis(self.as_millis())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_micros() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> Self {
        Self(d.as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimTime::from(Duration::from_millis(2)).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000s");
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        let mut t2 = SimTime::ZERO;
        t2 += Duration::from_secs(2);
        assert_eq!(t2.as_secs_f64(), 2.0);
        assert_eq!(t2 - SimTime::from_secs(1), Duration::from_secs(1));
        assert_eq!(SimTime::from_secs(1) - t2, Duration::ZERO);
        assert_eq!(t2.since(SimTime::from_secs(1)), Duration::from_secs(1));
        assert_eq!(t2.max(SimTime::from_secs(5)), SimTime::from_secs(5));
        assert_eq!(t2.min(SimTime::from_secs(5)), t2);
        assert_eq!(
            SimTime::from_secs(1).saturating_add(Duration::from_secs(1)),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn converts_to_metric_timestamp() {
        assert_eq!(
            SimTime::from_millis(2_500).to_timestamp(),
            TimestampMs::from_millis(2_500)
        );
    }
}
