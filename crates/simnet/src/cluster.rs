//! VMs, containers, and the cluster.
//!
//! Mirrors the deployment model of the paper's evaluation: a Docker Swarm of
//! single-core VMs, one container per service/middleware component, with
//! cAdvisor scraping per-container resource usage into Prometheus. Here a
//! [`Cluster`] owns [`Vm`]s and [`Container`]s, routes compute work to the
//! hosting VM's CPU, and periodically exports utilisation samples into the
//! shared metric store.

use crate::cpu::{CpuResource, WorkReceipt};
use crate::network::NetworkModel;
use crate::rng::SimRng;
use crate::time::SimTime;
use bifrost_metrics::{ResourceCollector, ResourceSample, SharedMetricStore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Identifies a virtual machine of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(u32);

impl VmId {
    /// Creates a VM id from its raw index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// Identifies a container running on some VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(u32);

impl ContainerId {
    /// Creates a container id from its raw index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "container-{}", self.0)
    }
}

/// A virtual machine: a named host with a CPU and a fixed memory capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    id: VmId,
    name: String,
    cpu: CpuResource,
    memory_bytes: u64,
}

impl Vm {
    /// The VM id.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The VM's CPU.
    pub fn cpu(&self) -> &CpuResource {
        &self.cpu
    }

    /// The VM's memory capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }
}

/// What runs inside a container: a display name plus a baseline memory
/// footprint used for the memory series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// The container/application name (used as the `container` label).
    pub name: String,
    /// Baseline resident memory in bytes.
    pub memory_bytes: u64,
}

impl InstanceSpec {
    /// Creates an instance spec with a 64 MiB baseline footprint.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            memory_bytes: 64 * 1024 * 1024,
        }
    }

    /// Overrides the memory footprint (builder style).
    pub fn with_memory_bytes(mut self, memory_bytes: u64) -> Self {
        self.memory_bytes = memory_bytes;
        self
    }
}

/// A container placed on a VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Container {
    id: ContainerId,
    vm: VmId,
    spec: InstanceSpec,
    work_items: u64,
    busy: Duration,
}

impl Container {
    /// The container id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The hosting VM.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The instance spec.
    pub fn spec(&self) -> &InstanceSpec {
        &self.spec
    }

    /// The container name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of work items executed by this container.
    pub fn work_items(&self) -> u64 {
        self.work_items
    }

    /// Total CPU time consumed by this container.
    pub fn busy(&self) -> Duration {
        self.busy
    }
}

/// The simulated cluster.
#[derive(Debug)]
pub struct Cluster {
    vms: BTreeMap<VmId, Vm>,
    containers: BTreeMap<ContainerId, Container>,
    network: NetworkModel,
    rng: SimRng,
    collector: ResourceCollector,
    /// Per-container busy time since the last scrape, used to compute
    /// utilisation attributed to individual containers sharing a VM core.
    busy_since_scrape: BTreeMap<ContainerId, Duration>,
    last_scrape: SimTime,
    next_vm: u32,
    next_container: u32,
}

impl Cluster {
    /// Creates a cluster exporting resource metrics into `store`, with
    /// deterministic randomness derived from `seed`.
    pub fn new(store: SharedMetricStore, seed: u64) -> Self {
        Self {
            vms: BTreeMap::new(),
            containers: BTreeMap::new(),
            network: NetworkModel::default(),
            rng: SimRng::seeded(seed),
            collector: ResourceCollector::new(store),
            busy_since_scrape: BTreeMap::new(),
            last_scrape: SimTime::ZERO,
            next_vm: 0,
            next_container: 0,
        }
    }

    /// Overrides the network model (builder style).
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Adds a VM with the given name, core count, and memory capacity.
    pub fn add_vm(&mut self, name: impl Into<String>, cores: usize, memory_bytes: u64) -> VmId {
        let id = VmId::new(self.next_vm);
        self.next_vm += 1;
        self.vms.insert(
            id,
            Vm {
                id,
                name: name.into(),
                cpu: CpuResource::new(cores),
                memory_bytes,
            },
        );
        id
    }

    /// Adds an `n1-standard-1`-like VM: one core, 3.75 GB memory.
    pub fn add_standard_vm(&mut self, name: impl Into<String>) -> VmId {
        self.add_vm(name, 1, 3_750_000_000)
    }

    /// Places a container on a VM.
    ///
    /// # Panics
    ///
    /// Panics if the VM does not exist (a programming error in deployment
    /// definitions, not a runtime condition).
    pub fn add_container(&mut self, vm: VmId, spec: InstanceSpec) -> ContainerId {
        assert!(self.vms.contains_key(&vm), "unknown VM {vm}");
        let id = ContainerId::new(self.next_container);
        self.next_container += 1;
        self.containers.insert(
            id,
            Container {
                id,
                vm,
                spec,
                work_items: 0,
                busy: Duration::ZERO,
            },
        );
        self.busy_since_scrape.insert(id, Duration::ZERO);
        id
    }

    /// Looks up a VM.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// Looks up a container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// Finds a container by name.
    pub fn container_by_name(&self, name: &str) -> Option<&Container> {
        self.containers.values().find(|c| c.name() == name)
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Number of containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Whether two containers are placed on the same VM.
    pub fn colocated(&self, a: ContainerId, b: ContainerId) -> bool {
        match (self.containers.get(&a), self.containers.get(&b)) {
            (Some(a), Some(b)) => a.vm == b.vm,
            _ => false,
        }
    }

    /// Submits compute work to a container: the work contends for the hosting
    /// VM's CPU with everything else placed there.
    ///
    /// # Panics
    ///
    /// Panics if the container does not exist.
    pub fn execute(
        &mut self,
        container: ContainerId,
        arrival: SimTime,
        demand: Duration,
    ) -> WorkReceipt {
        let entry = self
            .containers
            .get_mut(&container)
            .unwrap_or_else(|| panic!("unknown container {container}"));
        let vm = self.vms.get_mut(&entry.vm).expect("container VM exists");
        let receipt = vm.cpu.submit(arrival, demand);
        entry.work_items += 1;
        entry.busy += demand;
        *self
            .busy_since_scrape
            .get_mut(&container)
            .expect("tracked container") += demand;
        receipt
    }

    /// The network latency for a message of `payload_bytes` between two
    /// containers (loopback if colocated).
    pub fn network_hop(
        &mut self,
        from: ContainerId,
        to: ContainerId,
        payload_bytes: usize,
    ) -> Duration {
        let same_vm = self.colocated(from, to);
        self.network.hop(same_vm, payload_bytes, &mut self.rng)
    }

    /// Mutable access to the deterministic RNG (for workload generators that
    /// want to share the cluster's random stream).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Scrapes per-container CPU utilisation and memory into the metric store
    /// (the cAdvisor role). Utilisation is attributed per container from its
    /// own busy time within the scrape window, relative to one core.
    pub fn scrape_resources(&mut self, now: SimTime) {
        let window = now - self.last_scrape;
        let window_secs = window.as_secs_f64();
        let samples: Vec<ResourceSample> = self
            .containers
            .values()
            .map(|container| {
                let busy = self
                    .busy_since_scrape
                    .get(&container.id)
                    .copied()
                    .unwrap_or(Duration::ZERO);
                let cpu_percent = if window_secs > 0.0 {
                    (busy.as_secs_f64() / window_secs * 100.0).min(100.0)
                } else {
                    0.0
                };
                ResourceSample::new(
                    container.name(),
                    cpu_percent,
                    container.spec.memory_bytes as f64,
                )
            })
            .collect();
        self.collector.scrape_all(now.to_timestamp(), &samples);
        for busy in self.busy_since_scrape.values_mut() {
            *busy = Duration::ZERO;
        }
        self.last_scrape = now;
    }

    /// The metric store resource samples are written to.
    pub fn metric_store(&self) -> &SharedMetricStore {
        self.collector.store()
    }

    /// Average CPU utilisation of the VM hosting `container` from time zero
    /// until `now`.
    pub fn vm_average_utilization(&self, container: ContainerId, now: SimTime) -> f64 {
        self.containers
            .get(&container)
            .and_then(|c| self.vms.get(&c.vm))
            .map(|vm| vm.cpu.average_utilization(now))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_metrics::{Aggregation, RangeQuery};

    fn cluster() -> (Cluster, ContainerId, ContainerId, ContainerId) {
        let store = SharedMetricStore::new();
        let mut cluster = Cluster::new(store, 42);
        let vm1 = cluster.add_standard_vm("vm-engine");
        let vm2 = cluster.add_standard_vm("vm-services");
        let engine = cluster.add_container(vm1, InstanceSpec::new("bifrost-engine"));
        let product = cluster.add_container(vm2, InstanceSpec::new("product"));
        let search = cluster.add_container(vm2, InstanceSpec::new("search"));
        (cluster, engine, product, search)
    }

    #[test]
    fn vm_and_container_bookkeeping() {
        let (cluster, engine, product, search) = cluster();
        assert_eq!(cluster.vm_count(), 2);
        assert_eq!(cluster.container_count(), 3);
        assert_eq!(cluster.container(engine).unwrap().name(), "bifrost-engine");
        assert!(cluster.container_by_name("product").is_some());
        assert!(cluster.container_by_name("nope").is_none());
        assert!(!cluster.colocated(engine, product));
        assert!(cluster.colocated(product, search));
        let vm = cluster.vm(cluster.container(engine).unwrap().vm()).unwrap();
        assert_eq!(vm.cpu().core_count(), 1);
        assert_eq!(vm.memory_bytes(), 3_750_000_000);
        assert!(vm.name().starts_with("vm-"));
    }

    #[test]
    #[should_panic(expected = "unknown VM")]
    fn adding_container_to_unknown_vm_panics() {
        let store = SharedMetricStore::new();
        let mut cluster = Cluster::new(store, 1);
        cluster.add_container(VmId::new(9), InstanceSpec::new("x"));
    }

    #[test]
    fn execute_contends_on_shared_vm() {
        let (mut cluster, _, product, search) = cluster();
        // product and search share a VM with one core: simultaneous work
        // queues.
        let a = cluster.execute(product, SimTime::ZERO, Duration::from_millis(10));
        let b = cluster.execute(search, SimTime::ZERO, Duration::from_millis(10));
        assert_eq!(a.queueing_delay(), Duration::ZERO);
        assert_eq!(b.queueing_delay(), Duration::from_millis(10));
        assert_eq!(cluster.container(product).unwrap().work_items(), 1);
        assert_eq!(
            cluster.container(product).unwrap().busy(),
            Duration::from_millis(10)
        );
    }

    #[test]
    fn colocated_hops_are_cheaper() {
        let (mut cluster, engine, product, search) = cluster();
        let mut remote = Duration::ZERO;
        let mut local = Duration::ZERO;
        for _ in 0..200 {
            remote += cluster.network_hop(engine, product, 1024);
            local += cluster.network_hop(product, search, 1024);
        }
        assert!(local < remote);
    }

    #[test]
    fn scrape_exports_cpu_and_memory_series() {
        let (mut cluster, engine, product, _) = cluster();
        cluster.execute(engine, SimTime::ZERO, Duration::from_millis(500));
        cluster.execute(product, SimTime::ZERO, Duration::from_millis(100));
        cluster.scrape_resources(SimTime::from_secs(1));

        let store = cluster.metric_store().clone();
        let engine_cpu = RangeQuery::new("container_cpu_utilization")
            .with_label("container", "bifrost-engine")
            .aggregate(Aggregation::Last);
        let value = store
            .evaluate(&engine_cpu, SimTime::from_secs(2).to_timestamp())
            .unwrap();
        assert!((value - 50.0).abs() < 1e-9, "{value}");

        // Second scrape window with no work → utilisation drops to zero.
        cluster.scrape_resources(SimTime::from_secs(2));
        let value = store
            .evaluate(&engine_cpu, SimTime::from_secs(3).to_timestamp())
            .unwrap();
        assert_eq!(value, 0.0);
    }

    #[test]
    fn vm_average_utilization_reports_hosting_vm() {
        let (mut cluster, engine, _, _) = cluster();
        cluster.execute(engine, SimTime::ZERO, Duration::from_millis(200));
        let util = cluster.vm_average_utilization(engine, SimTime::from_secs(1));
        assert!((util - 20.0).abs() < 1e-9);
        assert_eq!(
            cluster.vm_average_utilization(ContainerId::new(99), SimTime::from_secs(1)),
            0.0
        );
    }

    #[test]
    fn custom_vm_sizes() {
        let store = SharedMetricStore::new();
        let mut cluster = Cluster::new(store, 3).with_network(NetworkModel::default());
        let big = cluster.add_vm("big", 4, 16_000_000_000);
        assert_eq!(cluster.vm(big).unwrap().cpu().core_count(), 4);
        let c = cluster.add_container(big, InstanceSpec::new("db").with_memory_bytes(1_000));
        assert_eq!(cluster.container(c).unwrap().spec().memory_bytes, 1_000);
        assert!(cluster.rng_mut().uniform() < 1.0);
    }
}
