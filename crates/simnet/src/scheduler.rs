//! A generic discrete-event scheduler.
//!
//! The scheduler is a priority queue of `(SimTime, payload)` entries with a
//! stable tie-break (insertion order), so events scheduled for the same
//! virtual instant are delivered in FIFO order. The engine, the workload
//! generator, and the experiment harnesses instantiate it with their own
//! payload types.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// One scheduled event: when it fires and what it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The virtual time at which the event fires.
    pub at: SimTime,
    /// Monotonically increasing sequence number (FIFO tie-break).
    pub sequence: u64,
    /// The event payload.
    pub payload: E,
}

/// Internal heap entry ordered by (time, sequence) ascending.
struct HeapEntry<E> {
    at: SimTime,
    sequence: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.sequence == other.sequence
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.sequence).cmp(&(other.at, other.sequence))
    }
}

/// A discrete-event scheduler over payloads of type `E`.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    now: SimTime,
    next_sequence: u64,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_sequence: 0,
            processed: 0,
        }
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time (the fire time of the most recently popped
    /// event, or zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a payload at an absolute virtual time. Events scheduled in
    /// the past fire "now" (they are clamped to the current time).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> u64 {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Reverse(HeapEntry {
            at: at.max(self.now),
            sequence,
            payload,
        }));
        sequence
    }

    /// Schedules a payload `delay` after the current time.
    pub fn schedule_after(&mut self, delay: std::time::Duration, payload: E) -> u64 {
        self.schedule_at(self.now + delay, payload)
    }

    /// Pops the next event, advancing the virtual clock to its fire time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|Reverse(entry)| {
            self.now = self.now.max(entry.at);
            self.processed += 1;
            ScheduledEvent {
                at: entry.at,
                sequence: entry.sequence,
                payload: entry.payload,
            }
        })
    }

    /// Pops the next event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        match self.heap.peek() {
            Some(Reverse(entry)) if entry.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// The fire time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| entry.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Advances the clock to `at` without processing events (used to close
    /// out an experiment window after the last event).
    pub fn advance_to(&mut self, at: SimTime) {
        self.now = self.now.max(at);
    }

    /// Drains and returns all events firing at or before `deadline`, in
    /// order.
    pub fn drain_until(&mut self, deadline: SimTime) -> Vec<ScheduledEvent<E>> {
        let mut events = Vec::new();
        while let Some(event) = self.pop_until(deadline) {
            events.push(event);
        }
        self.advance_to(deadline);
        events
    }
}

impl<E> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn events_fire_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), "c");
        s.schedule_at(SimTime::from_secs(1), "a");
        s.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_secs(3));
        assert_eq!(s.processed(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::from_secs(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(10), "later");
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(10));
        s.schedule_at(SimTime::from_secs(1), "stale");
        let event = s.pop().unwrap();
        assert_eq!(event.at, SimTime::from_secs(10));
        // Time never goes backwards.
        assert_eq!(s.now(), SimTime::from_secs(10));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(2), "first");
        s.pop();
        s.schedule_after(Duration::from_secs(3), "second");
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(10), 2);
        assert!(s.pop_until(SimTime::from_secs(5)).is_some());
        assert!(s.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn drain_until_advances_clock_to_deadline() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(2), 2);
        s.schedule_at(SimTime::from_secs(9), 3);
        let drained = s.drain_until(SimTime::from_secs(5));
        assert_eq!(drained.len(), 2);
        assert_eq!(s.now(), SimTime::from_secs(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn debug_output_mentions_pending_count() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), 1);
        assert!(format!("{s:?}").contains("pending"));
    }
}
