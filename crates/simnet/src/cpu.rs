//! CPU contention model.
//!
//! Every container owns a [`CpuResource`] with one or more cores. Work is
//! submitted as `(arrival time, service demand)`; the resource assigns it to
//! the earliest-available core, producing a start time (possibly delayed by
//! queueing) and a completion time. The resource also tracks accumulated
//! busy time so utilisation over arbitrary windows can be reported — this is
//! the mechanism behind Figures 7–10 (engine CPU utilisation and enactment
//! delay as a function of parallel strategies / checks on a single-core VM).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The result of submitting a piece of work to a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkReceipt {
    /// When the work arrived.
    pub arrived: SimTime,
    /// When a core actually started executing it.
    pub started: SimTime,
    /// When it completed.
    pub completed: SimTime,
}

impl WorkReceipt {
    /// Time spent waiting for a free core.
    pub fn queueing_delay(&self) -> Duration {
        self.started - self.arrived
    }

    /// Total latency from arrival to completion.
    pub fn latency(&self) -> Duration {
        self.completed - self.arrived
    }
}

/// A processor with `cores` identical cores executing work in FIFO order per
/// core (work is dispatched to the earliest-available core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuResource {
    /// Earliest time each core becomes idle again.
    cores: Vec<SimTime>,
    /// Total busy time accumulated across all cores.
    busy: Duration,
    /// Execution intervals `(start, end)` not yet fully attributed to a
    /// utilisation sampling window.
    pending_intervals: Vec<(SimTime, SimTime)>,
    /// Time of the last utilisation sample.
    last_sample_at: SimTime,
    /// Number of work items executed.
    executed: u64,
}

impl CpuResource {
    /// Creates a CPU with the given number of cores (minimum 1).
    pub fn new(cores: usize) -> Self {
        Self {
            cores: vec![SimTime::ZERO; cores.max(1)],
            busy: Duration::ZERO,
            pending_intervals: Vec::new(),
            last_sample_at: SimTime::ZERO,
            executed: 0,
        }
    }

    /// A single-core CPU — the `n1-standard-1` instances of the paper's
    /// testbed.
    pub fn single_core() -> Self {
        Self::new(1)
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of work items executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Total busy time accumulated across all cores.
    pub fn total_busy(&self) -> Duration {
        self.busy
    }

    /// Submits work arriving at `arrival` with the given service `demand`.
    /// Returns when the work started and completed.
    pub fn submit(&mut self, arrival: SimTime, demand: Duration) -> WorkReceipt {
        let (idx, earliest) = self
            .cores
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, t)| *t)
            .expect("at least one core");
        let started = earliest.max(arrival);
        let completed = started + demand;
        self.cores[idx] = completed;
        self.busy += demand;
        if !demand.is_zero() {
            self.pending_intervals.push((started, completed));
        }
        self.executed += 1;
        WorkReceipt {
            arrived: arrival,
            started,
            completed,
        }
    }

    /// The earliest time at which a newly arriving item could start.
    pub fn earliest_start(&self, arrival: SimTime) -> SimTime {
        self.cores
            .iter()
            .copied()
            .min()
            .expect("at least one core")
            .max(arrival)
    }

    /// The time at which all queued work is finished.
    pub fn drained_at(&self) -> SimTime {
        self.cores.iter().copied().max().expect("at least one core")
    }

    /// Utilisation in percent of total core capacity since the previous call
    /// to this method, sampled at `now`. The first call measures from time
    /// zero.
    ///
    /// The measurement is based on the *actual execution intervals* of the
    /// submitted work: demand that was submitted earlier but executes inside
    /// the current window (because the core was backlogged) counts towards
    /// this window, and demand still queued at `now` is carried over to later
    /// windows — which is what a cAdvisor-style sampler observes.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        let window_start = self.last_sample_at;
        let window = now - window_start;
        let mut busy_in_window = Duration::ZERO;
        let mut remaining = Vec::new();
        for (start, end) in self.pending_intervals.drain(..) {
            let overlap_start = start.max(window_start);
            let overlap_end = end.min(now);
            if overlap_end > overlap_start {
                busy_in_window += overlap_end - overlap_start;
            }
            if end > now {
                // The tail of this interval belongs to future windows.
                remaining.push((start.max(now), end));
            }
        }
        self.pending_intervals = remaining;
        let utilization = if window.is_zero() {
            0.0
        } else {
            let capacity = window.as_secs_f64() * self.cores.len() as f64;
            (busy_in_window.as_secs_f64() / capacity * 100.0).min(100.0)
        };
        self.last_sample_at = now;
        utilization
    }

    /// Average utilisation from time zero until `now` (ignores sampling
    /// state).
    pub fn average_utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let capacity = elapsed * self.cores.len() as f64;
        (self.busy.as_secs_f64() / capacity * 100.0).min(100.0 * self.cores.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_on_idle_core_starts_immediately() {
        let mut cpu = CpuResource::single_core();
        let r = cpu.submit(SimTime::from_millis(100), Duration::from_millis(20));
        assert_eq!(r.started, SimTime::from_millis(100));
        assert_eq!(r.completed, SimTime::from_millis(120));
        assert_eq!(r.queueing_delay(), Duration::ZERO);
        assert_eq!(r.latency(), Duration::from_millis(20));
        assert_eq!(cpu.executed(), 1);
        assert_eq!(cpu.core_count(), 1);
    }

    #[test]
    fn contention_serialises_work_on_single_core() {
        let mut cpu = CpuResource::single_core();
        // Two items arrive at the same instant; the second must wait.
        let a = cpu.submit(SimTime::ZERO, Duration::from_millis(10));
        let b = cpu.submit(SimTime::ZERO, Duration::from_millis(10));
        assert_eq!(a.queueing_delay(), Duration::ZERO);
        assert_eq!(b.queueing_delay(), Duration::from_millis(10));
        assert_eq!(b.completed, SimTime::from_millis(20));
        assert_eq!(cpu.drained_at(), SimTime::from_millis(20));
        assert_eq!(cpu.total_busy(), Duration::from_millis(20));
    }

    #[test]
    fn multi_core_runs_work_in_parallel() {
        let mut cpu = CpuResource::new(2);
        let a = cpu.submit(SimTime::ZERO, Duration::from_millis(10));
        let b = cpu.submit(SimTime::ZERO, Duration::from_millis(10));
        let c = cpu.submit(SimTime::ZERO, Duration::from_millis(10));
        assert_eq!(a.queueing_delay(), Duration::ZERO);
        assert_eq!(b.queueing_delay(), Duration::ZERO);
        assert_eq!(c.queueing_delay(), Duration::from_millis(10));
        assert_eq!(cpu.earliest_start(SimTime::ZERO), SimTime::from_millis(10));
    }

    #[test]
    fn zero_core_request_clamps_to_one() {
        let cpu = CpuResource::new(0);
        assert_eq!(cpu.core_count(), 1);
    }

    #[test]
    fn utilization_sampling_windows() {
        let mut cpu = CpuResource::single_core();
        // 50 ms of work in a 100 ms window → 50 %.
        cpu.submit(SimTime::ZERO, Duration::from_millis(50));
        let u = cpu.sample_utilization(SimTime::from_millis(100));
        assert!((u - 50.0).abs() < 1e-9, "{u}");
        // Next window has no work → 0 %.
        let u = cpu.sample_utilization(SimTime::from_millis(200));
        assert_eq!(u, 0.0);
        // Saturated window is capped at 100 %.
        for _ in 0..20 {
            cpu.submit(SimTime::from_millis(200), Duration::from_millis(50));
        }
        let u = cpu.sample_utilization(SimTime::from_millis(300));
        assert_eq!(u, 100.0);
    }

    #[test]
    fn average_utilization_over_experiment() {
        let mut cpu = CpuResource::single_core();
        cpu.submit(SimTime::ZERO, Duration::from_millis(250));
        assert!((cpu.average_utilization(SimTime::from_secs(1)) - 25.0).abs() < 1e-9);
        assert_eq!(cpu.average_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn queueing_delay_grows_with_offered_load() {
        // The mechanism behind Figure 8/10: identical work arriving at the
        // same instant on one core queues linearly.
        let mut cpu = CpuResource::single_core();
        let receipts: Vec<WorkReceipt> = (0..100)
            .map(|_| cpu.submit(SimTime::ZERO, Duration::from_millis(5)))
            .collect();
        let delays: Vec<Duration> = receipts.iter().map(|r| r.queueing_delay()).collect();
        assert_eq!(delays[0], Duration::ZERO);
        assert_eq!(delays[99], Duration::from_millis(495));
        // Monotone non-decreasing delay.
        assert!(delays.windows(2).all(|w| w[0] <= w[1]));
    }
}
