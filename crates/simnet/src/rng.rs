//! Deterministic random number generation for the simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A seeded random source used for jitter, traffic sampling, and synthetic
/// workloads. Wrapping [`StdRng`] behind a small facade keeps call sites
/// independent of the `rand` API and makes every experiment reproducible.
pub struct SimRng {
    rng: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed the generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// A uniform draw in `[low, high)` (returns `low` if the range is empty).
    pub fn range(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        self.rng.gen_range(low..high)
    }

    /// A draw from a (clamped-at-zero) normal distribution approximated by
    /// the sum of uniform draws (Irwin–Hall with 12 terms), which avoids an
    /// extra dependency while being close enough for latency jitter.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.uniform()).sum();
        (mean + (sum - 6.0) * std_dev).max(0.0)
    }

    /// An exponentially distributed draw with the given mean (used for
    /// open-loop arrival processes).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.uniform().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A uniform integer draw in `[0, n)` (returns 0 when `n == 0`).
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.rng.gen_range(0..n)
        }
    }
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        assert_eq!(a.seed(), 42);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..20).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 20);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::seeded(7);
        for _ in 0..1_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_respects_bounds_and_degenerates() {
        let mut rng = SimRng::seeded(7);
        for _ in 0..1_000 {
            let v = rng.range(5.0, 10.0);
            assert!((5.0..10.0).contains(&v));
        }
        assert_eq!(rng.range(3.0, 3.0), 3.0);
        assert_eq!(rng.range(9.0, 1.0), 9.0);
    }

    #[test]
    fn normal_is_clamped_and_centred() {
        let mut rng = SimRng::seeded(11);
        let n = 5_000;
        let mean = (0..n).map(|_| rng.normal(20.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
        for _ in 0..100 {
            assert!(rng.normal(0.0, 10.0) >= 0.0);
        }
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = SimRng::seeded(13);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::seeded(17);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.02, "p {p}");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(5.0));
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::seeded(19);
        assert_eq!(rng.index(0), 0);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
