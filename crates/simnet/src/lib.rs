//! # bifrost-simnet
//!
//! A deterministic discrete-event cluster simulator that stands in for the
//! paper's Google Cloud / Docker Swarm testbed. It models:
//!
//! * **virtual time** ([`SimTime`], microsecond resolution),
//! * a generic **event scheduler** ([`Scheduler`]) that the engine and the
//!   workload generator use to interleave timed actions,
//! * **VMs and containers** with a single-core (or multi-core) CPU whose
//!   contention produces queueing delay and utilisation
//!   ([`CpuResource`], [`Vm`], [`Container`]),
//! * a **network latency model** between containers ([`NetworkModel`]), and
//! * a **cluster** tying it all together and exporting cAdvisor-style
//!   resource metrics into a shared metric store ([`Cluster`]).
//!
//! The substitution argument (documented in `DESIGN.md`): the paper's
//! evaluation measures *relative* effects — an extra proxy hop per request,
//! the saturation point of a single-core engine, the enactment delay caused
//! by serialising concurrent check executions on one core. A calibrated
//! discrete-event model of exactly those mechanisms reproduces the shape of
//! the results without cloud access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod cpu;
pub mod network;
pub mod rng;
pub mod scheduler;
pub mod time;

pub use cluster::{Cluster, Container, ContainerId, InstanceSpec, Vm, VmId};
pub use cpu::{CpuResource, WorkReceipt};
pub use network::{LatencyModel, NetworkModel};
pub use rng::SimRng;
pub use scheduler::{ScheduledEvent, Scheduler};
pub use time::SimTime;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cluster::{Cluster, Container, ContainerId, InstanceSpec, Vm, VmId};
    pub use crate::cpu::{CpuResource, WorkReceipt};
    pub use crate::network::{LatencyModel, NetworkModel};
    pub use crate::rng::SimRng;
    pub use crate::scheduler::{ScheduledEvent, Scheduler};
    pub use crate::time::SimTime;
}
