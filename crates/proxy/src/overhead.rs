//! The proxy's per-request processing-cost model.
//!
//! The evaluation attributes a small constant overhead to every request that
//! traverses a Bifrost proxy (~8 ms in the paper's unoptimised Node.js
//! prototype on single-core cloud VMs), with cookie-based routing slightly
//! more expensive than header-based routing, sticky-session bookkeeping
//! adding a lookup, and dark launches multiplying the work by the number of
//! duplicated requests. The model parameters below are calibrated so that
//! the simulated Figure 6 / Table 1 reproduce the paper's shape: ~8 ms
//! canary/rollout overhead, ~4 ms during the A/B phase (load-sharing effect
//! handled by the application model), and a markedly higher dark-launch
//! overhead.

use bifrost_core::routing::RoutingMode;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Processing-cost parameters of a proxy instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Base cost of accepting and forwarding a request (milliseconds).
    pub forward_ms: f64,
    /// Additional cost of cookie parsing + `Set-Cookie` handling
    /// (milliseconds). Header-based routing skips this.
    pub cookie_ms: f64,
    /// Additional cost of a sticky-session table lookup (milliseconds).
    pub sticky_lookup_ms: f64,
    /// Cost of duplicating one request to a shadow version (milliseconds).
    pub shadow_copy_ms: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self::node_prototype()
    }
}

impl OverheadModel {
    /// Parameters calibrated to the paper's Node.js prototype on
    /// `n1-standard-1` instances (≈8 ms per proxied request with cookie
    /// routing, ≈18 ms during full traffic duplication with three shadowed
    /// hops).
    pub fn node_prototype() -> Self {
        Self {
            forward_ms: 5.5,
            cookie_ms: 2.0,
            sticky_lookup_ms: 0.5,
            shadow_copy_ms: 3.2,
        }
    }

    /// Parameters for a hypothetical optimised implementation (used by the
    /// ablation bench comparing routing modes and implementations).
    pub fn optimized() -> Self {
        Self {
            forward_ms: 1.0,
            cookie_ms: 0.4,
            sticky_lookup_ms: 0.1,
            shadow_copy_ms: 0.6,
        }
    }

    /// The CPU demand of handling one request with the given routing mode,
    /// sticky-session requirement, and number of shadow copies.
    pub fn request_cost(&self, mode: RoutingMode, sticky: bool, shadow_copies: usize) -> Duration {
        let mut ms = self.forward_ms;
        if mode == RoutingMode::CookieBased {
            ms += self.cookie_ms;
        }
        if sticky {
            ms += self.sticky_lookup_ms;
        }
        ms += self.shadow_copy_ms * shadow_copies as f64;
        Duration::from_secs_f64(ms / 1_000.0)
    }

    /// The cost of handling a request when no strategy is active (the proxy
    /// only forwards).
    pub fn passthrough_cost(&self) -> Duration {
        Duration::from_secs_f64(self.forward_ms / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookie_routing_costs_more_than_header_routing() {
        let model = OverheadModel::node_prototype();
        let cookie = model.request_cost(RoutingMode::CookieBased, false, 0);
        let header = model.request_cost(RoutingMode::HeaderBased, false, 0);
        assert!(cookie > header);
        assert_eq!(header, Duration::from_secs_f64(5.5 / 1_000.0));
    }

    #[test]
    fn sticky_sessions_add_lookup_cost() {
        let model = OverheadModel::node_prototype();
        let sticky = model.request_cost(RoutingMode::CookieBased, true, 0);
        let plain = model.request_cost(RoutingMode::CookieBased, false, 0);
        assert!(sticky > plain);
    }

    #[test]
    fn shadow_copies_scale_cost_linearly() {
        let model = OverheadModel::node_prototype();
        let none = model.request_cost(RoutingMode::CookieBased, false, 0);
        let one = model.request_cost(RoutingMode::CookieBased, false, 1);
        let three = model.request_cost(RoutingMode::CookieBased, false, 3);
        let per_copy = Duration::from_secs_f64(model.shadow_copy_ms / 1_000.0);
        assert_eq!(one - none, per_copy);
        assert_eq!(three - none, per_copy * 3);
    }

    #[test]
    fn default_is_the_node_prototype_calibration() {
        assert_eq!(OverheadModel::default(), OverheadModel::node_prototype());
        // ~7.5 ms for cookie-routed canary traffic: within the paper's "at or
        // below 8 ms" envelope once the extra network hop is added.
        let cost = OverheadModel::default().request_cost(RoutingMode::CookieBased, false, 0);
        let ms = cost.as_secs_f64() * 1_000.0;
        assert!(ms > 6.0 && ms < 9.0, "{ms}");
    }

    #[test]
    fn optimized_model_is_cheaper_everywhere() {
        let node = OverheadModel::node_prototype();
        let fast = OverheadModel::optimized();
        for (mode, sticky, shadows) in [
            (RoutingMode::CookieBased, false, 0),
            (RoutingMode::CookieBased, true, 2),
            (RoutingMode::HeaderBased, false, 1),
        ] {
            assert!(
                fast.request_cost(mode, sticky, shadows) < node.request_cost(mode, sticky, shadows)
            );
        }
        assert!(fast.passthrough_cost() < node.passthrough_cost());
    }
}
