//! # bifrost-proxy
//!
//! The Bifrost proxy: one lightweight routing component per live-tested
//! service. Proxies intercept incoming requests and, based on the dynamic
//! routing configuration pushed by the engine, decide which service version a
//! request is forwarded to, whether it is additionally duplicated to a
//! shadow (dark-launched) version, and whether the client is pinned to its
//! bucket via a sticky-session cookie.
//!
//! The paper's prototype implements this with `node-http-proxy`; here the
//! proxy is a deterministic routing library whose decisions are applied by
//! the simulated application (see `bifrost-casestudy`) and whose per-request
//! processing cost is accounted for by an explicit [`OverheadModel`], so the
//! end-to-end overhead experiments (Figure 6, Table 1) can be reproduced.
//!
//! ```
//! use bifrost_proxy::prelude::*;
//! use bifrost_core::prelude::*;
//!
//! let service = ServiceId::new(0);
//! let stable = VersionId::new(0);
//! let canary = VersionId::new(1);
//! let split = TrafficSplit::canary(stable, canary, Percentage::new(5.0)?)?;
//! let config = ProxyConfig::new(service, stable)
//!     .with_rule(ProxyRule::split(split, false, UserSelector::All, RoutingMode::CookieBased));
//! let proxy = BifrostProxy::new("search-proxy", config);
//! let decision = proxy.route(&ProxyRequest::from_user(UserId::new(7)));
//! assert!(decision.primary == stable || decision.primary == canary);
//! # Ok::<(), bifrost_core::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod overhead;
pub mod proxy;
pub mod request;
pub mod session;

pub use config::{ProxyConfig, ProxyRule};
pub use overhead::OverheadModel;
pub use proxy::{BifrostProxy, ProxyStats};
pub use request::{ProxyRequest, RoutingDecision, ShadowCopy};
pub use session::{
    SessionShard, SessionStore, SessionToken, TokenGenerator, DEFAULT_SESSION_SHARDS,
    MAX_SESSION_SHARDS,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::{ProxyConfig, ProxyRule};
    pub use crate::overhead::OverheadModel;
    pub use crate::proxy::{BifrostProxy, ProxyStats};
    pub use crate::request::{ProxyRequest, RoutingDecision, ShadowCopy};
    pub use crate::session::{
        SessionShard, SessionStore, SessionToken, TokenGenerator, DEFAULT_SESSION_SHARDS,
        MAX_SESSION_SHARDS,
    };
}
