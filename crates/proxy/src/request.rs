//! Requests as the proxy sees them, and the routing decisions it produces.

use crate::session::SessionToken;
use bifrost_core::ids::{UserId, VersionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Name of the cookie the proxy uses to re-identify clients.
pub const SESSION_COOKIE: &str = "bifrost-session";
/// Name of the header consulted for header-based routing (injected upstream,
/// e.g. by the login/auth service).
pub const GROUP_HEADER: &str = "x-bifrost-group";

/// A request as it arrives at a Bifrost proxy: the (simulated) client's user
/// id, its cookies, and selected headers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProxyRequest {
    /// The authenticated user issuing the request, if known.
    pub user: Option<UserId>,
    /// Cookies sent by the client.
    pub cookies: BTreeMap<String, String>,
    /// Request headers relevant to routing.
    pub headers: BTreeMap<String, String>,
    /// Approximate request payload size in bytes (used by the simulation's
    /// latency model, not by routing).
    pub payload_bytes: usize,
}

impl ProxyRequest {
    /// Creates an empty (anonymous) request.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a request from an authenticated user.
    pub fn from_user(user: UserId) -> Self {
        Self {
            user: Some(user),
            ..Self::default()
        }
    }

    /// Adds the session cookie (builder style).
    pub fn with_session(mut self, token: SessionToken) -> Self {
        self.cookies
            .insert(SESSION_COOKIE.to_string(), token.to_string());
        self
    }

    /// Adds an arbitrary cookie (builder style).
    pub fn with_cookie(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.cookies.insert(name.into(), value.into());
        self
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(name.into(), value.into());
        self
    }

    /// Sets the payload size (builder style).
    pub fn with_payload_bytes(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// The routing-group header value, if present.
    pub fn group_header(&self) -> Option<&str> {
        self.headers.get(GROUP_HEADER).map(String::as_str)
    }

    /// The session token carried by the request, if a valid session cookie is
    /// present.
    pub fn session_token(&self) -> Option<SessionToken> {
        let raw = self.cookies.get(SESSION_COOKIE)?;
        parse_token(raw)
    }
}

/// Parses the canonical UUID rendering produced by
/// [`SessionToken::to_string`] back into a token. Returns `None` for
/// malformed cookies (the proxy then treats the request as new).
fn parse_token(raw: &str) -> Option<SessionToken> {
    let hex: String = raw.chars().filter(|c| *c != '-').collect();
    if hex.len() != 32 {
        return None;
    }
    u128::from_str_radix(&hex, 16)
        .ok()
        .map(SessionToken::from_raw)
}

/// A duplicated ("shadowed") copy of the request produced by a dark-launch
/// route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowCopy {
    /// The version receiving the duplicated traffic.
    pub target: VersionId,
}

/// The outcome of the proxy's per-request decision process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingDecision {
    /// The version serving the client-visible response.
    pub primary: VersionId,
    /// Shadow copies to be sent to dark-launched versions (responses
    /// discarded).
    pub shadows: Vec<ShadowCopy>,
    /// A cookie the proxy sets on the response (`Set-Cookie`), if any.
    pub set_cookie: Option<SessionToken>,
    /// Whether the decision was served from the sticky-session table.
    pub from_sticky_session: bool,
}

impl RoutingDecision {
    /// A decision routing to `primary` with no shadows and no cookie.
    pub fn to(primary: VersionId) -> Self {
        Self {
            primary,
            shadows: Vec::new(),
            set_cookie: None,
            from_sticky_session: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TokenGenerator;

    #[test]
    fn request_builders() {
        let request = ProxyRequest::from_user(UserId::new(4))
            .with_cookie("theme", "dark")
            .with_header(GROUP_HEADER, "B")
            .with_payload_bytes(512);
        assert_eq!(request.user, Some(UserId::new(4)));
        assert_eq!(request.group_header(), Some("B"));
        assert_eq!(request.payload_bytes, 512);
        assert!(request.session_token().is_none());
        assert!(ProxyRequest::new().user.is_none());
    }

    #[test]
    fn session_token_roundtrips_through_cookie() {
        let mut generator = TokenGenerator::seeded(9);
        let token = generator.next_token();
        let request = ProxyRequest::new().with_session(token);
        assert_eq!(request.session_token(), Some(token));
    }

    #[test]
    fn malformed_cookies_are_ignored() {
        let request = ProxyRequest::new().with_cookie(SESSION_COOKIE, "not-a-uuid");
        assert!(request.session_token().is_none());
        let request = ProxyRequest::new().with_cookie(SESSION_COOKIE, "1234");
        assert!(request.session_token().is_none());
    }

    #[test]
    fn decision_constructor() {
        let d = RoutingDecision::to(VersionId::new(3));
        assert_eq!(d.primary, VersionId::new(3));
        assert!(d.shadows.is_empty());
        assert!(d.set_cookie.is_none());
        assert!(!d.from_sticky_session);
    }
}
