//! The per-proxy routing configuration pushed by the engine.
//!
//! Whenever the automaton enters a new state, the engine translates the
//! state's routing rules for each affected service into a [`ProxyConfig`]
//! and pushes it to the service's proxy. The config is versioned so that
//! stale updates can be detected and so experiments can count configuration
//! churn.

use bifrost_core::ids::{ServiceId, VersionId};
use bifrost_core::routing::{DarkLaunchRoute, RoutingMode, TrafficSplit};
use bifrost_core::user::UserSelector;
use serde::{Deserialize, Serialize};

/// One rule of a proxy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProxyRule {
    /// Split live traffic across versions.
    Split {
        /// The traffic split across versions.
        split: TrafficSplit,
        /// Whether clients are pinned to their bucket via sticky sessions.
        sticky: bool,
        /// Which users the split applies to (others stay on the default
        /// version).
        selector: UserSelector,
        /// Cookie- vs header-based routing.
        mode: RoutingMode,
    },
    /// Duplicate a share of the traffic to a shadow version.
    Shadow {
        /// The dark-launch route (source, target, percentage).
        route: DarkLaunchRoute,
    },
}

impl ProxyRule {
    /// Convenience constructor for a split rule.
    pub fn split(
        split: TrafficSplit,
        sticky: bool,
        selector: UserSelector,
        mode: RoutingMode,
    ) -> Self {
        Self::Split {
            split,
            sticky,
            selector,
            mode,
        }
    }

    /// Convenience constructor for a shadow rule.
    pub fn shadow(route: DarkLaunchRoute) -> Self {
        Self::Shadow { route }
    }

    /// Whether this is a shadow (dark launch) rule.
    pub fn is_shadow(&self) -> bool {
        matches!(self, ProxyRule::Shadow { .. })
    }
}

/// The full routing configuration of one proxy at one point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyConfig {
    service: ServiceId,
    default_version: VersionId,
    rules: Vec<ProxyRule>,
    revision: u64,
}

impl ProxyConfig {
    /// Creates a configuration that routes everything to `default_version`
    /// (the behaviour of a proxy with no active strategy — "Bifrost
    /// inactive").
    pub fn new(service: ServiceId, default_version: VersionId) -> Self {
        Self {
            service,
            default_version,
            rules: Vec::new(),
            revision: 0,
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: ProxyRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Sets the revision (builder style); the engine bumps this on every
    /// push.
    pub fn with_revision(mut self, revision: u64) -> Self {
        self.revision = revision;
        self
    }

    /// The service this proxy fronts.
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// The version requests fall back to when no rule applies.
    pub fn default_version(&self) -> VersionId {
        self.default_version
    }

    /// The active rules.
    pub fn rules(&self) -> &[ProxyRule] {
        &self.rules
    }

    /// The configuration revision.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The first split rule, if any (a state installs at most one split per
    /// service).
    pub fn split_rule(&self) -> Option<&ProxyRule> {
        self.rules.iter().find(|r| !r.is_shadow())
    }

    /// All shadow rules.
    pub fn shadow_rules(&self) -> impl Iterator<Item = &ProxyRule> {
        self.rules.iter().filter(|r| r.is_shadow())
    }

    /// Whether any rule requires sticky sessions.
    pub fn requires_sticky_sessions(&self) -> bool {
        self.rules
            .iter()
            .any(|r| matches!(r, ProxyRule::Split { sticky: true, .. }))
    }

    /// Whether the configuration performs any traffic duplication.
    pub fn has_dark_launch(&self) -> bool {
        self.rules.iter().any(ProxyRule::is_shadow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::routing::Percentage;

    fn versions() -> (ServiceId, VersionId, VersionId) {
        (ServiceId::new(0), VersionId::new(0), VersionId::new(1))
    }

    #[test]
    fn inactive_config_routes_to_default() {
        let (service, stable, _) = versions();
        let config = ProxyConfig::new(service, stable);
        assert_eq!(config.service(), service);
        assert_eq!(config.default_version(), stable);
        assert!(config.rules().is_empty());
        assert!(config.split_rule().is_none());
        assert!(!config.requires_sticky_sessions());
        assert!(!config.has_dark_launch());
        assert_eq!(config.revision(), 0);
    }

    #[test]
    fn config_with_split_and_shadow_rules() {
        let (service, stable, canary) = versions();
        let split = TrafficSplit::canary(stable, canary, Percentage::new(5.0).unwrap()).unwrap();
        let config = ProxyConfig::new(service, stable)
            .with_rule(ProxyRule::split(
                split,
                true,
                UserSelector::All,
                RoutingMode::CookieBased,
            ))
            .with_rule(ProxyRule::shadow(DarkLaunchRoute::new(
                stable,
                canary,
                Percentage::full(),
            )))
            .with_revision(3);
        assert_eq!(config.rules().len(), 2);
        assert!(config.split_rule().is_some());
        assert_eq!(config.shadow_rules().count(), 1);
        assert!(config.requires_sticky_sessions());
        assert!(config.has_dark_launch());
        assert_eq!(config.revision(), 3);
    }

    #[test]
    fn rule_kind_predicates() {
        let (_, stable, canary) = versions();
        let shadow = ProxyRule::shadow(DarkLaunchRoute::new(stable, canary, Percentage::full()));
        assert!(shadow.is_shadow());
        let split = ProxyRule::split(
            TrafficSplit::ab(stable, canary).unwrap(),
            false,
            UserSelector::All,
            RoutingMode::HeaderBased,
        );
        assert!(!split.is_shadow());
    }
}
