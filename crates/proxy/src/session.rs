//! Sticky sessions: cookie tokens and the sharded session table.
//!
//! When a proxy uses cookie-based routing with sticky sessions, it sets a
//! UUID cookie on the client's first request and remembers which version the
//! client was bucketed into; subsequent requests carrying the cookie are
//! routed to the same version for the remainder of the state.
//!
//! The binding table is the proxy's hottest shared structure: every routed
//! request under a sticky split performs a lookup, and a proxy fronting a
//! large service holds millions of live bindings. The table is therefore
//! **sharded by token hash** — `N` independently locked
//! ([`parking_lot::Mutex`]) shards, each a `BTreeMap` slice of the key
//! space. Shard assignment is a pure function of the token (a splitmix
//! finalizer over [`SessionToken::raw`], see [`bifrost_core::hash`]), so a
//! token's bindings always live in exactly one shard and batch routing can
//! partition a tick's requests by shard, taking one short lock per touched
//! shard instead of one global lock for the whole batch. Smaller per-shard
//! trees also cut lookup depth, which is what makes sharding win even on a
//! single core once the table holds millions of bindings.

use bifrost_core::hash;
use bifrost_core::ids::VersionId;
use parking_lot::{Mutex, MutexGuard};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An RFC-4122-shaped session token carried in the proxy's cookie.
///
/// Tokens are generated deterministically from a per-proxy counter and seed
/// (a splitmix64 step formatted as a version-4 UUID), which keeps simulated
/// experiments reproducible while preserving the uniqueness property the
/// proxy relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionToken(u128);

impl SessionToken {
    /// Creates a token from its raw 128-bit value.
    pub const fn from_raw(raw: u128) -> Self {
        Self(raw)
    }

    /// The raw 128-bit value.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// A uniform draw in `[0, 1)` derived from the token, used to bucket the
    /// session into a traffic split consistently across requests.
    pub fn bucket_draw(self) -> f64 {
        // Use the low 53 bits for a uniformly distributed double. The top of
        // the token is unusable: [`TokenGenerator::next_token`] stamps the
        // RFC 4122 version nibble (bits 76–79) and variant bits (62–63) to
        // constants, and a draw that includes them is biased.
        let bits = (self.0 as u64) & ((1u64 << 53) - 1);
        bits as f64 / (1u64 << 53) as f64
    }

    /// The token's shard-assignment hash: a full-avalanche mix of the raw
    /// 128 bits. Decorrelated from [`Self::bucket_draw`] (which reads the
    /// low bits unmixed), so shard residency carries no information about
    /// the version a split buckets the session into.
    pub const fn shard_hash(self) -> u64 {
        hash::fold128(self.0)
    }
}

impl fmt::Display for SessionToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render the raw bytes verbatim in the 8-4-4-4-12 grouping so that the
        // cookie value parses back to exactly this token. Generated tokens
        // already carry RFC 4122 version/variant bits (see
        // [`TokenGenerator::next_token`]).
        let bytes = self.0.to_be_bytes();
        for (i, byte) in bytes.iter().enumerate() {
            if matches!(i, 4 | 6 | 8 | 10) {
                write!(f, "-")?;
            }
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

/// Deterministic token generator (one per proxy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenGenerator {
    state: u64,
}

impl TokenGenerator {
    /// Creates a generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produces the next token, stamped with RFC 4122 version-4 and variant
    /// bits so the rendered cookie is a well-formed random UUID.
    pub fn next_token(&mut self) -> SessionToken {
        let a = hash::splitmix64(&mut self.state);
        let b = hash::splitmix64(&mut self.state);
        let mut bytes = (((a as u128) << 64) | b as u128).to_be_bytes();
        bytes[6] = (bytes[6] & 0x0f) | 0x40;
        bytes[8] = (bytes[8] & 0x3f) | 0x80;
        SessionToken(u128::from_be_bytes(bytes))
    }
}

pub use bifrost_core::routing::{DEFAULT_SESSION_SHARDS, MAX_SESSION_SHARDS};

/// One independently locked slice of the sticky-session table: the bindings
/// whose token hashes to this shard, plus this shard's lookup counters.
#[derive(Debug, Default)]
pub struct SessionShard {
    bindings: BTreeMap<SessionToken, VersionId>,
    hits: u64,
    misses: u64,
}

impl SessionShard {
    /// Looks up the version bound to a token, recording a hit or miss.
    pub fn lookup(&mut self, token: SessionToken) -> Option<VersionId> {
        match self.bindings.get(&token) {
            Some(version) => {
                self.hits += 1;
                Some(*version)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Binds a token to a version.
    pub fn bind(&mut self, token: SessionToken, version: VersionId) {
        self.bindings.insert(token, version);
    }

    /// Number of bindings in this shard.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether this shard holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// The sticky-session table of a proxy: token → version, sharded by token
/// hash behind striped locks.
///
/// All methods take `&self`; concurrent callers (and shard-partitioned
/// batches, see [`crate::BifrostProxy::route_many_costed`]) only contend
/// when they touch the same shard. Aggregate accessors ([`Self::len`],
/// [`Self::hits`], …) fold over the shards in index order; every aggregate
/// is a sum, so the result is independent of both shard count and shard
/// iteration order.
#[derive(Debug)]
pub struct SessionStore {
    shards: Vec<Mutex<SessionShard>>,
}

impl Default for SessionStore {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SESSION_SHARDS)
    }
}

impl SessionStore {
    /// Creates an empty store with [`DEFAULT_SESSION_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with `shards` shards (clamped to
    /// `1..=`[`MAX_SESSION_SHARDS`]).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.clamp(1, MAX_SESSION_SHARDS))
                .map(|_| Mutex::default())
                .collect(),
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a token's bindings live in — a pure function of the token
    /// and the shard count, stable across calls.
    pub fn shard_of(&self, token: SessionToken) -> usize {
        (token.shard_hash() % self.shards.len() as u64) as usize
    }

    /// Locks and returns one shard (batch routing partitions its requests
    /// by [`Self::shard_of`] and processes each group under one such lock).
    pub fn shard(&self, index: usize) -> MutexGuard<'_, SessionShard> {
        self.shards[index].lock()
    }

    /// Looks up the version bound to a token, recording a hit or miss in
    /// the token's shard.
    pub fn lookup(&self, token: SessionToken) -> Option<VersionId> {
        self.shard(self.shard_of(token)).lookup(token)
    }

    /// Binds a token to a version.
    pub fn bind(&self, token: SessionToken, version: VersionId) {
        self.shard(self.shard_of(token)).bind(token, version);
    }

    /// Removes every binding (called on state transitions, where assignments
    /// are rebuilt from the new routing configuration). Lookup counters are
    /// retained, matching the pre-sharding behaviour.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().bindings.clear();
        }
    }

    /// Number of bound sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bindings.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().bindings.is_empty())
    }

    /// Number of successful lookups across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hits).sum()
    }

    /// Number of failed lookups across all shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().misses).sum()
    }

    /// Number of sessions currently bound to `version`.
    pub fn sessions_on(&self, version: VersionId) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .bindings
                    .values()
                    .filter(|v| **v == version)
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_deterministic() {
        let mut gen_a = TokenGenerator::seeded(1);
        let mut gen_b = TokenGenerator::seeded(1);
        let a: Vec<SessionToken> = (0..100).map(|_| gen_a.next_token()).collect();
        let b: Vec<SessionToken> = (0..100).map(|_| gen_b.next_token()).collect();
        assert_eq!(a, b);
        let unique: std::collections::BTreeSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn token_renders_as_rfc4122_uuid() {
        let mut generator = TokenGenerator::seeded(7);
        let token = generator.next_token();
        let text = token.to_string();
        assert_eq!(text.len(), 36);
        let parts: Vec<&str> = text.split('-').collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts[0].len(), 8);
        assert_eq!(parts[1].len(), 4);
        assert_eq!(parts[2].len(), 4);
        assert_eq!(parts[3].len(), 4);
        assert_eq!(parts[4].len(), 12);
        // Version nibble is 4.
        assert!(parts[2].starts_with('4'));
        assert_eq!(SessionToken::from_raw(token.raw()), token);
    }

    #[test]
    fn bucket_draw_is_uniform_in_unit_interval() {
        let mut generator = TokenGenerator::seeded(11);
        let n = 10_000;
        let draws: Vec<f64> = (0..n)
            .map(|_| generator.next_token().bucket_draw())
            .collect();
        assert!(draws.iter().all(|d| (0.0..1.0).contains(d)));
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bucket_draw_ignores_the_stamped_version_and_variant_bits() {
        // Two tokens that differ only in the RFC 4122 version/variant bit
        // positions must produce the same draw; two tokens that differ in the
        // low (unstamped) bits must not.
        let base = SessionToken::from_raw(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        let version_bits = SessionToken::from_raw(base.raw() | (0xF_u128 << 76));
        let variant_bits = SessionToken::from_raw(base.raw() | (0x3_u128 << 62));
        assert_eq!(base.bucket_draw(), version_bits.bucket_draw());
        assert_eq!(base.bucket_draw(), variant_bits.bucket_draw());
        let low_bits = SessionToken::from_raw(base.raw() ^ 1);
        assert_ne!(base.bucket_draw(), low_bits.bucket_draw());
    }

    #[test]
    fn session_store_binding_lifecycle() {
        let store = SessionStore::new();
        let mut generator = TokenGenerator::seeded(3);
        let token = generator.next_token();
        let v1 = VersionId::new(1);
        let v2 = VersionId::new(2);

        assert!(store.lookup(token).is_none());
        store.bind(token, v1);
        assert_eq!(store.lookup(token), Some(v1));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.sessions_on(v1), 1);
        assert_eq!(store.sessions_on(v2), 0);

        // Rebinding overwrites.
        store.bind(token, v2);
        assert_eq!(store.lookup(token), Some(v2));

        store.clear();
        assert!(store.is_empty());
        assert!(store.lookup(token).is_none());
    }

    #[test]
    fn shard_assignment_is_stable_and_bounded() {
        let store = SessionStore::with_shards(16);
        assert_eq!(store.shard_count(), 16);
        let mut generator = TokenGenerator::seeded(9);
        for _ in 0..1_000 {
            let token = generator.next_token();
            let shard = store.shard_of(token);
            assert!(shard < 16);
            assert_eq!(shard, store.shard_of(token), "assignment must be stable");
        }
    }

    #[test]
    fn bindings_land_in_their_assigned_shard() {
        let store = SessionStore::with_shards(8);
        let mut generator = TokenGenerator::seeded(5);
        for i in 0..500 {
            let token = generator.next_token();
            store.bind(token, VersionId::new(i % 3));
            let expected = store.shard_of(token);
            for index in 0..store.shard_count() {
                let holds = store.shard(index).bindings.contains_key(&token);
                assert_eq!(holds, index == expected, "token in wrong shard");
            }
        }
        let per_shard: Vec<usize> = (0..8).map(|i| store.shard(i).len()).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), store.len());
        // The hash spreads tokens over all shards.
        assert!(per_shard.iter().all(|&n| n > 0), "shards {per_shard:?}");
    }

    #[test]
    fn degenerate_shard_counts_are_clamped() {
        let store = SessionStore::with_shards(0);
        assert_eq!(store.shard_count(), 1);
        let token = TokenGenerator::seeded(1).next_token();
        assert_eq!(store.shard_of(token), 0);
        // The upper bound keeps a typo'd knob from demanding an absurd
        // allocation.
        let store = SessionStore::with_shards(usize::MAX);
        assert_eq!(store.shard_count(), MAX_SESSION_SHARDS);
    }
}
