//! The Bifrost proxy itself: per-request routing decisions.
//!
//! The decision process mirrors Section 4.2 of the paper:
//!
//! 1. With **header-based routing**, the proxy never decides itself — it
//!    routes on the value of the group header injected upstream (`A`/`B`
//!    select the first/second version of the split; anything else falls back
//!    to the default version).
//! 2. With **cookie-based routing**, the proxy buckets the client itself. If
//!    the request carries a known session cookie and sticky sessions are on,
//!    the stored binding wins. Otherwise the client (or, for anonymous
//!    requests, a fresh token) is hashed into the traffic split, and with
//!    sticky sessions the binding is remembered and a `Set-Cookie` is
//!    emitted.
//! 3. Every applicable dark-launch rule adds a shadow copy of the request
//!    with the configured probability.
//!
//! Routing takes `&self`: the sticky-session table is sharded behind
//! striped locks (see [`crate::session`]) and the statistics counters are
//! striped the same way, so concurrent callers holding read access to the
//! proxy route in parallel and only contend per shard. Batch routing
//! ([`BifrostProxy::route_many_costed`]) partitions each batch by session
//! shard and takes one lock per *touched shard* instead of one global lock
//! per batch — while producing byte-identical decisions, in the original
//! request order, for every shard count.

use crate::config::{ProxyConfig, ProxyRule};
use crate::overhead::OverheadModel;
use crate::request::{ProxyRequest, RoutingDecision, ShadowCopy};
use crate::session::{SessionShard, SessionStore, SessionToken, TokenGenerator};
use bifrost_core::hash;
use bifrost_core::ids::{UserId, VersionId};
use bifrost_core::routing::{DarkLaunchRoute, RoutingMode, TrafficSplit};
use bifrost_core::user::{User, UserSelector};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Counters describing what a proxy has done so far.
///
/// The live counters are striped per session shard; [`BifrostProxy::stats`]
/// merges the stripes with [`ProxyStats::merge`], whose aggregates are sums
/// and `BTreeMap`-keyed tallies — both independent of shard count and shard
/// iteration order, so a 16-shard proxy reports exactly the statistics of a
/// 1-shard proxy over the same traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Total requests routed.
    pub requests: u64,
    /// Requests per version (primary routing only, shadows excluded).
    pub per_version: BTreeMap<VersionId, u64>,
    /// Total shadow copies produced.
    pub shadow_copies: u64,
    /// Number of configuration updates received.
    pub config_updates: u64,
    /// Requests answered from the sticky-session table.
    pub sticky_hits: u64,
}

impl ProxyStats {
    /// Folds one routing decision into the counters — the single
    /// bookkeeping path shared by single-request and batch routing.
    fn tally(&mut self, decision: &RoutingDecision) {
        self.requests += 1;
        self.shadow_copies += decision.shadows.len() as u64;
        *self.per_version.entry(decision.primary).or_insert(0) += 1;
        if decision.from_sticky_session {
            self.sticky_hits += 1;
        }
    }

    /// Folds another stats stripe into this one. Per-version counters
    /// aggregate into the same `BTreeMap` (`VersionId`-ordered) regardless
    /// of the order stripes are merged in.
    pub fn merge(&mut self, other: &ProxyStats) {
        self.requests += other.requests;
        self.shadow_copies += other.shadow_copies;
        self.config_updates += other.config_updates;
        self.sticky_hits += other.sticky_hits;
        for (version, count) in &other.per_version {
            *self.per_version.entry(*version).or_insert(0) += count;
        }
    }
}

/// The split rule of a configuration, pre-resolved for the per-request hot
/// path (no rule scanning, no `TrafficSplit` cloning per request).
#[derive(Debug, Clone)]
struct CompiledSplit {
    split: TrafficSplit,
    /// The split's versions in declaration order (header routing indexes
    /// into this).
    versions: Vec<VersionId>,
    sticky: bool,
    selector: UserSelector,
    mode: RoutingMode,
}

/// A [`ProxyConfig`] compiled once per configuration push, so routing a
/// request — and especially routing a *batch* of requests — performs no
/// per-request config lookups.
#[derive(Debug, Clone)]
struct CompiledRules {
    default_version: VersionId,
    split: Option<CompiledSplit>,
    shadows: Vec<DarkLaunchRoute>,
}

impl CompiledRules {
    fn compile(config: &ProxyConfig) -> Self {
        let split = config.split_rule().and_then(|rule| match rule {
            ProxyRule::Split {
                split,
                sticky,
                selector,
                mode,
            } => Some(CompiledSplit {
                versions: split.versions().collect(),
                split: split.clone(),
                sticky: *sticky,
                selector: selector.clone(),
                mode: *mode,
            }),
            ProxyRule::Shadow { .. } => None,
        });
        let shadows = config
            .shadow_rules()
            .filter_map(|rule| match rule {
                ProxyRule::Shadow { route } => Some(*route),
                ProxyRule::Split { .. } => None,
            })
            .collect();
        Self {
            default_version: config.default_version(),
            split,
            shadows,
        }
    }
}

/// A Bifrost proxy instance fronting one service.
#[derive(Debug)]
pub struct BifrostProxy {
    name: String,
    config: ProxyConfig,
    compiled: CompiledRules,
    sessions: SessionStore,
    tokens: Mutex<TokenGenerator>,
    overhead: OverheadModel,
    /// Routing counters, striped one-to-one with the session shards so the
    /// batch path updates the stripe it already partitioned for.
    stats: Vec<Mutex<ProxyStats>>,
    /// Configuration pushes are serialized through `&mut self`
    /// ([`Self::apply_config`]), so this counter needs no stripe.
    config_updates: u64,
}

impl BifrostProxy {
    /// Creates a proxy with the given initial configuration and the default
    /// session-shard count.
    pub fn new(name: impl Into<String>, config: ProxyConfig) -> Self {
        let name = name.into();
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
        let sessions = SessionStore::new();
        let stats = (0..sessions.shard_count())
            .map(|_| Mutex::default())
            .collect();
        Self {
            name,
            compiled: CompiledRules::compile(&config),
            config,
            sessions,
            tokens: Mutex::new(TokenGenerator::seeded(seed)),
            overhead: OverheadModel::default(),
            stats,
            config_updates: 0,
        }
    }

    /// Overrides the overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Overrides the session-store shard count (builder style). Only valid
    /// before routing starts: the store is rebuilt empty and the statistics
    /// stripes are re-created alongside it.
    pub fn with_session_shards(mut self, shards: usize) -> Self {
        self.sessions = SessionStore::with_shards(shards);
        self.stats = (0..self.sessions.shard_count())
            .map(|_| Mutex::default())
            .collect();
        self
    }

    /// The proxy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The active configuration.
    pub fn config(&self) -> &ProxyConfig {
        &self.config
    }

    /// The routing statistics accumulated so far, merged across the
    /// per-shard stripes (order-independent, see [`ProxyStats::merge`]).
    pub fn stats(&self) -> ProxyStats {
        let mut merged = ProxyStats {
            config_updates: self.config_updates,
            ..ProxyStats::default()
        };
        for stripe in &self.stats {
            merged.merge(&stripe.lock());
        }
        merged
    }

    /// The overhead model in use.
    pub fn overhead(&self) -> &OverheadModel {
        &self.overhead
    }

    /// Applies a new configuration pushed by the engine. Sticky-session
    /// bindings are cleared because the new state defines new buckets.
    pub fn apply_config(&mut self, config: ProxyConfig) {
        self.sessions.clear();
        self.compiled = CompiledRules::compile(&config);
        self.config = config;
        self.config_updates += 1;
    }

    /// Whether any strategy-driven rules are currently installed.
    pub fn is_active(&self) -> bool {
        !self.config.rules().is_empty()
    }

    /// Routes one request and returns the decision.
    pub fn route(&self, request: &ProxyRequest) -> RoutingDecision {
        self.route_user(request, None)
    }

    /// Routes one request with the full user object available for selector
    /// evaluation (e.g. country filters). Without it only percentage/All
    /// selectors can match.
    pub fn route_user(&self, request: &ProxyRequest, user: Option<&User>) -> RoutingDecision {
        let minted = self.mint_if_needed(request, user);
        let shard = self.shard_for(request, minted);
        let decision = {
            let mut guard = self.sessions.shard(shard);
            route_one(&self.compiled, &mut guard, request, user, minted)
        };
        self.stats[shard].lock().tally(&decision);
        decision
    }

    /// Routes one request and returns the decision together with its CPU
    /// cost — one call for callers that apply both (the application
    /// simulation and the traffic pipeline).
    pub fn route_costed(&self, request: &ProxyRequest) -> (RoutingDecision, Duration) {
        let decision = self.route(request);
        let cost = self.processing_cost(&decision);
        (decision, cost)
    }

    /// Routes a batch of requests through the compiled configuration and
    /// returns one `(decision, CPU cost)` pair per request, in order.
    ///
    /// This is the hot path of the request-level traffic simulation, in
    /// three stages:
    ///
    /// 1. a serial pre-pass mints the session tokens the batch will consume
    ///    **in arrival order** (one token-generator lock for the whole
    ///    batch), which keeps decisions byte-identical to one-by-one
    ///    routing and independent of the shard count;
    /// 2. the batch is partitioned by session shard (a pure hash of each
    ///    request's effective token);
    /// 3. each touched shard's group is routed under that shard's lock —
    ///    one session lock and one stats lock per touched shard, never a
    ///    store-wide lock.
    pub fn route_many_costed<'a, I>(&self, requests: I) -> Vec<(RoutingDecision, Duration)>
    where
        I: IntoIterator<Item = &'a ProxyRequest>,
    {
        let requests: Vec<&ProxyRequest> = requests.into_iter().collect();
        // Stage 1: serial token pre-pass in arrival order.
        let mut minted: Vec<Option<SessionToken>> = vec![None; requests.len()];
        if requests
            .iter()
            .any(|request| token_need(&self.compiled, request, None))
        {
            let mut tokens = self.tokens.lock();
            for (slot, request) in minted.iter_mut().zip(&requests) {
                if token_need(&self.compiled, request, None) {
                    *slot = Some(tokens.next_token());
                }
            }
        }
        // Stage 2: partition request indices by session shard — a stable
        // counting sort (one pass to count, one to scatter), so a batch
        // costs three flat allocations instead of one growing vector per
        // shard.
        let shard_count = self.sessions.shard_count();
        let shard_of: Vec<usize> = requests
            .iter()
            .enumerate()
            .map(|(index, request)| self.shard_for(request, minted[index]))
            .collect();
        let mut group_start = vec![0usize; shard_count + 1];
        for &shard in &shard_of {
            group_start[shard + 1] += 1;
        }
        for shard in 0..shard_count {
            group_start[shard + 1] += group_start[shard];
        }
        let mut order = vec![0usize; requests.len()];
        let mut cursor = group_start.clone();
        for (index, &shard) in shard_of.iter().enumerate() {
            order[cursor[shard]] = index;
            cursor[shard] += 1;
        }
        // Stage 3: route each shard's group under its lock, writing results
        // back into arrival order.
        let mut out: Vec<Option<(RoutingDecision, Duration)>> = vec![None; requests.len()];
        for shard in 0..shard_count {
            let members = &order[group_start[shard]..group_start[shard + 1]];
            if members.is_empty() {
                continue;
            }
            let mut stripe = ProxyStats::default();
            {
                let mut guard = self.sessions.shard(shard);
                for &index in members {
                    let decision = route_one(
                        &self.compiled,
                        &mut guard,
                        requests[index],
                        None,
                        minted[index],
                    );
                    stripe.tally(&decision);
                    let cost = self.processing_cost(&decision);
                    out[index] = Some((decision, cost));
                }
            }
            self.stats[shard].lock().merge(&stripe);
        }
        out.into_iter()
            .map(|slot| slot.expect("every request was routed in its shard group"))
            .collect()
    }

    /// The CPU demand of processing one request under the current
    /// configuration, given the routing decision produced for it.
    pub fn processing_cost(&self, decision: &RoutingDecision) -> Duration {
        if !self.is_active() {
            return self.overhead.passthrough_cost();
        }
        let (mode, sticky) = match &self.compiled.split {
            Some(rule) => (rule.mode, rule.sticky),
            None => (RoutingMode::CookieBased, false),
        };
        self.overhead
            .request_cost(mode, sticky, decision.shadows.len())
    }

    /// Read access to the sticky-session table (for tests and dashboards).
    pub fn sessions(&self) -> &SessionStore {
        &self.sessions
    }

    /// Mints the one token this request will consume, if the compiled
    /// configuration makes it consume one (see [`token_need`]).
    fn mint_if_needed(&self, request: &ProxyRequest, user: Option<&User>) -> Option<SessionToken> {
        token_need(&self.compiled, request, user).then(|| self.tokens.lock().next_token())
    }

    /// The shard whose lock covers this request: keyed by the effective
    /// session token (carried or freshly minted); identified users without
    /// any token hash to a stable stripe, and fully identity-less requests
    /// (possible only when no rule touches them) fall back to stripe 0.
    fn shard_for(&self, request: &ProxyRequest, minted: Option<SessionToken>) -> usize {
        match (request.session_token().or(minted), request.user) {
            (Some(token), _) => self.sessions.shard_of(token),
            (None, Some(user)) => {
                (hash::mix64(user.raw()) % self.sessions.shard_count() as u64) as usize
            }
            (None, None) => 0,
        }
    }
}

/// Whether routing `request` under `compiled` consumes one token from the
/// proxy's generator. This mirrors the minting sites in [`route_one`] /
/// [`route_by_cookie`] exactly and depends only on the configuration and
/// the request — never on session-table state (a carried token is never
/// re-minted, bound or not) — so batch routing can pre-mint tokens in
/// arrival order before partitioning by shard.
fn token_need(compiled: &CompiledRules, request: &ProxyRequest, user: Option<&User>) -> bool {
    if request.session_token().is_some() {
        return false;
    }
    if let Some(rule) = &compiled.split {
        let selected = match (user, request.user) {
            (Some(user), _) => rule.selector.selects(user),
            (None, Some(user_id)) => rule.selector.selects(&User::new(user_id)),
            (None, None) => true,
        };
        if selected && rule.mode == RoutingMode::CookieBased {
            return match request.user {
                // Anonymous cookieless client: minted to bucket the split
                // (and reused by the shadow path and `Set-Cookie`).
                None => true,
                // Identified user: minted only to pin the sticky binding.
                Some(_) => rule.sticky,
            };
        }
    }
    // No split, header routing, or an unselected user: only the shadow
    // path mints, and only for requests with no identity at all.
    !compiled.shadows.is_empty() && request.user.is_none()
}

/// Routes one request against a compiled configuration inside the session
/// shard its identity hashes to. Tokens are never generated here — the one
/// token the request may consume is pre-minted by the caller (`minted`), so
/// shard groups can be processed in any order without perturbing the
/// deterministic token sequence.
fn route_one(
    compiled: &CompiledRules,
    shard: &mut SessionShard,
    request: &ProxyRequest,
    user: Option<&User>,
    minted: Option<SessionToken>,
) -> RoutingDecision {
    let mut decision = match &compiled.split {
        None => RoutingDecision::to(compiled.default_version),
        Some(rule) => {
            let selected = match (user, request.user) {
                (Some(user), _) => rule.selector.selects(user),
                (None, Some(user_id)) => rule.selector.selects(&User::new(user_id)),
                (None, None) => true,
            };
            if !selected {
                RoutingDecision::to(compiled.default_version)
            } else {
                match rule.mode {
                    RoutingMode::HeaderBased => route_by_header(compiled, rule, request),
                    RoutingMode::CookieBased => route_by_cookie(rule, shard, request, minted),
                }
            }
        }
    };

    if !compiled.shadows.is_empty() {
        // Percentage-based duplication: one draw per request, hashed from
        // the session/user identity so the same *clients* are consistently
        // duplicated. Anonymous requests reuse the cookie the split path
        // just minted, or consume the pre-minted re-identification cookie
        // here — never a constant draw (a constant 0.0 used to shadow
        // *every* anonymous request regardless of the percentage). The hash
        // is salted differently than the split-bucketing draw: with the
        // same draw for both, "p% of the source's traffic" would silently
        // become "the p% of clients with the lowest bucket draw", which a
        // split correlates with the version assignment.
        // The user id outranks the session cookie here (unlike split
        // bucketing): an identified user keeps one shadow decision whether
        // or not their request carries the sticky cookie minted later.
        let identity = request
            .user
            .map(UserId::raw)
            .or_else(|| request.session_token().map(|token| token.raw() as u64))
            .or_else(|| decision.set_cookie.map(|token| token.raw() as u64));
        let draw = match identity {
            Some(bits) => shadow_draw(bits),
            None => {
                // Cookieless anonymous client under a shadow-only config:
                // set the cookie so return visits keep the same draw.
                let token = minted.expect("token_need pre-mints for identity-less requests");
                decision.set_cookie = Some(token);
                shadow_draw(token.raw() as u64)
            }
        };
        for route in &compiled.shadows {
            // Only traffic actually served by the route's source version is
            // duplicated. (Also matching the default version used to inflate
            // the shadow share: requests split onto *other* versions were
            // duplicated whenever the rule's source was the default.)
            if route.source == decision.primary && draw < route.percentage.fraction() {
                decision.shadows.push(ShadowCopy {
                    target: route.target,
                });
            }
        }
    }
    decision
}

fn route_by_header(
    compiled: &CompiledRules,
    rule: &CompiledSplit,
    request: &ProxyRequest,
) -> RoutingDecision {
    let versions = &rule.versions;
    let target = match request.group_header() {
        Some("A") | Some("a") => versions.first().copied(),
        Some("B") | Some("b") => versions.get(1).copied(),
        Some(other) => other
            .parse::<usize>()
            .ok()
            .and_then(|idx| versions.get(idx).copied()),
        None => None,
    };
    RoutingDecision::to(target.unwrap_or(compiled.default_version))
}

fn route_by_cookie(
    rule: &CompiledSplit,
    shard: &mut SessionShard,
    request: &ProxyRequest,
    minted: Option<SessionToken>,
) -> RoutingDecision {
    // A returning client with a bound session keeps its version.
    if rule.sticky {
        if let Some(token) = request.session_token() {
            if let Some(version) = shard.lookup(token) {
                let mut decision = RoutingDecision::to(version);
                decision.from_sticky_session = true;
                return decision;
            }
        }
    }
    // Otherwise bucket the client: prefer the session token (returning
    // anonymous client), then the user id, then the pre-minted token.
    let (token, draw) = match (request.session_token(), request.user) {
        (Some(token), _) => (Some(token), token.bucket_draw()),
        (None, Some(user)) => (None, user_draw(user)),
        (None, None) => {
            let token = minted.expect("token_need pre-mints for anonymous cookie routing");
            (Some(token), token.bucket_draw())
        }
    };
    let version = rule.split.pick(draw);
    let mut decision = RoutingDecision::to(version);
    if rule.sticky {
        let token =
            token.unwrap_or_else(|| minted.expect("token_need pre-mints for sticky user binding"));
        shard.bind(token, version);
        decision.set_cookie = Some(token);
    } else if request.session_token().is_none() && request.user.is_none() {
        // Non-sticky cookie routing still sets the re-identification
        // cookie so that traffic shares stay consistent per client.
        decision.set_cookie = token;
    }
    decision
}

/// Salt XORed into the identity for the dark-launch draw, decorrelating it
/// from the split-bucketing draw over the same identity.
const SHADOW_DRAW_SALT: u64 = 0x6C62_272E_07BB_0142;

/// Deterministically hashes a user id into `[0, 1)` for bucketing.
fn user_draw(user: UserId) -> f64 {
    hash::mix_unit(user.raw())
}

/// Deterministically hashes an identity into `[0, 1)` for the dark-launch
/// draw. Salted so it is decorrelated from [`user_draw`] /
/// [`SessionToken::bucket_draw`]: the same identity keeps a stable shadow
/// decision across requests, but whether a client is shadowed is
/// independent of which version the split bucketed it into.
fn shadow_draw(identity: u64) -> f64 {
    hash::mix_unit(identity ^ SHADOW_DRAW_SALT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::ids::ServiceId;
    use bifrost_core::routing::{DarkLaunchRoute, Percentage, TrafficSplit};
    use bifrost_core::user::UserSelector;

    fn ids() -> (ServiceId, VersionId, VersionId) {
        (ServiceId::new(0), VersionId::new(0), VersionId::new(1))
    }

    fn canary_config(share: f64, sticky: bool, mode: RoutingMode) -> ProxyConfig {
        let (service, stable, canary) = ids();
        let split = TrafficSplit::canary(stable, canary, Percentage::new(share).unwrap()).unwrap();
        ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
            split,
            sticky,
            UserSelector::All,
            mode,
        ))
    }

    #[test]
    fn inactive_proxy_forwards_to_default() {
        let (service, stable, _) = ids();
        let proxy = BifrostProxy::new("search-proxy", ProxyConfig::new(service, stable));
        assert!(!proxy.is_active());
        let decision = proxy.route(&ProxyRequest::from_user(UserId::new(1)));
        assert_eq!(decision.primary, stable);
        assert!(decision.shadows.is_empty());
        assert_eq!(
            proxy.processing_cost(&decision),
            proxy.overhead().passthrough_cost()
        );
        assert_eq!(proxy.stats().requests, 1);
        assert_eq!(proxy.name(), "search-proxy");
    }

    #[test]
    fn canary_split_approximates_share_over_users() {
        let proxy = BifrostProxy::new("p", canary_config(10.0, false, RoutingMode::CookieBased));
        let n = 20_000;
        let canary_hits = (0..n)
            .map(|i| proxy.route(&ProxyRequest::from_user(UserId::new(i))))
            .filter(|d| d.primary == VersionId::new(1))
            .count();
        let share = canary_hits as f64 / n as f64;
        assert!((share - 0.10).abs() < 0.01, "share {share}");
        assert_eq!(proxy.stats().requests, n);
        assert_eq!(
            proxy.stats().per_version[&VersionId::new(1)] as usize,
            canary_hits
        );
    }

    #[test]
    fn same_user_is_routed_consistently_without_sticky_sessions() {
        // Cookie-based bucketing hashes the user id, so repeated requests by
        // the same user land on the same version even without stickiness.
        let proxy = BifrostProxy::new("p", canary_config(50.0, false, RoutingMode::CookieBased));
        let first = proxy
            .route(&ProxyRequest::from_user(UserId::new(7)))
            .primary;
        for _ in 0..20 {
            assert_eq!(
                proxy
                    .route(&ProxyRequest::from_user(UserId::new(7)))
                    .primary,
                first
            );
        }
    }

    #[test]
    fn sticky_sessions_pin_anonymous_clients_via_cookie() {
        let proxy = BifrostProxy::new("p", canary_config(50.0, true, RoutingMode::CookieBased));
        // First request: anonymous, gets a Set-Cookie.
        let first = proxy.route(&ProxyRequest::new());
        let token = first.set_cookie.expect("cookie must be set");
        // Subsequent requests with the cookie keep the version and hit the
        // session table.
        for _ in 0..10 {
            let followup = proxy.route(&ProxyRequest::new().with_session(token));
            assert_eq!(followup.primary, first.primary);
            assert!(followup.from_sticky_session);
        }
        assert_eq!(proxy.stats().sticky_hits, 10);
        assert_eq!(proxy.sessions().len(), 1);
    }

    #[test]
    fn config_update_clears_sessions_and_counts() {
        let mut proxy = BifrostProxy::new("p", canary_config(50.0, true, RoutingMode::CookieBased));
        let first = proxy.route(&ProxyRequest::new());
        assert_eq!(proxy.sessions().len(), 1);
        proxy.apply_config(canary_config(80.0, true, RoutingMode::CookieBased));
        assert_eq!(proxy.sessions().len(), 0);
        assert_eq!(proxy.stats().config_updates, 1);
        // The old cookie no longer binds.
        let rerouted = proxy.route(&ProxyRequest::new().with_session(first.set_cookie.unwrap()));
        assert!(!rerouted.from_sticky_session);
    }

    #[test]
    fn header_routing_uses_upstream_group_header() {
        let (_, stable, canary) = ids();
        let proxy = BifrostProxy::new("p", canary_config(50.0, false, RoutingMode::HeaderBased));
        let a = proxy.route(&ProxyRequest::new().with_header("x-bifrost-group", "A"));
        let b = proxy.route(&ProxyRequest::new().with_header("x-bifrost-group", "B"));
        let by_index = proxy.route(&ProxyRequest::new().with_header("x-bifrost-group", "1"));
        let missing = proxy.route(&ProxyRequest::new());
        let garbage = proxy.route(&ProxyRequest::new().with_header("x-bifrost-group", "zzz"));
        assert_eq!(a.primary, stable);
        assert_eq!(b.primary, canary);
        assert_eq!(by_index.primary, canary);
        assert_eq!(missing.primary, stable);
        assert_eq!(garbage.primary, stable);
    }

    #[test]
    fn selector_excludes_users_from_the_experiment() {
        let (service, stable, canary) = ids();
        let split = TrafficSplit::canary(stable, canary, Percentage::new(100.0).unwrap()).unwrap();
        let config = ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
            split,
            false,
            UserSelector::attribute("country", "US"),
            RoutingMode::CookieBased,
        ));
        let proxy = BifrostProxy::new("p", config);
        let us_user = User::new(UserId::new(1)).with_attribute("country", "US");
        let eu_user = User::new(UserId::new(2)).with_attribute("country", "EU");
        let us = proxy.route_user(&ProxyRequest::from_user(UserId::new(1)), Some(&us_user));
        let eu = proxy.route_user(&ProxyRequest::from_user(UserId::new(2)), Some(&eu_user));
        assert_eq!(us.primary, canary);
        assert_eq!(eu.primary, stable);
    }

    #[test]
    fn dark_launch_duplicates_all_traffic_at_100_percent() {
        let (service, stable, canary) = ids();
        let config = ProxyConfig::new(service, stable).with_rule(ProxyRule::shadow(
            DarkLaunchRoute::new(stable, canary, Percentage::full()),
        ));
        let proxy = BifrostProxy::new("p", config);
        for i in 0..100 {
            let decision = proxy.route(&ProxyRequest::from_user(UserId::new(i)));
            assert_eq!(decision.primary, stable);
            assert_eq!(decision.shadows, vec![ShadowCopy { target: canary }]);
        }
        assert_eq!(proxy.stats().shadow_copies, 100);
    }

    #[test]
    fn partial_dark_launch_duplicates_roughly_the_configured_share() {
        let (service, stable, canary) = ids();
        let config = ProxyConfig::new(service, stable).with_rule(ProxyRule::shadow(
            DarkLaunchRoute::new(stable, canary, Percentage::new(25.0).unwrap()),
        ));
        let proxy = BifrostProxy::new("p", config);
        let n = 20_000;
        let shadowed = (0..n)
            .map(|i| proxy.route(&ProxyRequest::from_user(UserId::new(i))))
            .filter(|d| !d.shadows.is_empty())
            .count();
        let share = shadowed as f64 / n as f64;
        assert!((share - 0.25).abs() < 0.02, "share {share}");
    }

    #[test]
    fn processing_cost_reflects_mode_and_shadows() {
        let proxy = BifrostProxy::new("p", canary_config(50.0, true, RoutingMode::CookieBased));
        let decision = proxy.route(&ProxyRequest::from_user(UserId::new(3)));
        let base_cost = proxy.processing_cost(&decision);
        assert!(base_cost > proxy.overhead().passthrough_cost());

        let (service, stable, canary) = ids();
        let dark = ProxyConfig::new(service, stable).with_rule(ProxyRule::shadow(
            DarkLaunchRoute::new(stable, canary, Percentage::full()),
        ));
        let dark_proxy =
            BifrostProxy::new("p2", dark).with_overhead(OverheadModel::node_prototype());
        let decision = dark_proxy.route(&ProxyRequest::from_user(UserId::new(3)));
        assert!(dark_proxy.processing_cost(&decision) > base_cost);
    }

    #[test]
    fn shard_count_is_configurable_and_stats_stay_striped() {
        let proxy = BifrostProxy::new("p", canary_config(50.0, true, RoutingMode::CookieBased))
            .with_session_shards(16);
        assert_eq!(proxy.sessions().shard_count(), 16);
        for _ in 0..200 {
            proxy.route(&ProxyRequest::new());
        }
        assert_eq!(proxy.stats().requests, 200);
        assert_eq!(proxy.sessions().len(), 200);
    }
}
