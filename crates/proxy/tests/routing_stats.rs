//! Statistical routing-correctness tests: configured shares must be hit
//! within tolerance at scale, shadow-copy counts must match the dark-launch
//! percentage (including for anonymous requests), and sticky sessions must
//! pin clients for the lifetime of a configuration.

use bifrost_core::ids::{ServiceId, UserId, VersionId};
use bifrost_core::routing::{DarkLaunchRoute, Percentage, RoutingMode, TrafficSplit};
use bifrost_core::user::UserSelector;
use bifrost_proxy::{BifrostProxy, ProxyConfig, ProxyRequest, ProxyRule};
use bifrost_simnet::SimRng;

const N: usize = 20_000;

fn ids() -> (ServiceId, VersionId, VersionId) {
    (ServiceId::new(0), VersionId::new(0), VersionId::new(1))
}

fn split_config(share: f64, sticky: bool, mode: RoutingMode) -> ProxyConfig {
    let (service, stable, canary) = ids();
    let split = TrafficSplit::canary(stable, canary, Percentage::new(share).unwrap()).unwrap();
    ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
        split,
        sticky,
        UserSelector::All,
        mode,
    ))
}

fn shadow_config(percent: f64) -> ProxyConfig {
    let (service, stable, canary) = ids();
    ProxyConfig::new(service, stable).with_rule(ProxyRule::shadow(DarkLaunchRoute::new(
        stable,
        canary,
        Percentage::new(percent).unwrap(),
    )))
}

#[test]
fn pick_hits_configured_shares_across_many_splits() {
    let (_, stable, canary) = ids();
    for share in [5.0, 10.0, 25.0, 50.0, 80.0] {
        let split = TrafficSplit::canary(stable, canary, Percentage::new(share).unwrap()).unwrap();
        let hits = (0..N)
            .map(|i| (i as f64 + 0.5) / N as f64)
            .filter(|&d| split.pick(d) == canary)
            .count();
        let measured = hits as f64 / N as f64;
        assert!(
            (measured - share / 100.0).abs() < 0.001,
            "share {share}%: measured {measured}"
        );
    }
}

#[test]
fn cookie_path_hits_shares_for_identified_users() {
    for share in [10.0, 50.0] {
        let proxy = BifrostProxy::new("p", split_config(share, false, RoutingMode::CookieBased));
        let canary = VersionId::new(1);
        let hits = (0..N)
            .map(|i| proxy.route(&ProxyRequest::from_user(UserId::new(i as u64))))
            .filter(|d| d.primary == canary)
            .count();
        let measured = hits as f64 / N as f64;
        assert!(
            (measured - share / 100.0).abs() < 0.01,
            "share {share}%: measured {measured} over {N} users"
        );
    }
}

#[test]
fn cookie_path_hits_shares_for_anonymous_clients() {
    // Every request is anonymous and cookieless: the proxy buckets each one
    // with a freshly generated token. The fixed bucket_draw (low, unstamped
    // bits) must keep the draw uniform.
    let proxy = BifrostProxy::new("p", split_config(20.0, false, RoutingMode::CookieBased));
    let canary = VersionId::new(1);
    let hits = (0..N)
        .map(|_| proxy.route(&ProxyRequest::new()))
        .filter(|d| d.primary == canary)
        .count();
    let measured = hits as f64 / N as f64;
    assert!(
        (measured - 0.20).abs() < 0.01,
        "anonymous canary share {measured}"
    );
}

#[test]
fn header_path_follows_upstream_group_assignment() {
    // The upstream (e.g. login service) assigns 30% of requests to group B;
    // the proxy must follow the header exactly, so the observed share equals
    // the upstream assignment share.
    let proxy = BifrostProxy::new("p", split_config(50.0, false, RoutingMode::HeaderBased));
    let canary = VersionId::new(1);
    let mut rng = SimRng::seeded(5);
    let mut upstream_b = 0usize;
    let mut routed_b = 0usize;
    for _ in 0..N {
        let group = if rng.chance(0.3) { "B" } else { "A" };
        if group == "B" {
            upstream_b += 1;
        }
        let decision = proxy.route(&ProxyRequest::new().with_header("x-bifrost-group", group));
        if decision.primary == canary {
            routed_b += 1;
        }
    }
    assert_eq!(routed_b, upstream_b, "header routing must be exact");
    let measured = routed_b as f64 / N as f64;
    assert!((measured - 0.3).abs() < 0.01, "upstream share {measured}");
}

#[test]
fn shadow_share_matches_percentage_for_identified_users() {
    for percent in [10.0, 25.0, 75.0] {
        let proxy = BifrostProxy::new("p", shadow_config(percent));
        let shadowed = (0..N)
            .map(|i| proxy.route(&ProxyRequest::from_user(UserId::new(i as u64))))
            .filter(|d| !d.shadows.is_empty())
            .count();
        let measured = shadowed as f64 / N as f64;
        assert!(
            (measured - percent / 100.0).abs() < 0.01,
            "dark launch {percent}%: measured {measured}"
        );
        assert_eq!(proxy.stats().shadow_copies as usize, shadowed);
    }
}

#[test]
fn anonymous_requests_are_not_over_duplicated() {
    // Regression test: anonymous requests used to fall through to a constant
    // draw of 0.0, duplicating *every* request regardless of the configured
    // percentage. The draw now comes from the proxy's seeded token
    // generator, so the share must track the configuration.
    for percent in [5.0, 25.0, 60.0] {
        let proxy = BifrostProxy::new("p", shadow_config(percent));
        let shadowed = (0..N)
            .map(|_| proxy.route(&ProxyRequest::new()))
            .filter(|d| !d.shadows.is_empty())
            .count();
        let measured = shadowed as f64 / N as f64;
        assert!(
            (measured - percent / 100.0).abs() < 0.01,
            "anonymous dark launch {percent}%: measured {measured}"
        );
    }
}

#[test]
fn anonymous_shadow_cohort_is_stable_across_return_visits() {
    // A cookieless anonymous request under a shadow-only config gets a
    // re-identification cookie; presenting it on return visits keeps the
    // client's shadow decision stable (same cohort, not a fresh draw).
    let proxy = BifrostProxy::new("p", shadow_config(30.0));
    for _ in 0..500 {
        let first = proxy.route(&ProxyRequest::new());
        let token = first.set_cookie.expect("shadow-only path sets a cookie");
        let returning = proxy.route(&ProxyRequest::new().with_session(token));
        assert_eq!(first.shadows, returning.shadows);
        assert!(returning.set_cookie.is_none());
    }
}

#[test]
fn identified_users_keep_their_shadow_decision_once_cookied() {
    // With sticky splits a user's later requests carry a session cookie;
    // the shadow draw must still key on the user id so the dark-launch
    // cohort does not churn between the first (cookieless) visit and
    // return visits.
    let (service, stable, canary) = ids();
    let split = TrafficSplit::canary(stable, canary, Percentage::new(0.0).unwrap()).unwrap();
    let config = ProxyConfig::new(service, stable)
        .with_rule(ProxyRule::split(
            split,
            true,
            UserSelector::All,
            RoutingMode::CookieBased,
        ))
        .with_rule(ProxyRule::shadow(DarkLaunchRoute::new(
            stable,
            canary,
            Percentage::new(25.0).unwrap(),
        )));
    let proxy = BifrostProxy::new("p", config);
    for i in 0..2_000 {
        let first = proxy.route(&ProxyRequest::from_user(UserId::new(i)));
        let token = first.set_cookie.expect("sticky split sets a cookie");
        let returning = proxy.route(&ProxyRequest::from_user(UserId::new(i)).with_session(token));
        assert_eq!(first.shadows, returning.shadows, "user {i} changed cohort");
    }
}

#[test]
fn only_source_version_traffic_is_shadowed_under_a_split() {
    // Regression test: a shadow rule whose source is the default version
    // used to also duplicate requests the split routed to *other* versions,
    // inflating the shadow share. With a 60/40 split and a 50% dark launch
    // off the stable (default) version, the expected shadow share is
    // 0.6 × 0.5 = 0.3 — not 0.5.
    let (service, stable, canary) = ids();
    let shadow_target = VersionId::new(7);
    let split = TrafficSplit::canary(stable, canary, Percentage::new(40.0).unwrap()).unwrap();
    let config = ProxyConfig::new(service, stable)
        .with_rule(ProxyRule::split(
            split,
            false,
            UserSelector::All,
            RoutingMode::CookieBased,
        ))
        .with_rule(ProxyRule::shadow(DarkLaunchRoute::new(
            stable,
            shadow_target,
            Percentage::new(50.0).unwrap(),
        )));
    let proxy = BifrostProxy::new("p", config);
    let mut shadowed = 0usize;
    for i in 0..N {
        let decision = proxy.route(&ProxyRequest::from_user(UserId::new(i as u64)));
        if !decision.shadows.is_empty() {
            assert_eq!(
                decision.primary, stable,
                "only source-version traffic may be duplicated"
            );
            shadowed += 1;
        }
    }
    let measured = shadowed as f64 / N as f64;
    assert!(
        (measured - 0.30).abs() < 0.015,
        "shadow share {measured}, expected ≈ 0.30"
    );
}

#[test]
fn sticky_sessions_pin_clients_while_other_traffic_shifts_realized_shares() {
    // Within one state (one configuration), a sticky client must keep its
    // version no matter how much other traffic arrives or how the realized
    // shares drift.
    let proxy = BifrostProxy::new("p", split_config(50.0, true, RoutingMode::CookieBased));
    let clients: Vec<_> = (0..200)
        .map(|_| {
            let first = proxy.route(&ProxyRequest::new());
            (
                first.set_cookie.expect("sticky sets a cookie"),
                first.primary,
            )
        })
        .collect();
    // A burst of unrelated traffic.
    for i in 0..10_000 {
        proxy.route(&ProxyRequest::from_user(UserId::new(1_000 + i)));
    }
    // Every pinned client still lands on its original version, served from
    // the session table.
    for (token, version) in &clients {
        let decision = proxy.route(&ProxyRequest::new().with_session(*token));
        assert_eq!(decision.primary, *version);
        assert!(decision.from_sticky_session);
    }
    assert!(proxy.stats().sticky_hits >= 200);
}

#[test]
fn batch_routing_is_identical_to_serial_routing() {
    // route_many_costed must produce exactly the decisions and costs of the
    // one-by-one path (same proxy name → same token generator sequence).
    let requests: Vec<ProxyRequest> = (0..2_000)
        .map(|i| match i % 3 {
            0 => ProxyRequest::from_user(UserId::new(i as u64)),
            1 => ProxyRequest::new(),
            _ => ProxyRequest::new().with_header("x-bifrost-group", "B"),
        })
        .collect();
    let config = split_config(30.0, true, RoutingMode::CookieBased);
    let serial = BifrostProxy::new("same-seed", config.clone());
    let batched = BifrostProxy::new("same-seed", config);
    let expected: Vec<_> = requests.iter().map(|r| serial.route_costed(r)).collect();
    let actual = batched.route_many_costed(requests.iter());
    assert_eq!(expected, actual);
    assert_eq!(serial.stats(), batched.stats());
}
