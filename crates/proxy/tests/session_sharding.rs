//! Sharded-session-store invariants.
//!
//! * Shard assignment is a **pure function of the token**: stable across
//!   calls, independent of store contents, always in range, and a binding
//!   is **shard-local** (it lives in exactly the assigned shard).
//! * The shard count is a pure scalability knob: a 1-shard proxy and a
//!   16-shard proxy produce byte-identical routing decisions **and**
//!   byte-identical merged [`ProxyStats`] over identical traffic — the
//!   merge must not depend on shard iteration order.

use bifrost_core::ids::{ServiceId, UserId, VersionId};
use bifrost_core::routing::{DarkLaunchRoute, Percentage, RoutingMode, TrafficSplit};
use bifrost_core::user::UserSelector;
use bifrost_proxy::{
    BifrostProxy, ProxyConfig, ProxyRequest, ProxyRule, SessionStore, TokenGenerator,
};
use proptest::prelude::*;

fn ids() -> (ServiceId, VersionId, VersionId) {
    (ServiceId::new(0), VersionId::new(0), VersionId::new(1))
}

/// A sticky canary split plus a dark-launch rule — exercises the session
/// table, the token generator, and the shadow draw at once.
fn mixed_config(share: f64, sticky: bool) -> ProxyConfig {
    let (service, stable, canary) = ids();
    let split = TrafficSplit::canary(stable, canary, Percentage::new(share).unwrap()).unwrap();
    ProxyConfig::new(service, stable)
        .with_rule(ProxyRule::split(
            split,
            sticky,
            UserSelector::All,
            RoutingMode::CookieBased,
        ))
        .with_rule(ProxyRule::shadow(DarkLaunchRoute::new(
            stable,
            canary,
            Percentage::new(25.0).unwrap(),
        )))
}

/// A deterministic mixed request stream: anonymous first-timers, identified
/// users, returning cookie carriers, and header-routed requests.
fn traffic(n: usize) -> Vec<ProxyRequest> {
    let mut cookie_source = TokenGenerator::seeded(99);
    (0..n)
        .map(|i| match i % 5 {
            0 => ProxyRequest::new(),
            1 => ProxyRequest::from_user(UserId::new(i as u64 / 5)),
            2 => ProxyRequest::new().with_session(cookie_source.next_token()),
            3 => ProxyRequest::from_user(UserId::new(i as u64 / 7))
                .with_session(cookie_source.next_token()),
            _ => ProxyRequest::new().with_header("x-bifrost-group", "B"),
        })
        .collect()
}

proptest! {
    /// Shard assignment is a pure function of the token: two stores with
    /// the same shard count agree, repeated calls agree, the index is in
    /// range, and binding state never changes the assignment.
    #[test]
    fn shard_assignment_is_a_pure_function_of_the_token(
        high in 0u64..=u64::MAX,
        low in 0u64..=u64::MAX,
        shards in 1usize..64,
    ) {
        let raw = ((high as u128) << 64) | low as u128;
        let store_a = SessionStore::with_shards(shards);
        let store_b = SessionStore::with_shards(shards);
        let token = bifrost_proxy::SessionToken::from_raw(raw);
        let assigned = store_a.shard_of(token);
        prop_assert!(assigned < shards);
        prop_assert_eq!(assigned, store_a.shard_of(token));
        prop_assert_eq!(assigned, store_b.shard_of(token));
        // Mutating the store does not move the token.
        store_a.bind(token, VersionId::new(1));
        prop_assert_eq!(assigned, store_a.shard_of(token));
    }

    /// A binding is shard-local: after `bind`, exactly the assigned shard
    /// holds it, and per-shard sizes sum to the store size.
    #[test]
    fn bindings_are_shard_local(seed in 0u64..=u64::MAX, shards in 1usize..32) {
        let store = SessionStore::with_shards(shards);
        let mut generator = TokenGenerator::seeded(seed);
        for i in 0..50u64 {
            let token = generator.next_token();
            store.bind(token, VersionId::new(i % 4));
            let assigned = store.shard_of(token);
            for index in 0..store.shard_count() {
                let mut shard = store.shard(index);
                let held = shard.lookup(token).is_some();
                prop_assert_eq!(held, index == assigned);
            }
        }
        let per_shard: usize = (0..store.shard_count()).map(|i| store.shard(i).len()).sum();
        prop_assert_eq!(per_shard, store.len());
    }
}

#[test]
fn one_shard_and_sixteen_shards_route_identically() {
    // Same proxy name → same token generator seed; only the shard count
    // differs. Decisions, costs, and merged stats must match to the byte.
    let requests = traffic(4_000);
    for sticky in [false, true] {
        let coarse =
            BifrostProxy::new("same-seed", mixed_config(30.0, sticky)).with_session_shards(1);
        let sharded =
            BifrostProxy::new("same-seed", mixed_config(30.0, sticky)).with_session_shards(16);
        for request in &requests {
            assert_eq!(coarse.route_costed(request), sharded.route_costed(request));
        }
        assert_eq!(coarse.stats(), sharded.stats(), "sticky={sticky}");
        assert_eq!(coarse.sessions().len(), sharded.sessions().len());
        assert_eq!(coarse.sessions().hits(), sharded.sessions().hits());
        assert_eq!(coarse.sessions().misses(), sharded.sessions().misses());
    }
}

#[test]
fn batch_routing_is_shard_count_invariant_and_matches_serial() {
    let requests = traffic(6_000);
    let serial = BifrostProxy::new("same-seed", mixed_config(40.0, true)).with_session_shards(1);
    let batched_1 = BifrostProxy::new("same-seed", mixed_config(40.0, true)).with_session_shards(1);
    let batched_16 =
        BifrostProxy::new("same-seed", mixed_config(40.0, true)).with_session_shards(16);

    let expected: Vec<_> = requests.iter().map(|r| serial.route_costed(r)).collect();
    // Route in uneven batch slices so groups span batch boundaries.
    let mut out_1 = Vec::new();
    let mut out_16 = Vec::new();
    for chunk in requests.chunks(777) {
        out_1.extend(batched_1.route_many_costed(chunk.iter()));
        out_16.extend(batched_16.route_many_costed(chunk.iter()));
    }
    assert_eq!(expected, out_1);
    assert_eq!(expected, out_16);
    assert_eq!(serial.stats(), batched_1.stats());
    assert_eq!(serial.stats(), batched_16.stats());
}

#[test]
fn merged_stats_are_independent_of_shard_iteration_order() {
    // The per-version counters must aggregate into the same BTreeMap
    // ordering whatever shard tallied them: compare the full Debug
    // rendering (field-by-field, map order included) of the merged stats
    // across shard counts on identical traffic.
    let requests = traffic(5_000);
    let renderings: Vec<String> = [1usize, 3, 16]
        .into_iter()
        .map(|shards| {
            let proxy = BifrostProxy::new("same-seed", mixed_config(25.0, true))
                .with_session_shards(shards);
            proxy.route_many_costed(requests.iter());
            format!("{:?}", proxy.stats())
        })
        .collect();
    assert_eq!(renderings[0], renderings[1]);
    assert_eq!(renderings[0], renderings[2]);
}

#[test]
fn concurrent_routing_over_the_sharded_store_loses_nothing() {
    // Four OS threads hammer one sharded proxy; the merged counters must
    // account for every request exactly once (per-shard striping must not
    // drop or double-count under contention).
    let proxy = BifrostProxy::new("p", mixed_config(50.0, true)).with_session_shards(8);
    let per_thread = 2_000usize;
    let threads = 4;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let proxy = &proxy;
            scope.spawn(move || {
                let mut cookie_source = TokenGenerator::seeded(1_000 + t as u64);
                for i in 0..per_thread {
                    match i % 3 {
                        0 => proxy.route(&ProxyRequest::new()),
                        1 => proxy.route(&ProxyRequest::from_user(UserId::new(
                            (t * per_thread + i) as u64,
                        ))),
                        _ => proxy
                            .route(&ProxyRequest::new().with_session(cookie_source.next_token())),
                    };
                }
            });
        }
    });
    let stats = proxy.stats();
    assert_eq!(stats.requests, (threads * per_thread) as u64);
    assert_eq!(
        stats.per_version.values().sum::<u64>(),
        (threads * per_thread) as u64
    );
}
