//! Figure 6 / Table 1 bench: one compressed end-user overhead run per
//! deployment variant, measured end to end (workload generation, application
//! simulation, engine enactment).

use bifrost_casestudy::{OverheadExperiment, Variant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_overhead_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_table1_end_user_overhead");
    group.sample_size(10);
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let experiment = OverheadExperiment::compressed();
                    let run = experiment.run_variant(variant);
                    criterion::black_box(run.recorder.mean_ms(None))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overhead_variants);
criterion_main!(benches);
