//! Figures 7 & 8 bench: enacting an increasing number of parallel strategies
//! on a single-core engine (CPU utilisation and enactment delay are reported
//! by the `experiments` binary; the bench measures the wall-clock cost of the
//! simulation itself at several sweep points).

use bifrost_bench::fig7_fig8;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_fig8_parallel_strategies");
    group.sample_size(10);
    for strategies in [1usize, 10, 50, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategies),
            &strategies,
            |b, &strategies| {
                b.iter(|| criterion::black_box(fig7_fig8::run_point(strategies)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_strategies);
criterion_main!(benches);
