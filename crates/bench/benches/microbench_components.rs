//! Component micro-benchmarks: the hot paths of the middleware itself
//! (threshold classification, traffic-split picking, proxy routing, metric
//! store queries, DSL parsing, automaton transitions).

use bifrost_core::prelude::*;
use bifrost_metrics::{Aggregation, RangeQuery, Sample, SeriesKey, SharedMetricStore, TimestampMs};
use bifrost_simnet::SimTime;
use criterion::{criterion_group, criterion_main, Criterion};

const DSL_SOURCE: &str = r#"
name: micro
strategy:
  phases:
    - phase: canary
      service: search
      stable: v1
      candidate: v2
      traffic: 5
      duration: 60
      checks:
        - name: errors
          query: request_errors{instance="search:80"}
          interval: 5
          executions: 12
          validator: "<5"
    - phase: rollout
      service: search
      stable: v1
      candidate: v2
      from_traffic: 5
      to_traffic: 100
      step: 5
      step_duration: 10
"#;

fn bench_model_primitives(c: &mut Criterion) {
    let thresholds = Thresholds::new(vec![-5, 0, 3, 4, 10]).unwrap();
    c.bench_function("thresholds_classify", |b| {
        let mut value = -50i64;
        b.iter(|| {
            value = (value + 1) % 50;
            criterion::black_box(thresholds.classify(value))
        });
    });

    let split = TrafficSplit::canary(
        VersionId::new(0),
        VersionId::new(1),
        Percentage::new(5.0).unwrap(),
    )
    .unwrap();
    c.bench_function("traffic_split_pick", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            criterion::black_box(split.pick((i % 1_000) as f64 / 1_000.0))
        });
    });
}

fn bench_metric_store(c: &mut Criterion) {
    let store = SharedMetricStore::new();
    let key = SeriesKey::new("request_errors").with_label("instance", "search:80");
    for t in 0..10_000u64 {
        store.record(
            key.clone(),
            Sample::new(TimestampMs::from_millis(t * 100), (t % 7) as f64),
        );
    }
    let query = RangeQuery::new("request_errors")
        .with_label("instance", "search:80")
        .over_window_secs(60)
        .aggregate(Aggregation::Mean);
    c.bench_function("metric_store_windowed_query", |b| {
        b.iter(|| criterion::black_box(store.evaluate(&query, TimestampMs::from_secs(900))));
    });
}

fn bench_dsl_parse(c: &mut Criterion) {
    c.bench_function("dsl_parse_and_compile", |b| {
        b.iter(|| criterion::black_box(bifrost_dsl::parse_strategy(DSL_SOURCE).unwrap()));
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler_schedule_pop_1000", |b| {
        b.iter(|| {
            let mut scheduler: bifrost_simnet::Scheduler<u64> = bifrost_simnet::Scheduler::new();
            for i in 0..1_000u64 {
                scheduler.schedule_at(SimTime::from_millis((i * 37) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some(event) = scheduler.pop() {
                sum = sum.wrapping_add(event.payload);
            }
            criterion::black_box(sum)
        });
    });
}

criterion_group!(
    benches,
    bench_model_primitives,
    bench_metric_store,
    bench_dsl_parse,
    bench_scheduler
);
criterion_main!(benches);
