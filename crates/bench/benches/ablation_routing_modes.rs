//! Ablation bench: design choices called out in DESIGN.md.
//!
//! * cookie-based vs header-based routing (the paper notes cookie routing is
//!   slower),
//! * sticky vs non-sticky sessions,
//! * the Node.js-calibrated vs an "optimised" proxy overhead model, and
//! * single-core vs multi-core engine (the paper speculates more cores would
//!   reduce enactment delay).

use bifrost_casestudy::{trimmed_strategy, CaseStudyTopology};
use bifrost_core::ids::UserId;
use bifrost_core::prelude::*;
use bifrost_engine::{BifrostEngine, EngineConfig};
use bifrost_metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost_proxy::{BifrostProxy, OverheadModel, ProxyConfig, ProxyRequest, ProxyRule};
use bifrost_simnet::SimTime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn proxy_with(mode: RoutingMode, sticky: bool, overhead: OverheadModel) -> BifrostProxy {
    let service = ServiceId::new(0);
    let stable = VersionId::new(0);
    let canary = VersionId::new(1);
    let split = TrafficSplit::canary(stable, canary, Percentage::new(10.0).unwrap()).unwrap();
    BifrostProxy::new(
        "ablation-proxy",
        ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
            split,
            sticky,
            UserSelector::All,
            mode,
        )),
    )
    .with_overhead(overhead)
}

fn bench_routing_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_proxy_routing");
    for (label, mode, sticky, overhead) in [
        (
            "cookie",
            RoutingMode::CookieBased,
            false,
            OverheadModel::node_prototype(),
        ),
        (
            "cookie_sticky",
            RoutingMode::CookieBased,
            true,
            OverheadModel::node_prototype(),
        ),
        (
            "header",
            RoutingMode::HeaderBased,
            false,
            OverheadModel::node_prototype(),
        ),
        (
            "cookie_optimized",
            RoutingMode::CookieBased,
            false,
            OverheadModel::optimized(),
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let proxy = proxy_with(mode, sticky, overhead);
            let mut user = 0u64;
            b.iter(|| {
                user = user.wrapping_add(1);
                let request = ProxyRequest::from_user(UserId::new(user % 10_000)).with_header(
                    "x-bifrost-group",
                    if user.is_multiple_of(2) { "A" } else { "B" },
                );
                let decision = proxy.route(&request);
                criterion::black_box(proxy.processing_cost(&decision))
            });
        });
    }
    group.finish();
}

fn bench_engine_core_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engine_cores");
    group.sample_size(10);
    for cores in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            b.iter(|| {
                let topology = CaseStudyTopology::new();
                let store = SharedMetricStore::new();
                for t in (0..600).step_by(5) {
                    store.record_value(
                        SeriesKey::new("request_errors").with_label("version", "product-a"),
                        TimestampMs::from_secs(t),
                        0.0,
                    );
                }
                let mut engine = BifrostEngine::new(EngineConfig {
                    cores,
                    ..EngineConfig::default()
                });
                engine.register_store_provider("prometheus", store);
                engine.register_proxy(topology.product_service, topology.product_stable);
                let handles: Vec<_> = (0..40)
                    .map(|_| engine.schedule(trimmed_strategy(&topology), SimTime::ZERO))
                    .collect();
                engine.run_to_completion(SimTime::from_secs(3_600));
                let mean_delay: f64 = handles
                    .iter()
                    .filter_map(|h| engine.report(*h))
                    .filter_map(|r| r.enactment_delay())
                    .map(|d| d.as_secs_f64())
                    .sum::<f64>()
                    / handles.len() as f64;
                criterion::black_box(mean_delay)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing_modes, bench_engine_core_counts);
criterion_main!(benches);
