//! Figures 9 & 10 bench: a single strategy with an increasing number of
//! parallel checks on a single-core engine.

use bifrost_bench::fig9_fig10;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10_parallel_checks");
    group.sample_size(10);
    for checks in [8usize, 160, 800, 1_600] {
        group.bench_with_input(
            BenchmarkId::from_parameter(checks),
            &checks,
            |b, &checks| {
                b.iter(|| criterion::black_box(fig9_fig10::run_point(checks)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_checks);
criterion_main!(benches);
