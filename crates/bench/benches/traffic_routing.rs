//! Wall-clock throughput of the per-request proxy hot path: batch routing
//! (`route_many_costed`, compiled-config) versus the one-by-one
//! `route`/`processing_cost` pair, under the configurations the traffic
//! pipeline exercises (canary split, sticky sessions, dark launch).

use bifrost_core::prelude::*;
use bifrost_proxy::{BifrostProxy, ProxyConfig, ProxyRequest, ProxyRule};
use criterion::{criterion_group, criterion_main, Criterion};

fn requests(n: usize) -> Vec<ProxyRequest> {
    (0..n)
        .map(|i| ProxyRequest::from_user(UserId::new(i as u64)))
        .collect()
}

fn configs() -> Vec<(&'static str, ProxyConfig)> {
    let service = ServiceId::new(0);
    let stable = VersionId::new(0);
    let canary = VersionId::new(1);
    let split = TrafficSplit::canary(stable, canary, Percentage::new(10.0).unwrap()).unwrap();
    vec![
        (
            "canary10",
            ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
                split.clone(),
                false,
                UserSelector::All,
                RoutingMode::CookieBased,
            )),
        ),
        (
            "canary10_sticky",
            ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
                split,
                true,
                UserSelector::All,
                RoutingMode::CookieBased,
            )),
        ),
        (
            "dark25",
            ProxyConfig::new(service, stable).with_rule(ProxyRule::shadow(DarkLaunchRoute::new(
                stable,
                canary,
                Percentage::new(25.0).unwrap(),
            ))),
        ),
    ]
}

fn bench_batch_vs_serial(c: &mut Criterion) {
    let batch = requests(1_000);
    for (name, config) in configs() {
        c.bench_function(format!("route_many_costed/{name}/1k"), |b| {
            let proxy = BifrostProxy::new("bench", config.clone());
            b.iter(|| criterion::black_box(proxy.route_many_costed(batch.iter()).len()));
        });
        c.bench_function(format!("route_serial/{name}/1k"), |b| {
            let proxy = BifrostProxy::new("bench", config.clone());
            b.iter(|| {
                let mut shadows = 0usize;
                for request in &batch {
                    let (decision, _cost) = proxy.route_costed(request);
                    shadows += decision.shadows.len();
                }
                criterion::black_box(shadows)
            });
        });
    }
}

criterion_group!(benches, bench_batch_vs_serial);
criterion_main!(benches);
