//! Figure 6 and Table 1: the end-user overhead experiment.

use bifrost_casestudy::{OverheadExperiment, OverheadRun, Variant};
use bifrost_core::seed::Seed;
use bifrost_metrics::SummaryStats;
use serde::{Deserialize, Serialize};

/// One variant's Figure 6 series plus its per-phase means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Series {
    /// Which variant the series belongs to.
    pub variant: Variant,
    /// The 3-second moving-average `(elapsed seconds, response time ms)`
    /// series.
    pub series: Vec<(f64, f64)>,
    /// Per-phase mean response time in milliseconds.
    pub phase_means: Vec<(String, f64)>,
}

/// One row group of Table 1: the summary statistics of one phase under one
/// variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The release phase.
    pub phase: String,
    /// The deployment variant.
    pub variant: Variant,
    /// mean/min/max/sd/median of response times in milliseconds.
    pub stats: SummaryStats,
}

/// Figure 6: the response-time timeline of all three variants.
pub mod fig6 {
    use super::*;

    /// Runs the experiment (compressed or paper-length) and returns one
    /// series per variant.
    pub fn run(quick: bool) -> Vec<Fig6Series> {
        let experiment = experiment(quick);
        experiment
            .run_all()
            .into_iter()
            .map(|run| to_series(&run))
            .collect()
    }

    /// The seeded variant used by the multi-trial runner: the whole
    /// workload (arrival process, latency jitter) derives from `seed`.
    pub fn run_seeded(quick: bool, seed: Seed) -> Vec<Fig6Series> {
        experiment(quick)
            .with_seed(seed.value())
            .run_all()
            .into_iter()
            .map(|run| to_series(&run))
            .collect()
    }

    /// Converts one run into its Figure 6 series.
    pub fn to_series(run: &OverheadRun) -> Fig6Series {
        let phase_means = run
            .windows
            .iter()
            .filter_map(|w| run.phase_mean(&w.name).map(|m| (w.name.clone(), m)))
            .collect();
        Fig6Series {
            variant: run.variant,
            series: run.moving_average(),
            phase_means,
        }
    }

    pub(super) fn experiment(quick: bool) -> OverheadExperiment {
        if quick {
            OverheadExperiment::compressed()
        } else {
            OverheadExperiment::paper()
        }
    }
}

/// Table 1: per-phase summary statistics for every variant.
pub mod table1 {
    use super::*;

    /// Runs the experiment and returns one row per (phase, variant) pair, in
    /// phase-major order like the paper's table.
    pub fn run(quick: bool) -> Vec<Table1Row> {
        let experiment = fig6::experiment(quick);
        let runs = experiment.run_all();
        rows_from_runs(&runs)
    }

    /// Builds the table rows from already-executed runs.
    pub fn rows_from_runs(runs: &[OverheadRun]) -> Vec<Table1Row> {
        let mut rows = Vec::new();
        let Some(first) = runs.first() else {
            return rows;
        };
        for window in &first.windows {
            for run in runs {
                if let Some(stats) = run
                    .recorder
                    .summary(run.windows.iter().find(|w| w.name == window.name))
                {
                    rows.push(Table1Row {
                        phase: window.name.clone(),
                        variant: run.variant,
                        stats,
                    });
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_and_table1_reproduce_the_papers_shape() {
        let series = fig6::run(true);
        assert_eq!(series.len(), 3);
        let get = |variant: Variant| series.iter().find(|s| s.variant == variant).unwrap();
        let baseline = get(Variant::Baseline);
        let inactive = get(Variant::Inactive);
        let active = get(Variant::Active);
        assert!(!baseline.series.is_empty());

        // Whole-run overhead of deploying Bifrost proxies is single-digit ms.
        let mean =
            |s: &Fig6Series| s.series.iter().map(|(_, v)| *v).sum::<f64>() / s.series.len() as f64;
        let overhead = mean(inactive) - mean(baseline);
        assert!(overhead > 2.0 && overhead < 15.0, "overhead {overhead}");

        // Within the active run, the dark launch is the most expensive phase
        // and the A/B phase is cheaper than the dark launch.
        let phase_mean = |s: &Fig6Series, name: &str| {
            s.phase_means
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, m)| *m)
                .unwrap()
        };
        assert!(phase_mean(active, "Dark Launch") > phase_mean(active, "Canary"));
        assert!(phase_mean(active, "A/B Test") < phase_mean(active, "Dark Launch"));

        // Table 1 has one row per phase and variant, with coherent stats.
        let runs = fig6::experiment(true).run_all();
        let rows = table1::rows_from_runs(&runs);
        assert_eq!(rows.len(), 12);
        for row in &rows {
            assert!(row.stats.min <= row.stats.mean && row.stats.mean <= row.stats.max);
            assert!(row.stats.sd >= 0.0);
        }
        assert!(table1::rows_from_runs(&[]).is_empty());
    }
}
