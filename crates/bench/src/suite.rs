//! Figure-level entry points for the multi-trial runner.
//!
//! Maps a figure name (`fig6`, `fig7`/`fig8`, `fig9`/`fig10`) to a trial
//! function producing labelled measurements, runs it under
//! [`runner::run_trials`], and aggregates the outcomes into a
//! [`BenchReport`]. Both the `experiments` binary and the `bifrost bench`
//! CLI command go through this module, so the JSON they emit is identical.
//!
//! All reported metrics are **lower-is-better** (milliseconds or seconds of
//! latency/delay/overhead), which is what the perf-regression gate assumes.

use crate::engine_experiments::{fig7_fig8, fig9_fig10};
use crate::overhead_experiments::fig6;
use crate::runner::{self, BenchReport, KeyedMeasurements, RunnerConfig};
use crate::traffic_experiments;
use bifrost_casestudy::Variant;
use bifrost_core::seed::Seed;
use std::time::Instant;

/// The figure names the suite understands (aliases included).
pub const FIGURES: &[&str] = &[
    "fig6",
    "fig7",
    "fig8",
    "fig7_fig8",
    "fig9",
    "fig10",
    "fig9_fig10",
    "traffic",
];

/// Runs one figure as a multi-trial experiment. Returns `None` for an
/// unknown figure name. `max` bounds the sweep of the engine-scalability
/// figures (strategy or check count); `requests` sets the request volume of
/// the `traffic` figure; `quick` selects the compressed timeline for the
/// overhead experiment and the smaller defaults everywhere else.
pub fn run_figure(
    figure: &str,
    quick: bool,
    max: Option<usize>,
    requests: Option<usize>,
    config: &RunnerConfig,
) -> Option<BenchReport> {
    let trial: Box<dyn Fn(Seed) -> KeyedMeasurements + Sync> = match figure {
        "fig6" => Box::new(move |seed| fig6_trial(quick, seed)),
        "fig7" | "fig8" | "fig7_fig8" => {
            let max = max.unwrap_or(if quick { 60 } else { 130 });
            Box::new(move |seed| fig7_trial(max, seed))
        }
        "fig9" | "fig10" | "fig9_fig10" => {
            let max = max.unwrap_or(if quick { 400 } else { 1_600 });
            Box::new(move |seed| fig9_trial(max, seed))
        }
        "traffic" => {
            let requests = requests.unwrap_or(if quick { 20_000 } else { 100_000 });
            Box::new(move |seed| traffic_trial(requests, seed))
        }
        _ => return None,
    };
    let started = Instant::now();
    let outcomes = runner::run_trials(config, |trial_config| trial(trial_config.seed()));
    Some(BenchReport::from_keyed_trials(
        figure,
        quick,
        config,
        &outcomes,
        started.elapsed(),
    ))
}

/// One trial of the end-user overhead experiment (Figure 6): per-phase mean
/// response times of the active variant, the whole-run mean, and the proxy
/// overhead (inactive − baseline).
fn fig6_trial(quick: bool, seed: Seed) -> KeyedMeasurements {
    let series = fig6::run_seeded(quick, seed);
    let overall = |variant: Variant| -> Option<f64> {
        let s = series.iter().find(|s| s.variant == variant)?;
        if s.series.is_empty() {
            return None;
        }
        Some(s.series.iter().map(|(_, v)| *v).sum::<f64>() / s.series.len() as f64)
    };
    let mut measurements = Vec::new();
    if let (Some(base), Some(inactive)) = (overall(Variant::Baseline), overall(Variant::Inactive)) {
        measurements.push(("overhead/proxy_ms".to_string(), inactive - base));
    }
    if let Some(active_mean) = overall(Variant::Active) {
        measurements.push(("active/overall_ms".to_string(), active_mean));
    }
    if let Some(active) = series.iter().find(|s| s.variant == Variant::Active) {
        for (phase, mean) in &active.phase_means {
            measurements.push((format!("active/{phase}_ms"), *mean));
        }
    }
    measurements
}

/// One trial of the parallel-strategies experiment (Figures 7–8): the mean
/// enactment delay at every strategy-count step of the paper's sweep.
fn fig7_trial(max: usize, seed: Seed) -> KeyedMeasurements {
    fig7_fig8::paper_steps(max)
        .into_iter()
        .map(|strategies| {
            let point = fig7_fig8::run_point_seeded(strategies, seed);
            (format!("strategies={strategies}"), point.delay_secs.mean)
        })
        .collect()
}

/// One trial of the parallel-checks experiment (Figures 9–10): the
/// enactment delay at every check-count step.
fn fig9_trial(max: usize, seed: Seed) -> KeyedMeasurements {
    fig9_fig10::paper_steps(max)
        .into_iter()
        .map(|checks| {
            let point = fig9_fig10::run_point_seeded(checks, seed);
            (format!("checks={checks}"), point.delay_secs)
        })
        .collect()
}

/// One trial of the request-level traffic experiment: routing accuracy,
/// virtual latency, and per-request proxy CPU cost. All lower-is-better
/// and deterministic per seed.
fn traffic_trial(requests: usize, seed: Seed) -> KeyedMeasurements {
    let point = traffic_experiments::run_point_seeded(requests, seed);
    vec![
        ("latency/mean_ms".to_string(), point.mean_latency_ms),
        ("latency/p95_ms".to_string(), point.p95_latency_ms),
        ("split/abs_error_pct".to_string(), point.split_error_pct),
        ("shadow/abs_error_pct".to_string(), point.shadow_error_pct),
        (
            "proxy/cpu_ms_per_request".to_string(),
            point.proxy_cpu_ms_per_request,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figures_are_rejected() {
        assert!(run_figure("fig99", true, None, None, &RunnerConfig::default()).is_none());
    }

    #[test]
    fn fig9_report_has_stats_per_point() {
        let config = RunnerConfig::default().with_trials(2).with_threads(2);
        let report = run_figure("fig9", true, Some(80), None, &config).unwrap();
        assert_eq!(report.figure, "fig9");
        assert_eq!(report.trials, 2);
        // Steps 8 and 80.
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert_eq!(point.stats.count, 2);
            assert_eq!(point.samples.len(), 2);
            assert!(point.stats.min <= point.stats.p50);
            assert!(point.stats.p50 <= point.stats.p95);
            assert!(point.stats.p95 <= point.stats.max);
        }
        // More checks → more delay, visible in the aggregated means.
        assert!(
            report.points[1].stats.mean >= report.points[0].stats.mean,
            "{report:?}"
        );
    }

    #[test]
    fn traffic_report_has_the_expected_points() {
        let config = RunnerConfig::default().with_trials(2).with_threads(2);
        let report = run_figure("traffic", true, None, Some(5_000), &config).unwrap();
        assert_eq!(report.figure, "traffic");
        for point in [
            "latency/mean_ms",
            "latency/p95_ms",
            "split/abs_error_pct",
            "shadow/abs_error_pct",
            "proxy/cpu_ms_per_request",
        ] {
            let stats = report
                .point(point)
                .unwrap_or_else(|| panic!("missing {point}"));
            assert_eq!(stats.samples.len(), 2);
            assert!(stats.stats.mean.is_finite());
        }
        // Routing accuracy at 5k requests stays within 2 percentage points.
        assert!(report.point("split/abs_error_pct").unwrap().stats.mean < 2.0);
        assert!(report.point("shadow/abs_error_pct").unwrap().stats.mean < 2.0);
    }

    #[test]
    fn fig7_trials_vary_with_seed_but_not_thread_count() {
        let base = RunnerConfig::default()
            .with_trials(3)
            .with_base_seed(Seed::new(11));
        let serial = run_figure("fig7", true, Some(10), None, &base.with_threads(1)).unwrap();
        let parallel = run_figure("fig7", true, Some(10), None, &base.with_threads(3)).unwrap();
        // Identical measurements regardless of parallelism.
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.samples, b.samples);
        }
        // Different trials (seeds) produced at least some spread at the
        // contended point.
        let contended = serial.point("strategies=10").unwrap();
        assert!(contended.stats.max >= contended.stats.min);
    }
}
