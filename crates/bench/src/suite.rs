//! Figure-level entry points for the multi-trial runner.
//!
//! Maps a figure name (`fig6`, `fig7`/`fig8`, `fig9`/`fig10`) to a trial
//! function producing labelled measurements, runs it under
//! [`runner::run_trials`], and aggregates the outcomes into a
//! [`BenchReport`]. Both the `experiments` binary and the `bifrost bench`
//! CLI command go through this module, so the JSON they emit is identical.
//!
//! All reported metrics are **lower-is-better** (milliseconds or seconds of
//! latency/delay/overhead), which is what the perf-regression gate assumes.

use crate::backend_experiments::{self, REPLICA_SWEEP};
use crate::engine_experiments::{fig7_fig8, fig9_fig10};
use crate::overhead_experiments::fig6;
use crate::runner::{self, BenchReport, KeyedMeasurements, RunnerConfig};
use crate::session_experiments::{self, SessionsConfig, SHARD_SWEEP};
use crate::traffic_experiments;
use bifrost_casestudy::Variant;
use bifrost_core::seed::Seed;
use std::time::Instant;

/// The figure names the suite understands (aliases included).
pub const FIGURES: &[&str] = &[
    "fig6",
    "fig7",
    "fig8",
    "fig7_fig8",
    "fig9",
    "fig10",
    "fig9_fig10",
    "traffic",
    "sessions",
    "backends",
];

/// Runs one figure as a multi-trial experiment. Returns `None` for an
/// unknown figure name. `max` bounds the sweep of the engine-scalability
/// figures (strategy or check count) and the live-binding count of the
/// `sessions` figure; `requests` sets the request volume of the `traffic`
/// and `sessions` figures; `quick` selects the compressed timeline for the
/// overhead experiment and the smaller defaults everywhere else.
pub fn run_figure(
    figure: &str,
    quick: bool,
    max: Option<usize>,
    requests: Option<usize>,
    config: &RunnerConfig,
) -> Option<BenchReport> {
    let trial: Box<dyn Fn(Seed) -> KeyedMeasurements + Sync> = match figure {
        "fig6" => Box::new(move |seed| fig6_trial(quick, seed)),
        "fig7" | "fig8" | "fig7_fig8" => {
            let max = max.unwrap_or(if quick { 60 } else { 130 });
            Box::new(move |seed| fig7_trial(max, seed))
        }
        "fig9" | "fig10" | "fig9_fig10" => {
            let max = max.unwrap_or(if quick { 400 } else { 1_600 });
            Box::new(move |seed| fig9_trial(max, seed))
        }
        "traffic" => {
            let requests = requests.unwrap_or(if quick { 20_000 } else { 100_000 });
            Box::new(move |seed| traffic_trial(requests, seed))
        }
        "backends" => {
            let requests = requests.unwrap_or(if quick { 60_000 } else { 150_000 });
            Box::new(move |seed| backends_trial(requests, seed))
        }
        "sessions" => {
            let mut sessions_config = if quick {
                SessionsConfig::quick()
            } else {
                SessionsConfig::full()
            };
            if let Some(requests) = requests {
                sessions_config = sessions_config.with_requests(requests);
            }
            // `--max` bounds this figure's table size: live bindings.
            if let Some(bindings) = max {
                sessions_config = sessions_config.with_bindings(bindings);
            }
            Box::new(move |seed| sessions_trial(&sessions_config, seed))
        }
        _ => return None,
    };
    let started = Instant::now();
    let outcomes = runner::run_trials(config, |trial_config| trial(trial_config.seed()));
    Some(BenchReport::from_keyed_trials(
        figure,
        quick,
        config,
        &outcomes,
        started.elapsed(),
    ))
}

/// One trial of the end-user overhead experiment (Figure 6): per-phase mean
/// response times of the active variant, the whole-run mean, and the proxy
/// overhead (inactive − baseline).
fn fig6_trial(quick: bool, seed: Seed) -> KeyedMeasurements {
    let series = fig6::run_seeded(quick, seed);
    let overall = |variant: Variant| -> Option<f64> {
        let s = series.iter().find(|s| s.variant == variant)?;
        if s.series.is_empty() {
            return None;
        }
        Some(s.series.iter().map(|(_, v)| *v).sum::<f64>() / s.series.len() as f64)
    };
    let mut measurements = Vec::new();
    if let (Some(base), Some(inactive)) = (overall(Variant::Baseline), overall(Variant::Inactive)) {
        measurements.push(("overhead/proxy_ms".to_string(), inactive - base));
    }
    if let Some(active_mean) = overall(Variant::Active) {
        measurements.push(("active/overall_ms".to_string(), active_mean));
    }
    if let Some(active) = series.iter().find(|s| s.variant == Variant::Active) {
        for (phase, mean) in &active.phase_means {
            measurements.push((format!("active/{phase}_ms"), *mean));
        }
    }
    measurements
}

/// One trial of the parallel-strategies experiment (Figures 7–8): the mean
/// enactment delay at every strategy-count step of the paper's sweep.
fn fig7_trial(max: usize, seed: Seed) -> KeyedMeasurements {
    fig7_fig8::paper_steps(max)
        .into_iter()
        .map(|strategies| {
            let point = fig7_fig8::run_point_seeded(strategies, seed);
            (format!("strategies={strategies}"), point.delay_secs.mean)
        })
        .collect()
}

/// One trial of the parallel-checks experiment (Figures 9–10): the
/// enactment delay at every check-count step.
fn fig9_trial(max: usize, seed: Seed) -> KeyedMeasurements {
    fig9_fig10::paper_steps(max)
        .into_iter()
        .map(|checks| {
            let point = fig9_fig10::run_point_seeded(checks, seed);
            (format!("checks={checks}"), point.delay_secs)
        })
        .collect()
}

/// One trial of the request-level traffic experiment: routing accuracy,
/// virtual latency, and per-request proxy CPU cost. All lower-is-better
/// and deterministic per seed.
fn traffic_trial(requests: usize, seed: Seed) -> KeyedMeasurements {
    let point = traffic_experiments::run_point_seeded(requests, seed);
    vec![
        ("latency/mean_ms".to_string(), point.mean_latency_ms),
        ("latency/p95_ms".to_string(), point.p95_latency_ms),
        ("split/abs_error_pct".to_string(), point.split_error_pct),
        ("shadow/abs_error_pct".to_string(), point.shadow_error_pct),
        (
            "proxy/cpu_ms_per_request".to_string(),
            point.proxy_cpu_ms_per_request,
        ),
    ]
}

/// One trial of the queued-backend overload experiment: the canary's worst
/// per-tick p95 latency and shed percentage at every replica count of the
/// sweep, with and without a 20% dark launch feeding the same version. All
/// lower-is-better and deterministic per seed.
fn backends_trial(requests: usize, seed: Seed) -> KeyedMeasurements {
    let mut measurements = Vec::new();
    for &replicas in REPLICA_SWEEP {
        for dark in [false, true] {
            let point = backend_experiments::run_point_seeded(replicas, dark, requests, seed);
            measurements.push((
                backend_experiments::point_label(replicas, dark, "p95_ms"),
                point.p95_ms,
            ));
            measurements.push((
                backend_experiments::point_label(replicas, dark, "shed_pct"),
                point.shed_pct,
            ));
        }
    }
    measurements
}

/// One trial of the sticky-session sharding experiment: wall-clock
/// nanoseconds per routed request at every shard count of the sweep, plus
/// each multi-shard count's time relative to the same trial's 1-shard run.
/// The ratios are the machine-portable points the CI gate pins; the raw
/// `ns_per_request` values are informational. All lower-is-better.
fn sessions_trial(config: &SessionsConfig, seed: Seed) -> KeyedMeasurements {
    let points = session_experiments::run_sweep_seeded(config, seed);
    let baseline_ns = points
        .first()
        .map(|p| p.ns_per_request)
        .filter(|ns| *ns > 0.0);
    let mut measurements = Vec::new();
    for point in &points {
        measurements.push((
            format!("shards={}/ns_per_request", point.shards),
            point.ns_per_request,
        ));
    }
    if let Some(baseline_ns) = baseline_ns {
        for point in points.iter().skip(1) {
            measurements.push((
                format!("shards={}/time_vs_1shard", point.shards),
                point.ns_per_request / baseline_ns,
            ));
        }
    }
    measurements
}

/// The point labels `figure` can emit, across both timelines and the full
/// paper sweeps — the superset that `experiments check-baselines` validates
/// checked-in baseline files against, so a renamed or retired point fails
/// fast in CI instead of silently skipping its gate. Returns `None` for
/// unknown figures.
pub fn point_names(figure: &str) -> Option<Vec<String>> {
    match figure {
        "fig6" => {
            let mut names = vec![
                "overhead/proxy_ms".to_string(),
                "active/overall_ms".to_string(),
            ];
            // The phase windows are static casestudy configuration; both
            // timelines (paper / compressed) use the same names.
            names.extend(
                bifrost_casestudy::PhasePlan::default()
                    .windows()
                    .iter()
                    .map(|window| format!("active/{}_ms", window.name)),
            );
            Some(names)
        }
        "fig7" | "fig8" | "fig7_fig8" => Some(
            fig7_fig8::paper_steps(2_000)
                .into_iter()
                .map(|n| format!("strategies={n}"))
                .collect(),
        ),
        "fig9" | "fig10" | "fig9_fig10" => Some(
            fig9_fig10::paper_steps(16_000)
                .into_iter()
                .map(|n| format!("checks={n}"))
                .collect(),
        ),
        "traffic" => Some(
            [
                "latency/mean_ms",
                "latency/p95_ms",
                "split/abs_error_pct",
                "shadow/abs_error_pct",
                "proxy/cpu_ms_per_request",
            ]
            .into_iter()
            .map(str::to_string)
            .collect(),
        ),
        "sessions" => {
            let mut names: Vec<String> = SHARD_SWEEP
                .iter()
                .map(|n| format!("shards={n}/ns_per_request"))
                .collect();
            names.extend(
                SHARD_SWEEP
                    .iter()
                    .skip(1)
                    .map(|n| format!("shards={n}/time_vs_1shard")),
            );
            Some(names)
        }
        "backends" => Some(
            REPLICA_SWEEP
                .iter()
                .flat_map(|&replicas| {
                    [false, true].into_iter().flat_map(move |dark| {
                        ["p95_ms", "shed_pct"].into_iter().map(move |metric| {
                            backend_experiments::point_label(replicas, dark, metric)
                        })
                    })
                })
                .collect(),
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figures_are_rejected() {
        assert!(run_figure("fig99", true, None, None, &RunnerConfig::default()).is_none());
        assert!(point_names("fig99").is_none());
    }

    #[test]
    fn sessions_report_has_raw_and_relative_points() {
        let config = RunnerConfig::default();
        // Tiny sizing keeps the test fast; the shape is what matters here.
        let report = run_figure("sessions", true, Some(20_000), Some(2_000), &config).unwrap();
        assert_eq!(report.figure, "sessions");
        for point in point_names("sessions").unwrap() {
            let stats = report
                .point(&point)
                .unwrap_or_else(|| panic!("missing {point}"));
            assert!(stats.stats.mean > 0.0, "{point}");
        }
    }

    #[test]
    fn every_known_figure_enumerates_its_points() {
        for figure in FIGURES {
            let names = point_names(figure).unwrap_or_else(|| panic!("no names for {figure}"));
            assert!(!names.is_empty());
        }
        // The enumerations cover what the trials actually emit.
        assert!(point_names("fig7")
            .unwrap()
            .contains(&"strategies=30".to_string()));
        assert!(point_names("fig9")
            .unwrap()
            .contains(&"checks=160".to_string()));
        assert!(point_names("fig6")
            .unwrap()
            .contains(&"active/Canary_ms".to_string()));
        assert!(point_names("sessions")
            .unwrap()
            .contains(&"shards=16/time_vs_1shard".to_string()));
        assert!(point_names("backends")
            .unwrap()
            .contains(&"replicas=2+dark20/shed_pct".to_string()));
        assert_eq!(point_names("backends").unwrap().len(), 12);
    }

    #[test]
    fn backends_report_has_the_expected_points() {
        let config = RunnerConfig::default();
        let report = run_figure("backends", true, None, Some(8_000), &config).unwrap();
        assert_eq!(report.figure, "backends");
        for point in point_names("backends").unwrap() {
            let stats = report
                .point(&point)
                .unwrap_or_else(|| panic!("missing {point}"));
            assert!(stats.stats.mean.is_finite(), "{point}");
        }
        // The undersized canary degrades measurably more than the wide one.
        let thin = report.point("replicas=1/p95_ms").unwrap().stats.mean;
        let wide = report.point("replicas=4/p95_ms").unwrap().stats.mean;
        assert!(thin > wide, "thin {thin} vs wide {wide}");
    }

    #[test]
    fn fig9_report_has_stats_per_point() {
        let config = RunnerConfig::default().with_trials(2).with_threads(2);
        let report = run_figure("fig9", true, Some(80), None, &config).unwrap();
        assert_eq!(report.figure, "fig9");
        assert_eq!(report.trials, 2);
        // Steps 8 and 80.
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert_eq!(point.stats.count, 2);
            assert_eq!(point.samples.len(), 2);
            assert!(point.stats.min <= point.stats.p50);
            assert!(point.stats.p50 <= point.stats.p95);
            assert!(point.stats.p95 <= point.stats.max);
        }
        // More checks → more delay, visible in the aggregated means.
        assert!(
            report.points[1].stats.mean >= report.points[0].stats.mean,
            "{report:?}"
        );
    }

    #[test]
    fn traffic_report_has_the_expected_points() {
        let config = RunnerConfig::default().with_trials(2).with_threads(2);
        let report = run_figure("traffic", true, None, Some(5_000), &config).unwrap();
        assert_eq!(report.figure, "traffic");
        for point in [
            "latency/mean_ms",
            "latency/p95_ms",
            "split/abs_error_pct",
            "shadow/abs_error_pct",
            "proxy/cpu_ms_per_request",
        ] {
            let stats = report
                .point(point)
                .unwrap_or_else(|| panic!("missing {point}"));
            assert_eq!(stats.samples.len(), 2);
            assert!(stats.stats.mean.is_finite());
        }
        // Routing accuracy at 5k requests stays within 2 percentage points.
        assert!(report.point("split/abs_error_pct").unwrap().stats.mean < 2.0);
        assert!(report.point("shadow/abs_error_pct").unwrap().stats.mean < 2.0);
    }

    #[test]
    fn fig7_trials_vary_with_seed_but_not_thread_count() {
        let base = RunnerConfig::default()
            .with_trials(3)
            .with_base_seed(Seed::new(11));
        let serial = run_figure("fig7", true, Some(10), None, &base.with_threads(1)).unwrap();
        let parallel = run_figure("fig7", true, Some(10), None, &base.with_threads(3)).unwrap();
        // Identical measurements regardless of parallelism.
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.samples, b.samples);
        }
        // Different trials (seeds) produced at least some spread at the
        // contended point.
        let contended = serial.point("strategies=10").unwrap();
        assert!(contended.stats.max >= contended.stats.min);
    }
}
