//! The experiment harness binary: regenerates every table and figure of the
//! paper's evaluation section, with optional multi-trial parallel execution
//! and machine-readable JSON reports for CI.
//!
//! ```text
//! experiments fig6     [--quick] [--trials N] [--threads M] [--json [path]]
//! experiments table1   [--quick]
//! experiments fig7 | fig8 [--max N] [--trials N] [--threads M] [--json [path]]
//! experiments fig9 | fig10 [--max N] [--trials N] [--threads M] [--json [path]]
//! experiments all      [--quick] [...]           everything above
//! experiments gate --candidate X.json --baseline Y.json [--threshold 0.2]
//! ```
//!
//! `--quick` runs the compressed timeline (shorter phases, same structure).
//! `--trials N` repeats every experiment N times with deterministic seeds
//! (`base seed + trial index`, override the base with `--base-seed S`) and
//! reports mean/p50/p95/stddev per point; `--threads M` shards the trials
//! over M worker threads without changing any result. `--json` writes the
//! report to `BENCH_<fig>.json` (or the given path). `gate` compares a
//! candidate report against a checked-in baseline and exits non-zero when a
//! point's mean regressed beyond the threshold — the CI perf gate.
//!
//! Everything runs in virtual time, so even the full sweeps finish in
//! seconds to minutes of wall-clock time.

use bifrost_bench::runner::RunnerConfig;
use bifrost_bench::{fig6, fig7_fig8, fig9_fig10, table1};
use bifrost_bench::{report, suite, BenchReport};
use bifrost_core::seed::Seed;

const USAGE: &str = "usage: experiments <fig6|table1|fig7|fig8|fig9|fig10|traffic|sessions|backends|all> \
[--quick] [--max N] [--requests N] [--trials N] [--threads M] [--base-seed S] [--json [path]]\n       \
experiments gate --candidate <report.json> --baseline <baseline.json> [--threshold 0.2]\n       \
experiments list-points <figure>\n       \
experiments check-baselines [dir]      validate every baseline*.json in dir (default crates/bench)\n\n\
--trials and --threads must be at least 1; --threads defaults to the machine's\n\
available parallelism (thread count never changes any result).";

/// Parsed command-line options shared by the figure commands.
struct Options {
    quick: bool,
    max: Option<usize>,
    requests: Option<usize>,
    runner: RunnerConfig,
    /// Whether `--base-seed` was given explicitly (forces the seeded
    /// multi-trial path even for a single trial).
    seeded: bool,
    /// `Some(None)` = `--json` with the default file name,
    /// `Some(Some(path))` = explicit path.
    json: Option<Option<String>>,
}

fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a count flag that must be at least 1 when given: an explicit 0
/// (or garbage) is a usage error, not a silently clamped degenerate run.
fn parse_count(args: &[String], flag: &str) -> Option<usize> {
    let value = value_of(args, flag)?;
    match value.parse::<usize>() {
        Ok(parsed) if parsed >= 1 => Some(parsed),
        _ => {
            eprintln!("{flag} must be a positive integer, got '{value}'\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn parse_options(args: &[String]) -> Options {
    let parse = |flag: &str| value_of(args, flag).and_then(|v| v.parse::<usize>().ok());
    let json = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).filter(|v| !v.starts_with("--")).cloned());
    let base_seed = value_of(args, "--base-seed").and_then(|v| v.parse::<u64>().ok());
    let trials = parse_count(args, "--trials").unwrap_or(1);
    // Trials are seed-deterministic and independent, so the only sensible
    // default is to use the machine (run_trials caps workers at the trial
    // count, so single-trial runs stay serial).
    let threads = parse_count(args, "--threads").unwrap_or_else(RunnerConfig::auto_threads);
    Options {
        quick: args.iter().any(|a| a == "--quick"),
        max: parse("--max"),
        requests: parse("--requests"),
        runner: RunnerConfig::default()
            .with_trials(trials)
            .with_threads(threads)
            .with_base_seed(base_seed.map(Seed::new).unwrap_or_default()),
        seeded: base_seed.is_some(),
        json,
    }
}

/// Runs one figure through the multi-trial suite, prints its table, and
/// writes the JSON report when requested. Exits the process on I/O errors.
fn run_suite_figure(figure: &str, options: &Options) {
    let report = suite::run_figure(
        figure,
        options.quick,
        options.max,
        options.requests,
        &options.runner,
    )
    .unwrap_or_else(|| {
        eprintln!("unknown figure '{figure}'");
        std::process::exit(2);
    });
    print!("{}", report::render_bench_report(&report));
    if let Some(path) = &options.json {
        let path = path
            .clone()
            .unwrap_or_else(|| BenchReport::file_name(figure));
        if let Err(error) = std::fs::write(&path, report.render_json()) {
            eprintln!("cannot write '{path}': {error}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
}

/// The single-trial legacy renderings (no --trials flag): exactly the
/// paper-shaped text tables.
fn run_single_trial(command: &str, options: &Options) {
    match command {
        "fig6" => {
            let series = fig6::run(options.quick);
            print!("{}", report::render_fig6(&series));
            print!("{}", report::render_expectations(&series));
        }
        "fig7" | "fig8" | "fig7_fig8" => {
            let max = options.max.unwrap_or(if options.quick { 60 } else { 130 });
            let points = fig7_fig8::run(max);
            print!("{}", report::render_fig7_fig8(&points));
        }
        "fig9" | "fig10" | "fig9_fig10" => {
            let max = options
                .max
                .unwrap_or(if options.quick { 400 } else { 1_600 });
            let points = fig9_fig10::run(max);
            print!("{}", report::render_fig9_fig10(&points));
        }
        _ => unreachable!("caller dispatches only figure commands"),
    }
}

fn run_figure_command(command: &str, options: &Options) {
    // Multi-trial mode, an explicit JSON request, or an explicit seed goes
    // through the suite; the bare single-trial invocation keeps the
    // original paper-shaped output. The traffic, sessions, and backends
    // figures are suite-only (they have no paper-shaped legacy table).
    if matches!(command, "traffic" | "sessions" | "backends")
        || options.runner.trials > 1
        || options.json.is_some()
        || options.seeded
    {
        run_suite_figure(command, options);
    } else {
        run_single_trial(command, options);
    }
}

fn run_gate(args: &[String]) -> ! {
    let load = |flag: &str| -> BenchReport {
        let path = value_of(args, flag).unwrap_or_else(|| {
            eprintln!("gate requires {flag} <report.json>\n{USAGE}");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(&path).unwrap_or_else(|error| {
            eprintln!("cannot read '{path}': {error}");
            std::process::exit(2);
        });
        BenchReport::parse(&text).unwrap_or_else(|error| {
            eprintln!("invalid report '{path}': {error}");
            std::process::exit(2);
        })
    };
    let threshold = value_of(args, "--threshold")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.2);
    let candidate = load("--candidate");
    let baseline = load("--baseline");
    let result = bifrost_bench::gate(&candidate, &baseline, threshold);
    print!("{}", result.render());
    std::process::exit(if result.passed() { 0 } else { 1 });
}

/// Validates every `baseline*.json` in `dir` (default `crates/bench`):
/// each must parse as a bench report, name a figure the suite knows, and
/// only contain point labels the suite can emit for that figure — so a
/// renamed figure or point fails the lint job fast instead of silently
/// skipping its regression gate. Exits non-zero on the first problem-set.
fn run_check_baselines(dir: Option<&str>) -> ! {
    let dir = dir.unwrap_or("crates/bench");
    let entries = std::fs::read_dir(dir).unwrap_or_else(|error| {
        eprintln!("cannot read baseline directory '{dir}': {error}");
        std::process::exit(2);
    });
    let mut baselines = 0usize;
    let mut problems = Vec::new();
    let mut names: Vec<_> = entries
        .filter_map(|entry| entry.ok().map(|e| e.file_name()))
        .filter_map(|name| name.into_string().ok())
        .filter(|name| name.starts_with("baseline") && name.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        baselines += 1;
        let path = format!("{dir}/{name}");
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => {
                problems.push(format!("{path}: unreadable: {error}"));
                continue;
            }
        };
        let report = match BenchReport::parse(&text) {
            Ok(report) => report,
            Err(error) => {
                problems.push(format!("{path}: invalid report: {error}"));
                continue;
            }
        };
        let Some(known) = suite::point_names(&report.figure) else {
            problems.push(format!(
                "{path}: figure '{}' is not in the suite",
                report.figure
            ));
            continue;
        };
        if report.points.is_empty() {
            problems.push(format!("{path}: no points — nothing would be gated"));
        }
        for point in &report.points {
            if !known.contains(&point.point) {
                problems.push(format!(
                    "{path}: point '{}' is not emitted by figure '{}'",
                    point.point, report.figure
                ));
            }
        }
        println!(
            "checked {path} (figure {}, {} points)",
            report.figure,
            report.points.len()
        );
    }
    if baselines == 0 {
        problems.push(format!("no baseline*.json files found in '{dir}'"));
    }
    if problems.is_empty() {
        println!("check-baselines: OK ({baselines} baseline files in sync with bench::suite)");
        std::process::exit(0);
    }
    for problem in &problems {
        eprintln!("check-baselines: {problem}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let options = parse_options(&args);

    match command {
        "gate" => run_gate(&args),
        "table1" => {
            let rows = table1::run(options.quick);
            print!("{}", report::render_table1(&rows));
        }
        "list-points" => {
            let figure = args.get(1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("list-points requires a figure name\n{USAGE}");
                std::process::exit(2);
            });
            let names = suite::point_names(figure).unwrap_or_else(|| {
                eprintln!("unknown figure '{figure}'");
                std::process::exit(2);
            });
            for name in names {
                println!("{name}");
            }
        }
        "check-baselines" => run_check_baselines(args.get(1).map(String::as_str)),
        "fig6" | "fig7" | "fig8" | "fig7_fig8" | "fig9" | "fig10" | "fig9_fig10" | "traffic"
        | "sessions" | "backends" => {
            run_figure_command(command, &options);
        }
        "all" => {
            let mut options = options;
            // One explicit --json path cannot hold several figures: fall
            // back to the per-figure BENCH_<fig>.json names.
            if let Some(Some(path)) = &options.json {
                eprintln!("note: 'all' ignores the explicit path '{path}' and writes BENCH_<fig>.json per figure");
                options.json = Some(None);
            }
            for figure in ["fig6", "fig7", "fig9", "traffic", "sessions", "backends"] {
                run_figure_command(figure, &options);
            }
            let rows = table1::run(options.quick);
            print!("{}", report::render_table1(&rows));
        }
        "help" | "--help" | "-h" => {
            eprintln!("{USAGE}");
        }
        other => {
            eprintln!("unknown experiment '{other}'\n{USAGE}");
            std::process::exit(2);
        }
    }
}
