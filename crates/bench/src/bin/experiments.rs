//! The experiment harness binary: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! experiments fig6     [--quick]        response-time timeline (Figure 6)
//! experiments table1   [--quick]        per-phase statistics (Table 1)
//! experiments fig7 | fig8 [--max N]     parallel strategies (Figures 7 & 8)
//! experiments fig9 | fig10 [--max N]    parallel checks (Figures 9 & 10)
//! experiments all      [--quick]        everything above
//! ```
//!
//! `--quick` runs the compressed timeline (shorter phases, same structure);
//! without it the paper-length 380-second experiment timeline is simulated.
//! Everything runs in virtual time, so even the full sweeps finish in
//! seconds to minutes of wall-clock time.

use bifrost_bench::report;
use bifrost_bench::{fig6, fig7_fig8, fig9_fig10, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let max = args
        .iter()
        .position(|a| a == "--max")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());

    match command {
        "fig6" => {
            let series = fig6::run(quick);
            print!("{}", report::render_fig6(&series));
            print!("{}", report::render_expectations(&series));
        }
        "table1" => {
            let rows = table1::run(quick);
            print!("{}", report::render_table1(&rows));
        }
        "fig7" | "fig8" | "fig7_fig8" => {
            let max = max.unwrap_or(if quick { 60 } else { 130 });
            let points = fig7_fig8::run(max);
            print!("{}", report::render_fig7_fig8(&points));
        }
        "fig9" | "fig10" | "fig9_fig10" => {
            let max = max.unwrap_or(if quick { 400 } else { 1_600 });
            let points = fig9_fig10::run(max);
            print!("{}", report::render_fig9_fig10(&points));
        }
        "all" => {
            let series = fig6::run(quick);
            print!("{}", report::render_fig6(&series));
            print!("{}", report::render_expectations(&series));
            let rows = table1::run(quick);
            print!("{}", report::render_table1(&rows));
            let points = fig7_fig8::run(max.unwrap_or(if quick { 60 } else { 130 }));
            print!("{}", report::render_fig7_fig8(&points));
            let points = fig9_fig10::run(max.unwrap_or(if quick { 400 } else { 1_600 }));
            print!("{}", report::render_fig9_fig10(&points));
        }
        "help" | "--help" | "-h" => {
            eprintln!(
                "usage: experiments <fig6|table1|fig7|fig8|fig9|fig10|all> [--quick] [--max N]"
            );
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiments <fig6|table1|fig7|fig8|fig9|fig10|all> [--quick] [--max N]"
            );
            std::process::exit(2);
        }
    }
}
