//! # bifrost-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation section, plus helpers shared by the Criterion
//! benchmarks and the `experiments` binary.
//!
//! | Paper artifact | Harness |
//! |---|---|
//! | Figure 6 (response-time timeline) | [`fig6::run`] |
//! | Table 1 (per-phase response-time statistics) | [`table1::run`] |
//! | Figure 7 (engine CPU vs parallel strategies) | [`fig7_fig8::run`] |
//! | Figure 8 (enactment delay vs parallel strategies) | [`fig7_fig8::run`] |
//! | Figure 9 (engine CPU vs parallel checks) | [`fig9_fig10::run`] |
//! | Figure 10 (enactment delay vs parallel checks) | [`fig9_fig10::run`] |
//! | `traffic` (request-level routing accuracy, latency, and per-request proxy CPU — no paper counterpart) | [`traffic_experiments::run_point_seeded`] |
//! | `sessions` (sticky-routing throughput vs session-store shard count — no paper counterpart) | [`session_experiments::run_sweep_seeded`] |
//! | `backends` (canary overload: p95 and shed rate vs replica count, with/without a dark launch — no paper counterpart) | [`backend_experiments::run_point_seeded`] |
//!
//! Each harness returns plain data structures so the binary can print them
//! as text tables and tests can assert on the qualitative shape (who wins,
//! where saturation starts) without pinning absolute numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend_experiments;
pub mod engine_experiments;
pub mod json;
pub mod overhead_experiments;
pub mod report;
pub mod runner;
pub mod session_experiments;
pub mod suite;
pub mod traffic_experiments;

pub use backend_experiments::BackendsPointResult;
pub use engine_experiments::{fig7_fig8, fig9_fig10, ParallelChecksPoint, ParallelStrategiesPoint};
pub use json::{Json, JsonError};
pub use overhead_experiments::{fig6, table1, Fig6Series, Table1Row};
pub use report::{format_series, format_table, render_bench_report};
pub use runner::{
    gate, run_trials, BenchReport, GateFinding, GateResult, PointStats, RunnerConfig, TrialOutcome,
};
pub use session_experiments::{SessionsConfig, SessionsPointResult};
pub use suite::{point_names, run_figure};
pub use traffic_experiments::TrafficPointResult;
