//! Figures 7–10: engine scalability under parallel strategies and parallel
//! checks.
//!
//! Both experiments run the engine on a single-core (virtual) VM without
//! application load — exactly like the paper, which removed the load
//! generator for the engine-side experiments and only exercised
//! engine-to-proxy communication and metric queries.

use bifrost_casestudy::{parallel_check_strategy, trimmed_strategy, CaseStudyTopology};
use bifrost_core::seed::Seed;
use bifrost_engine::{BifrostEngine, EngineConfig};
use bifrost_metrics::{SeriesKey, SharedMetricStore, SummaryStats, TimestampMs};
use bifrost_simnet::{SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One measurement point of the parallel-strategies experiment
/// (Figures 7 and 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelStrategiesPoint {
    /// Number of strategies executed in parallel.
    pub strategies: usize,
    /// Summary of the engine CPU utilisation samples (1 Hz) over the run
    /// (Figure 7 boxplot input).
    pub cpu_utilization: SummaryStats,
    /// Summary of the per-strategy enactment delays in seconds (Figure 8).
    pub delay_secs: SummaryStats,
    /// How many strategies completed successfully.
    pub succeeded: usize,
}

/// One measurement point of the parallel-checks experiment
/// (Figures 9 and 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelChecksPoint {
    /// Number of checks executed in parallel (per phase).
    pub checks: usize,
    /// Summary of the engine CPU utilisation samples.
    pub cpu_utilization: SummaryStats,
    /// Enactment delay of the (single) strategy in seconds.
    pub delay_secs: f64,
    /// Whether the strategy completed successfully.
    pub succeeded: bool,
}

/// Pre-populates the metric store with the counter series the strategies'
/// checks query, emulating an idle but monitored deployment (Prometheus
/// scraping services that serve no traffic).
fn seed_metrics(store: &SharedMetricStore, horizon: Duration) {
    let step = Duration::from_secs(5);
    let mut t = Duration::ZERO;
    while t <= horizon {
        let ts = TimestampMs::from_millis(t.as_millis() as u64);
        for version in ["product", "product-a", "product-b"] {
            store.record_value(
                SeriesKey::new("request_errors").with_label("version", version),
                ts,
                0.0,
            );
            store.record_value(
                SeriesKey::new("requests_total").with_label("version", version),
                ts,
                1.0,
            );
        }
        store.record_value(
            SeriesKey::new("container_cpu_utilization").with_label("container", "product"),
            ts,
            5.0,
        );
        t += step;
    }
}

fn summary(values: &[f64]) -> SummaryStats {
    SummaryStats::compute(values).unwrap_or(SummaryStats {
        count: 0,
        mean: 0.0,
        min: 0.0,
        max: 0.0,
        sd: 0.0,
        median: 0.0,
    })
}

/// Figures 7 and 8: an increasing number of identical 280-second strategies
/// executed at the same time on a single-core engine.
pub mod fig7_fig8 {
    use super::*;

    /// The strategy-count steps of the paper: 1, 5, 10, then every 10 up to
    /// the limit (130 in the figures, 200 in the text).
    pub fn paper_steps(max: usize) -> Vec<usize> {
        let mut steps = vec![1, 5, 10];
        let mut n = 20;
        while n <= max {
            steps.push(n);
            n += 10;
        }
        steps
    }

    /// Runs one measurement point: `strategies` copies of the trimmed
    /// four-phase strategy, all scheduled at time zero.
    pub fn run_point(strategies: usize) -> ParallelStrategiesPoint {
        run_point_jittered(strategies, None)
    }

    /// The seeded variant used by the multi-trial runner: strategy start
    /// times are jittered uniformly within one second (the paper submits
    /// them "at the same time", which in practice means within the
    /// submission loop's jitter), so different trial seeds explore
    /// different queueing interleavings while any single seed stays fully
    /// reproducible.
    pub fn run_point_seeded(strategies: usize, seed: Seed) -> ParallelStrategiesPoint {
        run_point_jittered(
            strategies,
            Some(SimRng::seeded(seed.stream("fig7-start-jitter").value())),
        )
    }

    fn run_point_jittered(
        strategies: usize,
        mut jitter: Option<SimRng>,
    ) -> ParallelStrategiesPoint {
        let topology = CaseStudyTopology::new();
        let store = SharedMetricStore::new();
        seed_metrics(&store, Duration::from_secs(1_200));

        let mut engine = BifrostEngine::new(EngineConfig::default());
        engine.register_store_provider("prometheus", store);
        engine.register_proxy(topology.product_service, topology.product_stable);
        engine.register_proxy(topology.search_service, topology.search_stable);

        let handles: Vec<_> = (0..strategies)
            .map(|_| {
                let start = match jitter.as_mut() {
                    Some(rng) => SimTime::from_secs_f64(rng.uniform()),
                    None => SimTime::ZERO,
                };
                engine.schedule(trimmed_strategy(&topology), start)
            })
            .collect();
        engine.run_to_completion(SimTime::from_secs(3_600));

        let cpu: Vec<f64> = engine.utilization_trace().iter().map(|(_, u)| *u).collect();
        let mut delays = Vec::with_capacity(handles.len());
        let mut succeeded = 0;
        for handle in handles {
            if let Some(report) = engine.report(handle) {
                if report.succeeded() {
                    succeeded += 1;
                }
                if let Some(delay) = report.enactment_delay() {
                    delays.push(delay.as_secs_f64());
                }
            }
        }
        ParallelStrategiesPoint {
            strategies,
            cpu_utilization: summary(&cpu),
            delay_secs: summary(&delays),
            succeeded,
        }
    }

    /// Runs the full sweep.
    pub fn run(max_strategies: usize) -> Vec<ParallelStrategiesPoint> {
        paper_steps(max_strategies)
            .into_iter()
            .map(run_point)
            .collect()
    }
}

/// Figures 9 and 10: a single two-phase strategy with `8·n` parallel checks.
pub mod fig9_fig10 {
    use super::*;

    /// The check-count steps of the paper: 8, 80, 160, … up to the limit
    /// (1600 in the figures).
    pub fn paper_steps(max_checks: usize) -> Vec<usize> {
        let mut steps = vec![8];
        let mut n = 80;
        while n <= max_checks {
            steps.push(n);
            n += 80;
        }
        steps
    }

    /// Runs one measurement point with the given number of parallel checks
    /// (must be a multiple of 8; the paper duplicates a fixed set of 8).
    pub fn run_point(checks: usize) -> ParallelChecksPoint {
        run_point_seeded(checks, Seed::DEFAULT)
    }

    /// The seeded variant used by the multi-trial runner. The experiment is
    /// a single strategy on an otherwise idle engine, so the enactment
    /// delay is fully determined by the cost model: the seed only jitters
    /// the strategy's start time (uniform within one second), and trials
    /// legitimately report zero variance.
    pub fn run_point_seeded(checks: usize, seed: Seed) -> ParallelChecksPoint {
        let n = (checks / 8).max(1);
        let mut jitter = SimRng::seeded(seed.stream("fig9-start-jitter").value());
        let start = SimTime::from_secs_f64(jitter.uniform());
        let topology = CaseStudyTopology::new();
        let store = SharedMetricStore::new();
        seed_metrics(&store, Duration::from_secs(600));

        let mut engine = BifrostEngine::new(EngineConfig::default());
        engine.register_store_provider("prometheus", store);
        engine.register_proxy(topology.product_service, topology.product_stable);

        let strategy = parallel_check_strategy(&topology, n);
        let nominal = strategy.nominal_duration();
        let handle = engine.schedule(strategy, start);
        engine.run_to_completion(SimTime::from_secs(3_600));

        let report = engine.report(handle).expect("scheduled strategy");
        let cpu: Vec<f64> = engine.utilization_trace().iter().map(|(_, u)| *u).collect();
        let delay = report
            .measured_duration()
            .map(|d| d.as_secs_f64() - nominal.as_secs_f64())
            .unwrap_or(0.0)
            .max(0.0);
        ParallelChecksPoint {
            checks: 8 * n,
            cpu_utilization: summary(&cpu),
            delay_secs: delay,
            succeeded: report.succeeded(),
        }
    }

    /// Runs the full sweep.
    pub fn run(max_checks: usize) -> Vec<ParallelChecksPoint> {
        paper_steps(max_checks).into_iter().map(run_point).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_strategy_steps_match_paper() {
        let steps = fig7_fig8::paper_steps(130);
        assert_eq!(steps[..4], [1, 5, 10, 20]);
        assert_eq!(*steps.last().unwrap(), 130);
        let steps = fig9_fig10::paper_steps(1_600);
        assert_eq!(steps[0], 8);
        assert_eq!(steps[1], 80);
        assert_eq!(*steps.last().unwrap(), 1_600);
    }

    #[test]
    fn engine_handles_many_parallel_strategies_with_growing_delay() {
        let single = fig7_fig8::run_point(1);
        let many = fig7_fig8::run_point(60);
        assert_eq!(single.succeeded, 1);
        assert_eq!(many.succeeded, 60);
        // Delay and CPU utilisation grow with the number of strategies.
        assert!(many.delay_secs.mean >= single.delay_secs.mean);
        assert!(many.cpu_utilization.max >= single.cpu_utilization.max);
        // A single strategy barely loads the engine.
        assert!(
            single.cpu_utilization.mean < 10.0,
            "{}",
            single.cpu_utilization.mean
        );
        // Even 60 strategies complete on the single core (the paper's claim
        // that >100 are feasible; 60 keeps the test fast).
        assert!(many.delay_secs.mean < 30.0, "{}", many.delay_secs.mean);
    }

    #[test]
    fn seeded_points_are_reproducible_per_seed() {
        let a = fig7_fig8::run_point_seeded(20, Seed::new(5));
        let b = fig7_fig8::run_point_seeded(20, Seed::new(5));
        assert_eq!(a, b);
        let c = fig7_fig8::run_point_seeded(20, Seed::new(6));
        // A different seed explores a different submission interleaving.
        assert_ne!(a.delay_secs, c.delay_secs);
        assert_eq!(a.succeeded, 20);

        let x = fig9_fig10::run_point_seeded(80, Seed::new(5));
        let y = fig9_fig10::run_point_seeded(80, Seed::new(5));
        assert_eq!(x, y);
        assert!(x.succeeded);
    }

    #[test]
    fn check_count_drives_delay_and_utilization() {
        let small = fig9_fig10::run_point(8);
        let large = fig9_fig10::run_point(400);
        assert!(small.succeeded);
        assert!(large.succeeded);
        assert!(large.delay_secs > small.delay_secs);
        assert!(large.cpu_utilization.mean > small.cpu_utilization.mean);
        assert!(small.delay_secs < 2.0, "{}", small.delay_secs);
        assert_eq!(small.checks, 8);
        assert_eq!(large.checks, 400);
    }
}
