//! The multi-trial parallel experiment runner and the perf-regression gate.
//!
//! Every experiment point used to be a single serial trial — noisy and slow.
//! This module shards *independent trials* of an experiment across OS
//! threads: a shared, `parking_lot`-guarded queue of trial indices that
//! worker threads drain (work stealing — a fast trial's thread immediately
//! picks up the next pending trial), with **deterministic per-trial seeds**
//! derived as `base_seed + trial_index` ([`bifrost_core::Seed::for_trial`]).
//! Trials never share mutable state, so an N-thread run produces *exactly*
//! the per-trial results of a 1-thread run (asserted by
//! `tests/determinism.rs`), and any single trial can be reproduced in
//! isolation from its printed seed.
//!
//! Per-trial measurements are aggregated into
//! [`bifrost_metrics::DistributionSummary`] (mean/p50/p95/stddev) per
//! experiment point, packaged as a [`BenchReport`], serialised to the
//! `BENCH_<fig>.json` schema, and compared against a checked-in baseline by
//! [`gate`] — the CI job fails when a point's mean regresses by more than
//! the configured threshold. Statistical context for each comparison comes
//! from [`bifrost_metrics::welch_from_summary`].

use crate::json::Json;
use bifrost_core::seed::{Seed, TrialConfig};
use bifrost_metrics::{welch_from_summary, DistributionSummary};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How a multi-trial run is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Number of independent trials per experiment.
    pub trials: usize,
    /// Number of worker threads sharing the trial queue.
    pub threads: usize,
    /// The base seed; trial `i` runs with seed `base_seed + i`.
    pub base_seed: Seed,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            trials: 1,
            threads: 1,
            base_seed: Seed::DEFAULT,
        }
    }
}

impl RunnerConfig {
    /// Overrides the trial count (builder style, minimum 1).
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Overrides the thread count (builder style, minimum 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the base seed (builder style).
    pub fn with_base_seed(mut self, base_seed: Seed) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The machine's available parallelism (minimum 1) — the sensible
    /// default worker-thread count for multi-trial runs, since trials are
    /// independent and thread count never changes results.
    pub fn auto_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// The result of one trial: its identity, wall-clock cost, and the value
/// the trial closure returned.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome<T> {
    /// Which trial this was (carries the derived seed).
    pub config: TrialConfig,
    /// Wall-clock time the trial took on its worker thread.
    pub wall_clock: Duration,
    /// The trial's measurement value.
    pub value: T,
}

/// Runs `config.trials` independent executions of `trial` across
/// `config.threads` scoped worker threads and returns the outcomes in trial
/// order.
///
/// The trial closure receives a [`TrialConfig`] whose
/// [`seed`](TrialConfig::seed) is `base_seed + trial_index`; it must derive
/// *all* of its randomness from that seed and share no mutable state, which
/// makes the outcome independent of the thread count and of the order in
/// which threads steal trials from the queue.
pub fn run_trials<T, F>(config: &RunnerConfig, trial: F) -> Vec<TrialOutcome<T>>
where
    T: Send,
    F: Fn(TrialConfig) -> T + Sync,
{
    let trials = config.trials.max(1);
    let threads = config.threads.max(1).min(trials);
    let queue: Mutex<VecDeque<u64>> = Mutex::new((0..trials as u64).collect());
    let results: Mutex<Vec<Option<TrialOutcome<T>>>> =
        Mutex::new((0..trials).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Steal the next pending trial index; holding the queue lock
                // only for the pop keeps workers out of each other's way.
                let index = match queue.lock().pop_front() {
                    Some(index) => index,
                    None => break,
                };
                let trial_config = TrialConfig::new(config.base_seed, index, trials as u64);
                let started = Instant::now();
                let value = trial(trial_config);
                let outcome = TrialOutcome {
                    config: trial_config,
                    wall_clock: started.elapsed(),
                    value,
                };
                results.lock()[index as usize] = Some(outcome);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every trial index was executed"))
        .collect()
}

/// A labelled measurement produced by one trial: `(point label, value)`
/// pairs, one per experiment point the trial evaluated.
pub type KeyedMeasurements = Vec<(String, f64)>;

/// Aggregated statistics of one experiment point across all trials.
#[derive(Debug, Clone, PartialEq)]
pub struct PointStats {
    /// The point label (e.g. `"strategies=10"` or `"active/Canary"`).
    pub point: String,
    /// mean/p50/p95/sd/min/max of the per-trial values.
    pub stats: DistributionSummary,
    /// The raw per-trial values, in trial order.
    pub samples: Vec<f64>,
}

/// A machine-readable benchmark report: one figure, many points, each with
/// per-trial samples and their distribution summary. This is the payload of
/// the `BENCH_<fig>.json` files CI uploads and gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The figure / experiment the report belongs to (e.g. `"fig7"`).
    pub figure: String,
    /// Whether the compressed (`--quick`) timeline was used.
    pub quick: bool,
    /// The base seed of the run.
    pub base_seed: u64,
    /// Number of trials per point.
    pub trials: usize,
    /// Number of worker threads used.
    pub threads: usize,
    /// Total wall-clock seconds the run took.
    pub wall_clock_secs: f64,
    /// Per-point aggregated statistics.
    pub points: Vec<PointStats>,
}

impl BenchReport {
    /// The schema identifier embedded in every report.
    pub const SCHEMA: &'static str = "bifrost-bench/v1";

    /// The conventional file name of a figure's report.
    pub fn file_name(figure: &str) -> String {
        format!("BENCH_{figure}.json")
    }

    /// Aggregates keyed trial outcomes into a report. Point order follows
    /// the first trial's key order; every trial must produce the same keys
    /// (deterministic experiments do by construction).
    pub fn from_keyed_trials(
        figure: impl Into<String>,
        quick: bool,
        config: &RunnerConfig,
        outcomes: &[TrialOutcome<KeyedMeasurements>],
        wall_clock: Duration,
    ) -> Self {
        let mut points = Vec::new();
        if let Some(first) = outcomes.first() {
            for (key, _) in &first.value {
                let samples: Vec<f64> = outcomes
                    .iter()
                    .filter_map(|outcome| {
                        outcome
                            .value
                            .iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, v)| *v)
                    })
                    .collect();
                let stats = DistributionSummary::compute(&samples)
                    .expect("at least one trial contributed a sample");
                points.push(PointStats {
                    point: key.clone(),
                    stats,
                    samples,
                });
            }
        }
        Self {
            figure: figure.into(),
            quick,
            base_seed: config.base_seed.value(),
            trials: outcomes.len(),
            threads: config.threads,
            wall_clock_secs: wall_clock.as_secs_f64(),
            points,
        }
    }

    /// The stats of a named point.
    pub fn point(&self, name: &str) -> Option<&PointStats> {
        self.points.iter().find(|p| p.point == name)
    }

    /// Serialises the report to its JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(Self::SCHEMA)),
            ("figure", Json::str(&self.figure)),
            ("quick", Json::Bool(self.quick)),
            ("base_seed", Json::Num(self.base_seed as f64)),
            ("trials", Json::Num(self.trials as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("wall_clock_secs", Json::Num(self.wall_clock_secs)),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("point", Json::str(&p.point)),
                                (
                                    "stats",
                                    Json::obj([
                                        ("count", Json::Num(p.stats.count as f64)),
                                        ("mean", Json::Num(p.stats.mean)),
                                        ("sd", Json::Num(p.stats.sd)),
                                        ("min", Json::Num(p.stats.min)),
                                        ("max", Json::Num(p.stats.max)),
                                        ("p50", Json::Num(p.stats.p50)),
                                        ("p95", Json::Num(p.stats.p95)),
                                    ]),
                                ),
                                (
                                    "samples",
                                    Json::Arr(p.samples.iter().map(|v| Json::Num(*v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the report as a JSON string.
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }

    /// Reads a report back from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let num_field = |value: &Json, key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let mut points = Vec::new();
        for point in json
            .get("points")
            .and_then(Json::as_array)
            .ok_or("missing 'points' array")?
        {
            let stats = point.get("stats").ok_or("point missing 'stats'")?;
            let samples = point
                .get("samples")
                .and_then(Json::as_array)
                .map(|items| items.iter().filter_map(Json::as_f64).collect())
                .unwrap_or_default();
            points.push(PointStats {
                point: point
                    .get("point")
                    .and_then(Json::as_str)
                    .ok_or("point missing 'point' label")?
                    .to_string(),
                stats: DistributionSummary {
                    count: num_field(stats, "count")? as usize,
                    mean: num_field(stats, "mean")?,
                    sd: num_field(stats, "sd")?,
                    min: num_field(stats, "min")?,
                    max: num_field(stats, "max")?,
                    p50: num_field(stats, "p50")?,
                    p95: num_field(stats, "p95")?,
                },
                samples,
            });
        }
        // A report without a positive trial/thread count is malformed —
        // rejecting it here beats silently propagating 0 into downstream
        // statistics (a zero count previously slipped through as a
        // degenerate default).
        let counted = |key: &str| -> Result<usize, String> {
            let value = json
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))?;
            if value == 0 {
                return Err(format!("field '{key}' must be at least 1, got 0"));
            }
            Ok(value as usize)
        };
        Ok(Self {
            figure: str_field("figure")?,
            quick: matches!(json.get("quick"), Some(Json::Bool(true))),
            base_seed: json.get("base_seed").and_then(Json::as_u64).unwrap_or(0),
            trials: counted("trials")?,
            threads: counted("threads")?,
            wall_clock_secs: json
                .get("wall_clock_secs")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            points,
        })
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message for syntax errors or schema mismatches.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&json)
    }
}

/// One point's baseline-vs-candidate comparison in the regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFinding {
    /// The point label.
    pub point: String,
    /// Baseline mean.
    pub baseline_mean: f64,
    /// Candidate mean.
    pub candidate_mean: f64,
    /// `candidate / baseline` (1.0 when the baseline mean is ~zero and the
    /// candidate is too).
    pub ratio: f64,
    /// Two-sided p-value of the mean difference (Welch from summaries).
    pub p_value: f64,
    /// Whether this point regressed beyond the threshold.
    pub regressed: bool,
}

/// The outcome of gating a candidate report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// The relative regression threshold used (e.g. `0.2` = 20 %).
    pub threshold: f64,
    /// Per-point comparisons for every baseline point found in the
    /// candidate.
    pub findings: Vec<GateFinding>,
    /// Baseline points absent from the candidate report (a schema or sweep
    /// mismatch — fails the gate so it cannot mask a regression).
    pub missing_points: Vec<String>,
}

impl GateResult {
    /// Whether the gate passed.
    pub fn passed(&self) -> bool {
        self.missing_points.is_empty() && self.findings.iter().all(|f| !f.regressed)
    }

    /// A human-readable gate summary (what the CI log shows).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "perf-regression gate (threshold +{:.0}%)\n",
            self.threshold * 100.0
        );
        for finding in &self.findings {
            let _ = writeln!(
                out,
                "  {:<28} baseline {:>10.4}  candidate {:>10.4}  ratio {:>5.2}x  p={:.3}  {}",
                finding.point,
                finding.baseline_mean,
                finding.candidate_mean,
                finding.ratio,
                finding.p_value,
                if finding.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for point in &self.missing_points {
            let _ = writeln!(out, "  {point:<28} MISSING from candidate report");
        }
        let _ = writeln!(
            out,
            "gate: {}",
            if self.passed() { "PASSED" } else { "FAILED" }
        );
        out
    }
}

/// Small absolute slack (in the metric's unit) so near-zero baselines do
/// not turn float dust into gate failures.
const GATE_ABSOLUTE_SLACK: f64 = 1e-3;

/// Compares a candidate report against a baseline: a point regresses when
/// its candidate mean exceeds the baseline mean by more than
/// `|baseline_mean| * threshold` plus a tiny absolute slack (the relative
/// margin is taken on the magnitude so a negative baseline — e.g. a
/// measured overhead that happens to favour the candidate — still gets a
/// positive allowance). All metrics in the bench schema are
/// lower-is-better (latencies, delays, overheads).
pub fn gate(candidate: &BenchReport, baseline: &BenchReport, threshold: f64) -> GateResult {
    let mut findings = Vec::new();
    let mut missing_points = Vec::new();
    for base_point in &baseline.points {
        let Some(cand_point) = candidate.point(&base_point.point) else {
            missing_points.push(base_point.point.clone());
            continue;
        };
        let baseline_mean = base_point.stats.mean;
        let candidate_mean = cand_point.stats.mean;
        let limit = baseline_mean + baseline_mean.abs() * threshold + GATE_ABSOLUTE_SLACK;
        let ratio = if baseline_mean.abs() > f64::EPSILON {
            candidate_mean / baseline_mean
        } else {
            1.0
        };
        let welch = welch_from_summary(
            candidate_mean,
            cand_point.stats.sd,
            cand_point.stats.count,
            baseline_mean,
            base_point.stats.sd,
            base_point.stats.count,
            0.05,
        );
        findings.push(GateFinding {
            point: base_point.point.clone(),
            baseline_mean,
            candidate_mean,
            ratio,
            p_value: welch.p_value,
            regressed: candidate_mean > limit,
        });
    }
    GateResult {
        threshold,
        findings,
        missing_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn trials_get_sequential_seeds_and_ordered_results() {
        let config = RunnerConfig::default()
            .with_trials(8)
            .with_threads(4)
            .with_base_seed(Seed::new(1_000));
        let outcomes = run_trials(&config, |trial| trial.seed().value());
        assert_eq!(outcomes.len(), 8);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.config.trial_index, i as u64);
            assert_eq!(outcome.value, 1_000 + i as u64);
        }
    }

    #[test]
    fn every_trial_runs_exactly_once_under_contention() {
        let counter = AtomicUsize::new(0);
        let config = RunnerConfig::default().with_trials(64).with_threads(8);
        let outcomes = run_trials(&config, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(outcomes.len(), 64);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let run = |threads: usize| {
            let config = RunnerConfig::default()
                .with_trials(16)
                .with_threads(threads)
                .with_base_seed(Seed::new(7));
            run_trials(&config, |trial| {
                // A deterministic, seed-dependent computation.
                let mut rng = bifrost_simnet::SimRng::seeded(trial.seed().value());
                (0..100).map(|_| rng.uniform()).sum::<f64>()
            })
            .into_iter()
            .map(|o| o.value)
            .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let config = RunnerConfig::default().with_trials(0).with_threads(0);
        assert_eq!(config.trials, 1);
        assert_eq!(config.threads, 1);
        let outcomes = run_trials(&config, |trial| trial.trials);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].value, 1);
    }

    fn keyed_outcomes(values: &[(&str, &[f64])]) -> Vec<TrialOutcome<KeyedMeasurements>> {
        let trials = values[0].1.len();
        (0..trials)
            .map(|i| TrialOutcome {
                config: TrialConfig::new(Seed::new(42), i as u64, trials as u64),
                wall_clock: Duration::from_millis(1),
                value: values
                    .iter()
                    .map(|(k, samples)| (k.to_string(), samples[i]))
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn report_round_trips_through_json() {
        let outcomes = keyed_outcomes(&[
            ("strategies=1", &[0.1, 0.2, 0.3, 0.4]),
            ("strategies=10", &[1.0, 1.1, 1.2, 1.3]),
        ]);
        let config = RunnerConfig::default().with_trials(4).with_threads(2);
        let report = BenchReport::from_keyed_trials(
            "fig7",
            true,
            &config,
            &outcomes,
            Duration::from_secs_f64(0.5),
        );
        assert_eq!(report.points.len(), 2);
        let p = report.point("strategies=1").unwrap();
        assert!((p.stats.mean - 0.25).abs() < 1e-12);
        assert_eq!(p.samples.len(), 4);

        let parsed = BenchReport::parse(&report.render_json()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(BenchReport::file_name("fig7"), "BENCH_fig7.json");
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse(r#"{"figure":"f","points":[{"stats":{}}]}"#).is_err());
        // Missing or zero trial/thread counts are rejected explicitly
        // instead of degenerating to 0.
        let err = BenchReport::parse(r#"{"figure":"f","points":[]}"#).unwrap_err();
        assert!(err.contains("trials"), "{err}");
        let err =
            BenchReport::parse(r#"{"figure":"f","trials":0,"threads":2,"points":[]}"#).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err =
            BenchReport::parse(r#"{"figure":"f","trials":2,"threads":0,"points":[]}"#).unwrap_err();
        assert!(err.contains("threads"), "{err}");
        assert!(BenchReport::parse(r#"{"figure":"f","trials":2,"threads":2,"points":[]}"#).is_ok());
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(RunnerConfig::auto_threads() >= 1);
    }

    #[test]
    fn gate_passes_identical_and_fails_regressed_reports() {
        let config = RunnerConfig::default().with_trials(4);
        let baseline = BenchReport::from_keyed_trials(
            "fig7",
            true,
            &config,
            &keyed_outcomes(&[("strategies=10", &[1.0, 1.0, 1.1, 0.9])]),
            Duration::from_millis(10),
        );
        let same = gate(&baseline, &baseline, 0.2);
        assert!(same.passed());
        assert!(same.render().contains("PASSED"));

        let slower = BenchReport::from_keyed_trials(
            "fig7",
            true,
            &config,
            &keyed_outcomes(&[("strategies=10", &[1.5, 1.5, 1.6, 1.4])]),
            Duration::from_millis(10),
        );
        let regressed = gate(&slower, &baseline, 0.2);
        assert!(!regressed.passed());
        assert!(regressed.findings[0].regressed);
        assert!(regressed.findings[0].ratio > 1.4);
        assert!(regressed.render().contains("REGRESSED"));

        // Within-threshold drift passes.
        let drift = BenchReport::from_keyed_trials(
            "fig7",
            true,
            &config,
            &keyed_outcomes(&[("strategies=10", &[1.05, 1.05, 1.15, 0.95])]),
            Duration::from_millis(10),
        );
        assert!(gate(&drift, &baseline, 0.2).passed());
    }

    #[test]
    fn gate_fails_on_missing_points() {
        let config = RunnerConfig::default().with_trials(2);
        let baseline = BenchReport::from_keyed_trials(
            "fig7",
            true,
            &config,
            &keyed_outcomes(&[
                ("strategies=10", &[1.0, 1.0]),
                ("strategies=20", &[2.0, 2.0]),
            ]),
            Duration::from_millis(10),
        );
        let partial = BenchReport::from_keyed_trials(
            "fig7",
            true,
            &config,
            &keyed_outcomes(&[("strategies=10", &[1.0, 1.0])]),
            Duration::from_millis(10),
        );
        let result = gate(&partial, &baseline, 0.2);
        assert!(!result.passed());
        assert_eq!(result.missing_points, vec!["strategies=20".to_string()]);
        assert!(result.render().contains("MISSING"));
    }

    #[test]
    fn negative_baseline_means_gate_on_magnitude() {
        let config = RunnerConfig::default().with_trials(2);
        let baseline = BenchReport::from_keyed_trials(
            "fig6",
            true,
            &config,
            &keyed_outcomes(&[("overhead/proxy_ms", &[-0.1, -0.1])]),
            Duration::from_millis(1),
        );
        // Gating a negative-mean point against itself must pass.
        assert!(gate(&baseline, &baseline, 0.2).passed());
        // A genuinely regressed (less negative → slower) candidate fails.
        let slower = BenchReport::from_keyed_trials(
            "fig6",
            true,
            &config,
            &keyed_outcomes(&[("overhead/proxy_ms", &[0.5, 0.5])]),
            Duration::from_millis(1),
        );
        assert!(!gate(&slower, &baseline, 0.2).passed());
    }

    #[test]
    fn near_zero_baselines_tolerate_float_dust() {
        let config = RunnerConfig::default().with_trials(2);
        let baseline = BenchReport::from_keyed_trials(
            "fig9",
            true,
            &config,
            &keyed_outcomes(&[("checks=8", &[0.0, 0.0])]),
            Duration::from_millis(1),
        );
        let dusty = BenchReport::from_keyed_trials(
            "fig9",
            true,
            &config,
            &keyed_outcomes(&[("checks=8", &[1e-6, 2e-6])]),
            Duration::from_millis(1),
        );
        assert!(gate(&dusty, &baseline, 0.2).passed());
    }
}
