//! Text rendering of experiment results (the `experiments` binary's output).

use crate::engine_experiments::{ParallelChecksPoint, ParallelStrategiesPoint};
use crate::overhead_experiments::{Fig6Series, Table1Row};
use crate::runner::BenchReport;
use bifrost_casestudy::Variant;
use bifrost_metrics::bin_average;
use std::fmt::Write as _;

/// Formats a `(x, y)` series as a compact two-column table, optionally
/// down-sampled into bins of `bin_width` on the x axis.
pub fn format_series(title: &str, series: &[(f64, f64)], bin_width: f64) -> String {
    let mut out = format!("# {title}\n");
    let points = if bin_width > 0.0 {
        bin_average(series, bin_width)
    } else {
        series.to_vec()
    };
    for (x, y) in points {
        let _ = writeln!(out, "{x:>10.1} {y:>10.2}");
    }
    out
}

/// Formats rows of label/values pairs as an aligned table.
pub fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("# {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(cell, width)| format!("{cell:>width$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", render_row(&header_cells, &widths));
    for row in rows {
        let _ = writeln!(out, "{}", render_row(row, &widths));
    }
    out
}

/// Renders Figure 6: one down-sampled series per variant.
pub fn render_fig6(series: &[Fig6Series]) -> String {
    let mut out = String::from("== Figure 6: end-user response time (3 s moving average) ==\n");
    for entry in series {
        out.push_str(&format_series(
            &format!("variant: {}", entry.variant.label()),
            &entry.series,
            10.0,
        ));
        for (phase, mean) in &entry.phase_means {
            let _ = writeln!(out, "    {phase:<16} mean {mean:>7.2} ms");
        }
    }
    out
}

/// Renders Table 1 in the paper's layout (phases as column groups).
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut table_rows = Vec::new();
    for row in rows {
        table_rows.push(vec![
            row.phase.clone(),
            row.variant.label().to_string(),
            format!("{:.2}", row.stats.mean),
            format!("{:.2}", row.stats.min),
            format!("{:.2}", row.stats.max),
            format!("{:.2}", row.stats.sd),
            format!("{:.2}", row.stats.median),
        ]);
    }
    format_table(
        "Table 1: response-time statistics per phase and variant (ms)",
        &["phase", "variant", "mean", "min", "max", "sd", "median"],
        &table_rows,
    )
}

/// Renders Figures 7 and 8 (CPU utilisation and delay vs parallel
/// strategies).
pub fn render_fig7_fig8(points: &[ParallelStrategiesPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.strategies.to_string(),
                format!("{:.1}", p.cpu_utilization.median),
                format!("{:.1}", p.cpu_utilization.mean),
                format!("{:.1}", p.cpu_utilization.max),
                format!("{:.2}", p.delay_secs.mean),
                format!("{:.2}", p.delay_secs.sd),
                format!("{}/{}", p.succeeded, p.strategies),
            ]
        })
        .collect();
    format_table(
        "Figures 7 & 8: engine CPU utilisation and enactment delay vs parallel strategies",
        &[
            "strategies",
            "cpu-median%",
            "cpu-mean%",
            "cpu-max%",
            "delay-mean-s",
            "delay-sd-s",
            "succeeded",
        ],
        &rows,
    )
}

/// Renders Figures 9 and 10 (CPU utilisation and delay vs parallel checks).
pub fn render_fig9_fig10(points: &[ParallelChecksPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.checks.to_string(),
                format!("{:.1}", p.cpu_utilization.median),
                format!("{:.1}", p.cpu_utilization.mean),
                format!("{:.1}", p.cpu_utilization.max),
                format!("{:.2}", p.delay_secs),
                p.succeeded.to_string(),
            ]
        })
        .collect();
    format_table(
        "Figures 9 & 10: engine CPU utilisation and enactment delay vs parallel checks",
        &[
            "checks",
            "cpu-median%",
            "cpu-mean%",
            "cpu-max%",
            "delay-s",
            "succeeded",
        ],
        &rows,
    )
}

/// Renders a multi-trial [`BenchReport`] as an aligned text table (the
/// human-readable companion of the `BENCH_<fig>.json` output).
pub fn render_bench_report(report: &BenchReport) -> String {
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.point.clone(),
                format!("{:.4}", p.stats.mean),
                format!("{:.4}", p.stats.p50),
                format!("{:.4}", p.stats.p95),
                format!("{:.4}", p.stats.sd),
                format!("{:.4}", p.stats.min),
                format!("{:.4}", p.stats.max),
            ]
        })
        .collect();
    let mut out = format_table(
        &format!(
            "{}: {} trials x {} threads, base seed {} ({})",
            report.figure,
            report.trials,
            report.threads,
            report.base_seed,
            if report.quick {
                "quick"
            } else {
                "paper-length"
            },
        ),
        &["point", "mean", "p50", "p95", "sd", "min", "max"],
        &rows,
    );
    let _ = writeln!(out, "wall-clock: {:.2}s", report.wall_clock_secs);
    out
}

/// A short paper-vs-measured comparison block used by the `experiments`
/// binary to make EXPERIMENTS.md reproducible from one command.
pub fn render_expectations(series: &[Fig6Series]) -> String {
    let mean = |variant: Variant| -> Option<f64> {
        let s = series.iter().find(|s| s.variant == variant)?;
        Some(s.series.iter().map(|(_, v)| *v).sum::<f64>() / s.series.len() as f64)
    };
    let mut out = String::from("== Paper vs measured (qualitative checks) ==\n");
    if let (Some(base), Some(inactive), Some(active)) = (
        mean(Variant::Baseline),
        mean(Variant::Inactive),
        mean(Variant::Active),
    ) {
        let _ = writeln!(
            out,
            "baseline {base:.1} ms < inactive {inactive:.1} ms (proxy overhead {:.1} ms, paper: ~8 ms)",
            inactive - base
        );
        let _ = writeln!(
            out,
            "active mean {active:.1} ms (paper: canary/rollout ≈ inactive, dark launch higher, A/B lower)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_metrics::SummaryStats;

    fn stats(mean: f64) -> SummaryStats {
        SummaryStats {
            count: 10,
            mean,
            min: mean - 1.0,
            max: mean + 1.0,
            sd: 0.5,
            median: mean,
        }
    }

    #[test]
    fn series_formatting_bins_points() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 10.0)).collect();
        let text = format_series("test", &series, 10.0);
        assert!(text.starts_with("# test"));
        assert_eq!(text.lines().count(), 11);
        let raw = format_series("raw", &series, 0.0);
        assert_eq!(raw.lines().count(), 101);
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let rows = vec![
            vec!["1".to_string(), "22.5".to_string()],
            vec!["100".to_string(), "3.0".to_string()],
        ];
        let text = format_table("t", &["n", "value"], &rows);
        assert!(text.contains("n"));
        assert!(text.contains("value"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn render_helpers_produce_nonempty_output() {
        let rows = vec![Table1Row {
            phase: "Canary".into(),
            variant: Variant::Baseline,
            stats: stats(22.7),
        }];
        assert!(render_table1(&rows).contains("Canary"));

        let f78 = vec![ParallelStrategiesPoint {
            strategies: 10,
            cpu_utilization: stats(20.0),
            delay_secs: stats(1.0),
            succeeded: 10,
        }];
        assert!(render_fig7_fig8(&f78).contains("10/10"));

        let f910 = vec![ParallelChecksPoint {
            checks: 80,
            cpu_utilization: stats(30.0),
            delay_secs: 2.0,
            succeeded: true,
        }];
        assert!(render_fig9_fig10(&f910).contains("80"));

        let fig6 = vec![Fig6Series {
            variant: Variant::Active,
            series: vec![(0.0, 30.0), (1.0, 31.0)],
            phase_means: vec![("Canary".into(), 30.5)],
        }];
        assert!(render_fig6(&fig6).contains("active"));
        assert!(render_expectations(&fig6).contains("Paper vs measured"));
    }
}
