//! The `traffic` figure: request-level routing through the proxy fleet
//! during enactment.
//!
//! Unlike the paper's figures this point has no real-world counterpart —
//! it exists to pin the behaviour of the traffic pipeline added on top of
//! the reproduction: a canary state followed by a dark-launch state is
//! enacted while a seeded open-loop workload flows through the product
//! proxy, and the trial reports
//!
//! * the observed **split error** (|canary share − configured share|),
//! * the observed **shadow error** (|shadow share − configured share|),
//! * the virtual **end-to-end latency** (mean and p95), and
//! * the virtual **proxy CPU cost per routed request**.
//!
//! All five are lower-is-better and fully deterministic per seed (virtual
//! time only), so the perf-regression gate can hold them to the same tight
//! thresholds as the enactment-delay figures.

use bifrost_core::prelude::*;
use bifrost_core::seed::Seed;
use bifrost_engine::{BackendProfile, BifrostEngine, EngineConfig, TrafficProfile};
use bifrost_metrics::SharedMetricStore;
use bifrost_simnet::SimTime;
use bifrost_workload::{LoadProfile, RequestMix};
use std::time::Duration;

/// The configured canary share of the first state (percent).
pub const CANARY_SHARE: f64 = 10.0;
/// The configured dark-launch duplication share of the second state
/// (percent).
pub const SHADOW_SHARE: f64 = 25.0;
/// Virtual seconds per state (canary, then dark launch).
const STATE_SECS: u64 = 60;

/// The outcome of one traffic trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficPointResult {
    /// Requests routed over the whole run.
    pub requests: u64,
    /// Requests routed during the canary state.
    pub canary_requests: u64,
    /// |observed canary share − configured| in percentage points.
    pub split_error_pct: f64,
    /// |observed shadow share − configured| in percentage points.
    pub shadow_error_pct: f64,
    /// Mean end-to-end latency (virtual milliseconds).
    pub mean_latency_ms: f64,
    /// 95th-percentile end-to-end latency (virtual milliseconds).
    pub p95_latency_ms: f64,
    /// Proxy CPU milliseconds per routed request.
    pub proxy_cpu_ms_per_request: f64,
}

/// Runs one seeded traffic trial targeting roughly `requests` routed
/// requests (the workload rate is derived from the fixed two-state
/// timeline).
pub fn run_point_seeded(requests: usize, seed: Seed) -> TrafficPointResult {
    let mut catalog = ServiceCatalog::new();
    let product = catalog.add_service(Service::new("product"));
    let stable = catalog
        .add_version(
            product,
            ServiceVersion::new("product", Endpoint::new("10.0.0.1", 8080)),
        )
        .expect("fresh catalog");
    let candidate = catalog
        .add_version(
            product,
            ServiceVersion::new("product-a", Endpoint::new("10.0.0.2", 8080)),
        )
        .expect("fresh catalog");

    let strategy = StrategyBuilder::new("traffic-bench", catalog)
        .phase(
            PhaseSpec::canary(
                "canary",
                product,
                stable,
                candidate,
                Percentage::new(CANARY_SHARE).expect("valid share"),
            )
            .duration_secs(STATE_SECS),
        )
        .phase(
            PhaseSpec::dark_launch(
                "dark",
                product,
                stable,
                candidate,
                Percentage::new(SHADOW_SHARE).expect("valid share"),
            )
            .duration_secs(STATE_SECS),
        )
        .build()
        .expect("valid strategy");

    let duration = Duration::from_secs(2 * STATE_SECS);
    let rate = requests as f64 / duration.as_secs_f64();
    let load = LoadProfile {
        requests_per_second: rate,
        ramp_up: Duration::ZERO,
        duration,
        mix: RequestMix::paper_mix(),
        user_count: 1_000_000,
        poisson_arrivals: false,
    };
    // Size the proxy VM so peak routing demand (~11 ms per dark-launched
    // request under the Node-prototype overhead model) lands around 60%
    // utilisation — the latency point then measures routing cost plus
    // realistic queueing, not a saturated queue growing without bound.
    let cores = ((rate * 0.011 / 0.6).ceil() as usize).max(1);
    let profile = TrafficProfile::new(product, load)
        .with_cores(cores)
        .with_service_label("product")
        .with_backend(
            stable,
            "product",
            BackendProfile::healthy(Duration::from_millis(12)),
        )
        .with_backend(
            candidate,
            "product-a",
            BackendProfile::healthy(Duration::from_millis(9)),
        );

    let store = SharedMetricStore::new();
    let mut engine = BifrostEngine::new(EngineConfig::default().with_seed(seed));
    engine.register_store_provider("prometheus", store.clone());
    engine.register_proxy(product, stable);
    engine.schedule(strategy, SimTime::ZERO);
    let traffic = engine.attach_traffic(profile, store);

    // Snapshot at the canary → dark boundary to attribute counts per phase.
    engine.run_until(SimTime::from_secs(STATE_SECS));
    let canary_stats = engine.traffic_stats(traffic).expect("attached").clone();
    engine.run_until(SimTime::from_secs(2 * STATE_SECS + 5));
    let stats = engine.traffic_stats(traffic).expect("attached");

    let canary_share = if canary_stats.requests == 0 {
        0.0
    } else {
        *canary_stats.per_version.get(&candidate).unwrap_or(&0) as f64
            / canary_stats.requests as f64
    };
    let dark_requests = stats.requests - canary_stats.requests;
    let shadow_share = if dark_requests == 0 {
        0.0
    } else {
        stats.shadow_copies as f64 / dark_requests as f64
    };
    TrafficPointResult {
        requests: stats.requests,
        canary_requests: canary_stats.requests,
        split_error_pct: (canary_share * 100.0 - CANARY_SHARE).abs(),
        shadow_error_pct: (shadow_share * 100.0 - SHADOW_SHARE).abs(),
        mean_latency_ms: stats.mean_latency_ms(),
        p95_latency_ms: stats.latency_quantile_ms(0.95),
        proxy_cpu_ms_per_request: stats.proxy_cpu_ms_per_request(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_point_is_accurate_and_deterministic() {
        let a = run_point_seeded(20_000, Seed::new(42));
        assert!(a.requests >= 19_000, "requests {}", a.requests);
        assert!(a.canary_requests > 8_000);
        assert!(a.split_error_pct < 1.0, "split error {}", a.split_error_pct);
        assert!(
            a.shadow_error_pct < 1.0,
            "shadow error {}",
            a.shadow_error_pct
        );
        assert!(a.mean_latency_ms > 0.0);
        assert!(a.p95_latency_ms >= a.mean_latency_ms * 0.5);
        assert!(a.proxy_cpu_ms_per_request > 0.0);
        let b = run_point_seeded(20_000, Seed::new(42));
        assert_eq!(a, b);
    }
}
