//! Minimal JSON tree, writer, and parser.
//!
//! The workspace's `serde` dependency resolves to an offline no-op stub (the
//! build environment has no registry access), so the machine-readable
//! `BENCH_*.json` reports are emitted and re-read through this small,
//! dependency-free implementation. It covers exactly what the benchmark
//! schema needs: objects with ordered keys, arrays, finite numbers, strings
//! with standard escapes, booleans, and null.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialise to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, level: usize| {
            for _ in 0..level {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 produces the shortest round-tripping
                    // decimal, which is valid JSON.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the bench
                            // schema; map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_bench_schema_shape() {
        let doc = Json::obj([
            ("figure", Json::str("fig7")),
            ("base_seed", Json::Num(42.0)),
            ("trials", Json::Num(8.0)),
            (
                "points",
                Json::Arr(vec![Json::obj([
                    ("point", Json::str("strategies=10")),
                    ("mean", Json::Num(1.25)),
                    ("p95", Json::Num(2.5)),
                    ("ok", Json::Bool(true)),
                    ("none", Json::Null),
                ])]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("figure").unwrap().as_str(), Some("fig7"));
        assert_eq!(parsed.get("trials").unwrap().as_u64(), Some(8));
        let points = parsed.get("points").unwrap().as_array().unwrap();
        assert_eq!(points[0].get("mean").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn parses_hand_written_json() {
        let parsed = Json::parse(
            r#" { "a" : [ 1, -2.5e1, true, false, null ], "b": "x\n\"y\"", "c": {} } "#,
        )
        .unwrap();
        let a = parsed.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-25.0));
        assert_eq!(a[2], Json::Bool(true));
        assert_eq!(parsed.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(parsed.get("c").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn escapes_and_unicode() {
        let doc = Json::obj([("k\"ey", Json::str("tab\tnewline\nünïcode"))]);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        let unicode = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(unicode.as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "1 trailing",
            "{\"a\": nul}",
            "[1 2]",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad} should fail");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let doc = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        assert_eq!(
            Json::parse(&doc.render()).unwrap(),
            Json::Arr(vec![Json::Null, Json::Null])
        );
    }

    #[test]
    fn accessor_type_mismatches_return_none() {
        let v = Json::str("x");
        assert!(v.as_f64().is_none());
        assert!(v.as_array().is_none());
        assert!(v.get("k").is_none());
        assert!(Json::Num(1.5).as_u64().is_none());
        assert!(Json::Num(-1.0).as_u64().is_none());
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
