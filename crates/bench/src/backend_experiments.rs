//! The `backends` figure: canary overload behaviour of the queued backend
//! fleet.
//!
//! Like the `traffic` and `sessions` figures this has no direct paper
//! counterpart — it pins the behaviour of the queued backend model added
//! on top of the reproduction: a 20% canary whose version runs on 1, 2, or
//! 4 single-core replicas is put under a ramping open-loop load, with and
//! without a 20% dark launch duplicating stable traffic onto the same
//! canary version. Each scenario reports
//!
//! * the canary's worst per-tick **p95 latency** (virtual milliseconds,
//!   from the `request_latency_p95_ms` series the fleet records), and
//! * the canary's **shed percentage** (queue-full rejections and timeouts
//!   over everything the version was offered, shadow copies included).
//!
//! The sweep is calibrated so the picture is qualitative and stable at any
//! request volume: the canary's service demand is derived from the peak
//! arrival rate so one replica runs at a fixed offered load of
//! [`THIN_REPLICA_LOAD`] (≈1.4 cores) at the top of the ramp. One replica
//! therefore saturates outright (p95 pinned near the timeout, double-digit
//! shed), two replicas are healthy until the dark launch pushes them over
//! capacity, four replicas absorb everything. All points are
//! lower-is-better and fully deterministic per seed (virtual time only),
//! so the perf-regression gate holds them against
//! `crates/bench/baseline_backends.json`.

use bifrost_core::ids::{ServiceId, VersionId};
use bifrost_core::routing::{DarkLaunchRoute, Percentage, RoutingMode, TrafficSplit};
use bifrost_core::seed::Seed;
use bifrost_core::user::UserSelector;
use bifrost_engine::{BackendProfile, BifrostEngine, EngineConfig, QueuedBackend, TrafficProfile};
use bifrost_metrics::{Aggregation, RangeQuery, SharedMetricStore};
use bifrost_proxy::{ProxyConfig, ProxyRule};
use bifrost_simnet::SimTime;
use bifrost_workload::{LoadProfile, RequestMix};
use std::time::Duration;

/// The canary's primary traffic share (percent).
pub const CANARY_SHARE: f64 = 20.0;
/// The dark-launch duplication share of stable traffic (percent) in the
/// `+dark20` scenarios.
pub const DARK_SHARE: f64 = 20.0;
/// The replica counts the figure sweeps.
pub const REPLICA_SWEEP: &[usize] = &[1, 2, 4];
/// Virtual seconds of traffic per scenario.
const DURATION_SECS: u64 = 100;
/// Virtual seconds of the linear load ramp.
const RAMP_SECS: u64 = 60;
/// The offered load (in replica-cores) one canary replica sees at the top
/// of the ramp without the dark launch; the canary's service demand is
/// derived from the arrival rate to hit exactly this, so the saturation
/// picture is independent of the `--requests` volume. The dark launch adds
/// another `0.2 × 0.8 / 0.2 = 0.8×` of that on top.
pub const THIN_REPLICA_LOAD: f64 = 1.4;
/// The canary backend's request deadline.
const CANARY_TIMEOUT: Duration = Duration::from_millis(250);

/// The outcome of one backends scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendsPointResult {
    /// Replicas the canary version ran on.
    pub replicas: usize,
    /// Whether a 20% dark launch also fed the canary.
    pub dark: bool,
    /// Primary requests routed over the run.
    pub requests: u64,
    /// Worst per-tick p95 latency of the canary version (virtual ms).
    pub p95_ms: f64,
    /// Shed + timed-out share of everything offered to the canary
    /// (percent; shadow copies count into both sides).
    pub shed_pct: f64,
    /// Peak per-tick replica utilisation of the canary (percent).
    pub peak_utilization: f64,
}

/// Runs one scenario: `replicas` canary replicas under a ramping load of
/// roughly `requests` total requests, optionally with the dark launch.
pub fn run_point_seeded(
    replicas: usize,
    dark: bool,
    requests: usize,
    seed: Seed,
) -> BackendsPointResult {
    let service = ServiceId::new(0);
    let stable = VersionId::new(0);
    let canary = VersionId::new(1);

    // The ramp integrates to `rate * (DURATION - RAMP/2)` requests.
    let duration = Duration::from_secs(DURATION_SECS);
    let rate = requests as f64 / (DURATION_SECS - RAMP_SECS / 2) as f64;
    let load = LoadProfile {
        requests_per_second: rate,
        ramp_up: Duration::from_secs(RAMP_SECS),
        duration,
        mix: RequestMix::paper_mix(),
        user_count: 1_000_000,
        poisson_arrivals: false,
    };
    // Provision the proxy VM for the dark-launch routing cost (~11 ms per
    // duplicated request under the Node-prototype overhead model): this
    // figure studies *backend* saturation, so the proxy must never be the
    // upstream bottleneck.
    let cores = ((rate * 0.011 / 0.6).ceil() as usize).max(4);
    // Size the canary's per-request demand so one replica sits at exactly
    // THIN_REPLICA_LOAD offered cores at the peak rate.
    let canary_peak = rate * CANARY_SHARE / 100.0;
    let canary_service = Duration::from_secs_f64(THIN_REPLICA_LOAD / canary_peak);
    let profile = TrafficProfile::new(service, load)
        .with_cores(cores)
        .with_service_label("product")
        .with_backend(
            stable,
            "product",
            BackendProfile::healthy(Duration::from_millis(8)),
        )
        .with_queued_backend(
            canary,
            "product-a",
            QueuedBackend::new(canary_service)
                .with_replicas(replicas)
                .with_queue_capacity(32)
                .with_timeout(CANARY_TIMEOUT),
        );

    let store = SharedMetricStore::new();
    let mut engine = BifrostEngine::new(EngineConfig::default().with_seed(seed));
    engine.register_store_provider("prometheus", store.clone());
    engine.register_proxy(service, stable);
    // The scenario holds one routing configuration for the whole run, so
    // the proxy is configured directly instead of through a strategy: a
    // sticky-free canary split, plus the dark-launch rule when requested.
    let split = TrafficSplit::canary(
        stable,
        canary,
        Percentage::new(CANARY_SHARE).expect("valid"),
    )
    .expect("valid split");
    let mut config = ProxyConfig::new(service, stable)
        .with_revision(1)
        .with_rule(ProxyRule::split(
            split,
            false,
            UserSelector::All,
            RoutingMode::CookieBased,
        ));
    if dark {
        config = config.with_rule(ProxyRule::shadow(DarkLaunchRoute::new(
            stable,
            canary,
            Percentage::new(DARK_SHARE).expect("valid"),
        )));
    }
    engine
        .proxy(service)
        .expect("registered")
        .write()
        .apply_config(config);

    let traffic = engine.attach_traffic(profile, store.clone());
    engine.run_to_completion(SimTime::from_secs(DURATION_SECS + 30));

    let stats = engine.traffic_stats(traffic).expect("attached");
    let p95_ms = store
        .evaluate(
            &RangeQuery::new("request_latency_p95_ms")
                .with_label("version", "product-a")
                .over_window_secs(DURATION_SECS + 30)
                .aggregate(Aggregation::Max),
            SimTime::from_secs(DURATION_SECS + 30).to_timestamp(),
        )
        .unwrap_or(0.0);
    let offered = stats.per_version.get(&canary).copied().unwrap_or(0)
        + stats.shadow_per_version.get(&canary).copied().unwrap_or(0);
    let dropped = stats.shed_per_version.get(&canary).copied().unwrap_or(0) + stats.shadow_shed;
    let shed_pct = if offered == 0 {
        0.0
    } else {
        dropped as f64 / offered as f64 * 100.0
    };
    BackendsPointResult {
        replicas,
        dark,
        requests: stats.requests,
        p95_ms,
        shed_pct,
        peak_utilization: stats.peak_utilization.get(&canary).copied().unwrap_or(0.0),
    }
}

/// The point label of one scenario and metric, e.g. `replicas=2+dark20/p95_ms`.
pub fn point_label(replicas: usize, dark: bool, metric: &str) -> String {
    if dark {
        format!("replicas={replicas}+dark20/{metric}")
    } else {
        format!("replicas={replicas}/{metric}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_story_holds_and_is_deterministic() {
        let thin = run_point_seeded(1, false, 30_000, Seed::new(42));
        let wide = run_point_seeded(4, false, 30_000, Seed::new(42));
        assert!(thin.requests > 25_000);
        // One replica saturates: p95 near the timeout, double-digit shed.
        assert!(
            thin.p95_ms > CANARY_TIMEOUT.as_secs_f64() * 1_000.0 * 0.8,
            "thin p95 {}",
            thin.p95_ms
        );
        assert!(thin.shed_pct > 5.0, "thin shed {}", thin.shed_pct);
        assert!((thin.peak_utilization - 100.0).abs() < 1e-9);
        // Four replicas absorb the same load.
        assert_eq!(wide.shed_pct, 0.0);
        assert!(wide.p95_ms < thin.p95_ms / 3.0, "wide p95 {}", wide.p95_ms);
        // Deterministic per seed.
        assert_eq!(thin, run_point_seeded(1, false, 30_000, Seed::new(42)));
    }

    #[test]
    fn dark_launch_heats_the_same_scenario() {
        let plain = run_point_seeded(2, false, 30_000, Seed::new(7));
        let dark = run_point_seeded(2, true, 30_000, Seed::new(7));
        // The dark launch pushes two replicas over capacity.
        assert!(
            dark.shed_pct > plain.shed_pct,
            "dark {} vs plain {}",
            dark.shed_pct,
            plain.shed_pct
        );
        assert!(dark.p95_ms >= plain.p95_ms);
        assert!(dark.peak_utilization > plain.peak_utilization);
    }

    #[test]
    fn point_labels() {
        assert_eq!(point_label(1, false, "p95_ms"), "replicas=1/p95_ms");
        assert_eq!(
            point_label(4, true, "shed_pct"),
            "replicas=4+dark20/shed_pct"
        );
    }
}
