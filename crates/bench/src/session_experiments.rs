//! The `sessions` figure: sticky-routing throughput versus session-store
//! shard count.
//!
//! Like the `traffic` figure this has no paper counterpart — it pins the
//! behaviour of the sharded sticky-session store: a proxy holding on the
//! order of a million live bindings routes a burst of cookie-carrying
//! (sticky-hit) requests through [`BifrostProxy::route_many_costed`] at
//! every shard count of [`SHARD_SWEEP`], and the trial reports the
//! wall-clock **nanoseconds per routed request** per shard count plus each
//! multi-shard count's **time relative to the 1-shard run of the same
//! trial**.
//!
//! Unlike the virtual-time figures these points measure real wall-clock
//! work, so absolute `ns_per_request` values are machine-dependent and only
//! informational. The `time_vs_1shard` ratios are what the CI gate pins
//! (`crates/bench/baseline_sessions.json`): they are computed within one
//! trial on one machine, so they transfer across hardware — sharding wins
//! on a single core by cutting per-shard tree depth (fewer cache-missing
//! node hops per lookup at millions of bindings) and wins again on
//! multi-core runners by striping lock contention across shards. Both
//! effects push the ratio below 1.0; a broken sharded path pushes it back
//! to ~1.0 and fails the gate.
//!
//! Because the measurements are wall-clock, CI runs this figure with
//! `--threads 1` (serial trials); the *drive* inside a trial still uses up
//! to [`MAX_DRIVE_THREADS`] OS threads when the machine has the cores.

use bifrost_core::ids::{ServiceId, VersionId};
use bifrost_core::routing::{Percentage, RoutingMode, TrafficSplit};
use bifrost_core::seed::Seed;
use bifrost_core::user::UserSelector;
use bifrost_proxy::{
    BifrostProxy, ProxyConfig, ProxyRequest, ProxyRule, SessionToken, TokenGenerator,
};
use std::time::Instant;

/// The shard counts every trial sweeps.
pub const SHARD_SWEEP: &[usize] = &[1, 4, 16];

/// Upper bound on the OS threads driving requests inside one trial. Capped
/// so the checked-in ratio baseline stays comparable across the small
/// runners CI uses and bigger developer machines.
pub const MAX_DRIVE_THREADS: usize = 4;

/// Sizing of one sessions trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionsConfig {
    /// Live sticky bindings pre-populated into the store.
    pub bindings: usize,
    /// Requests routed per timed repetition.
    pub requests: usize,
    /// Timed repetitions per shard count (the minimum is reported).
    pub repetitions: usize,
    /// OS threads driving the requests concurrently.
    pub threads: usize,
}

impl SessionsConfig {
    /// The CI sizing: a million live bindings, compact request volume.
    pub fn quick() -> Self {
        Self {
            bindings: 1_000_000,
            requests: 200_000,
            repetitions: 3,
            threads: drive_threads(),
        }
    }

    /// The full sizing: millions of live bindings.
    pub fn full() -> Self {
        Self {
            bindings: 2_000_000,
            requests: 600_000,
            repetitions: 3,
            threads: drive_threads(),
        }
    }

    /// Overrides the per-repetition request volume (builder style).
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests.max(1);
        self
    }

    /// Overrides the live-binding count (builder style).
    pub fn with_bindings(mut self, bindings: usize) -> Self {
        self.bindings = bindings.max(1);
        self
    }
}

/// How many OS threads a trial drives requests with on this machine.
fn drive_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_DRIVE_THREADS)
}

/// The outcome of one shard count within a trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionsPointResult {
    /// The session-store shard count measured.
    pub shards: usize,
    /// Best-of-repetitions wall-clock nanoseconds per routed request (the
    /// minimum is the standard noise-robust estimator for a fixed
    /// deterministic workload: systematic cost stays, interference drops).
    pub ns_per_request: f64,
    /// Sticky hits observed (sanity: the drive must exercise the table).
    pub sticky_hits: u64,
}

/// Runs one seeded trial: the full [`SHARD_SWEEP`] over one shared token
/// population.
///
/// All sweep points are built (and their binding tables populated) up
/// front, then the timed repetitions **interleave** the shard counts —
/// round-robin `1, 4, 16, 1, 4, 16, …` — so slow drift on a busy machine
/// (thermal state, noisy CI neighbours) lands on every shard count alike
/// instead of biasing whichever point ran last.
pub fn run_sweep_seeded(config: &SessionsConfig, seed: Seed) -> Vec<SessionsPointResult> {
    // One deterministic token population per trial, shared by every shard
    // count so all sweep points route byte-identical traffic.
    let mut generator = TokenGenerator::seeded(seed.stream("session-tokens").value());
    let tokens: Vec<SessionToken> = (0..config.bindings.max(1))
        .map(|_| generator.next_token())
        .collect();
    // The request burst references bindings via a cheap deterministic
    // stride walk (coprime to the population size), touching the whole
    // table without the memory cost of an index permutation.
    let stride = stride_for(tokens.len());
    let requests: Vec<ProxyRequest> = (0..config.requests.max(1))
        .map(|i| ProxyRequest::new().with_session(tokens[(i * stride) % tokens.len()]))
        .collect();

    let proxies: Vec<BifrostProxy> = SHARD_SWEEP
        .iter()
        .map(|&shards| build_proxy(shards, &tokens))
        .collect();
    let mut best_ns = vec![f64::INFINITY; proxies.len()];
    for _rep in 0..config.repetitions.max(1) {
        for (point, proxy) in proxies.iter().enumerate() {
            let ns = timed_pass(proxy, &requests, config.threads.max(1));
            best_ns[point] = best_ns[point].min(ns);
        }
    }
    proxies
        .iter()
        .enumerate()
        .map(|(point, proxy)| SessionsPointResult {
            shards: SHARD_SWEEP[point],
            ns_per_request: best_ns[point],
            sticky_hits: proxy.stats().sticky_hits,
        })
        .collect()
}

/// A stride coprime to `n` that spreads consecutive requests across the
/// token population (golden-ratio fraction, nudged until coprime).
fn stride_for(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    let mut stride = ((n as f64 * 0.618_033_988) as usize).max(1);
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    while gcd(stride, n) != 1 {
        stride += 1;
    }
    stride
}

/// Builds one sweep point's proxy — a sticky 50/50 cookie split — and
/// pre-populates its live bindings (not part of any timed section).
fn build_proxy(shards: usize, tokens: &[SessionToken]) -> BifrostProxy {
    let (service, stable, canary) = (ServiceId::new(0), VersionId::new(0), VersionId::new(1));
    let split = TrafficSplit::canary(stable, canary, Percentage::new(50.0).expect("valid"))
        .expect("two distinct versions");
    let proxy_config = ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
        split,
        true,
        UserSelector::All,
        RoutingMode::CookieBased,
    ));
    let proxy = BifrostProxy::new("sessions-bench", proxy_config).with_session_shards(shards);
    let store = proxy.sessions();
    for token in tokens {
        let version = if token.bucket_draw() < 0.5 {
            stable
        } else {
            canary
        };
        store.bind(*token, version);
    }
    proxy
}

/// Times one full pass of the request burst across `threads` driver
/// threads (each routing its contiguous slice in batches of 512) and
/// returns the wall-clock nanoseconds per routed request.
fn timed_pass(proxy: &BifrostProxy, requests: &[ProxyRequest], threads: usize) -> f64 {
    let chunk = requests.len().div_ceil(threads);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for slice in requests.chunks(chunk) {
            scope.spawn(move || {
                for batch in slice.chunks(512) {
                    let routed = proxy.route_many_costed(batch.iter());
                    std::hint::black_box(routed.len());
                }
            });
        }
    });
    started.elapsed().as_nanos() as f64 / requests.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_every_shard_count_and_hits_the_table() {
        let config = SessionsConfig {
            bindings: 20_000,
            requests: 4_000,
            repetitions: 2,
            threads: 2,
        };
        let points = run_sweep_seeded(&config, Seed::new(7));
        assert_eq!(points.len(), SHARD_SWEEP.len());
        for (point, &shards) in points.iter().zip(SHARD_SWEEP) {
            assert_eq!(point.shards, shards);
            assert!(point.ns_per_request > 0.0);
            // Every repetition's requests hit the pre-populated table.
            assert_eq!(
                point.sticky_hits,
                (config.requests * config.repetitions) as u64
            );
        }
    }

    #[test]
    fn strides_are_coprime_to_the_population() {
        for n in [2usize, 3, 10, 1_000, 65_536, 99_991] {
            let stride = stride_for(n);
            assert!(stride >= 1 && stride < n.max(2));
            let visited: std::collections::BTreeSet<usize> =
                (0..n).map(|i| (i * stride) % n).collect();
            assert_eq!(visited.len(), n, "stride {stride} must cover {n}");
        }
    }

    #[test]
    fn configs_scale_and_clamp() {
        assert!(SessionsConfig::full().bindings > SessionsConfig::quick().bindings);
        assert_eq!(SessionsConfig::quick().with_requests(0).requests, 1);
        assert!(SessionsConfig::quick().threads >= 1);
        assert!(SessionsConfig::quick().threads <= MAX_DRIVE_THREADS);
    }
}
