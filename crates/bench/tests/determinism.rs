//! Determinism of the multi-trial parallel runner: the same `base_seed`
//! and trial index must yield **byte-identical** results no matter how many
//! worker threads execute the trials, and any trial must be reproducible in
//! isolation from its derived seed (`base_seed + trial_index`).

use bifrost_bench::runner::{run_trials, RunnerConfig};
use bifrost_bench::suite;
use bifrost_casestudy::{trimmed_strategy, CaseStudyTopology};
use bifrost_core::seed::Seed;
use bifrost_engine::{BifrostEngine, EngineConfig, StrategyReport};
use bifrost_metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost_simnet::{SimRng, SimTime};

/// One full engine trial: schedules `strategies` copies of the trimmed
/// case-study strategy with seed-jittered start times, runs to completion,
/// and returns every [`StrategyReport`] the engine produced.
fn engine_trial(seed: Seed, strategies: usize) -> Vec<StrategyReport> {
    let topology = CaseStudyTopology::new();
    let store = SharedMetricStore::new();
    for t in (0..1_200).step_by(5) {
        for version in ["product", "product-a", "product-b"] {
            store.record_value(
                SeriesKey::new("request_errors").with_label("version", version),
                TimestampMs::from_secs(t),
                0.0,
            );
            store.record_value(
                SeriesKey::new("requests_total").with_label("version", version),
                TimestampMs::from_secs(t),
                1.0,
            );
        }
    }
    let mut engine = BifrostEngine::new(EngineConfig::default().with_seed(seed));
    engine.register_store_provider("prometheus", store);
    engine.register_proxy(topology.product_service, topology.product_stable);
    engine.register_proxy(topology.search_service, topology.search_stable);
    let mut jitter = SimRng::seeded(seed.stream("start-jitter").value());
    let handles: Vec<_> = (0..strategies)
        .map(|_| {
            engine.schedule(
                trimmed_strategy(&topology),
                SimTime::from_secs_f64(jitter.uniform()),
            )
        })
        .collect();
    engine.run_to_completion(SimTime::from_secs(3_600));
    handles
        .into_iter()
        .map(|h| engine.report(h).expect("scheduled strategy"))
        .collect()
}

#[test]
fn n_thread_runs_are_byte_identical_to_one_thread_runs() {
    let run = |threads: usize| {
        let config = RunnerConfig::default()
            .with_trials(6)
            .with_threads(threads)
            .with_base_seed(Seed::new(1_000));
        run_trials(&config, |trial| {
            // Byte-identical: compare the full Debug rendering of every
            // report, not just summary numbers.
            format!("{:?}", engine_trial(trial.seed(), 8))
        })
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.value, b.value, "trial {} diverged", a.config.trial_index);
    }
}

#[test]
fn a_trial_is_reproducible_in_isolation_from_its_derived_seed() {
    let config = RunnerConfig::default()
        .with_trials(5)
        .with_threads(3)
        .with_base_seed(Seed::new(500));
    let outcomes = run_trials(&config, |trial| {
        format!("{:?}", engine_trial(trial.seed(), 5))
    });
    // Re-run trial 3 alone, outside the runner, from base_seed + 3.
    let replay = format!("{:?}", engine_trial(Seed::new(503), 5));
    assert_eq!(outcomes[3].value, replay);
    // And the derived seeds are the documented scheme.
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.config.seed(), Seed::new(500 + i as u64));
    }
}

#[test]
fn different_seeds_produce_different_executions() {
    let a = format!("{:?}", engine_trial(Seed::new(1), 8));
    let b = format!("{:?}", engine_trial(Seed::new(2), 8));
    assert_ne!(a, b, "start jitter must depend on the seed");
}

#[test]
fn suite_reports_are_thread_count_invariant() {
    let base = RunnerConfig::default()
        .with_trials(4)
        .with_base_seed(Seed::new(7));
    let serial = suite::run_figure("fig9", true, Some(80), None, &base.with_threads(1)).unwrap();
    let parallel = suite::run_figure("fig9", true, Some(80), None, &base.with_threads(4)).unwrap();
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.samples, b.samples, "point {} diverged", a.point);
        assert_eq!(a.stats, b.stats);
    }
}

/// One sticky-traffic trial over the **sharded** session store: a sticky
/// canary split followed by a dark launch, with seeded request-level
/// traffic routed through a proxy sharded `shards` ways. Returns the full
/// Debug rendering of the traffic statistics and the proxy's merged
/// counters, so comparisons are byte-level.
fn sharded_traffic_trial(seed: Seed, shards: usize) -> String {
    use bifrost_core::prelude::*;
    use bifrost_engine::TrafficProfile;
    use bifrost_workload::{LoadProfile, RequestMix};
    use std::time::Duration;

    let mut catalog = ServiceCatalog::new();
    let product = catalog.add_service(Service::new("product"));
    let stable = catalog
        .add_version(
            product,
            ServiceVersion::new("product", Endpoint::new("10.0.0.1", 8080)),
        )
        .expect("fresh catalog");
    let candidate = catalog
        .add_version(
            product,
            ServiceVersion::new("product-a", Endpoint::new("10.0.0.2", 8080)),
        )
        .expect("fresh catalog");
    let strategy = StrategyBuilder::new("sharded-traffic", catalog)
        .phase(
            PhaseSpec::canary(
                "canary",
                product,
                stable,
                candidate,
                Percentage::new(20.0).expect("valid"),
            )
            .sticky(true)
            .duration_secs(30),
        )
        .phase(
            PhaseSpec::dark_launch(
                "dark",
                product,
                stable,
                candidate,
                Percentage::new(25.0).expect("valid"),
            )
            .duration_secs(30),
        )
        .build()
        .expect("valid strategy");

    let load = LoadProfile {
        requests_per_second: 150.0,
        ramp_up: Duration::ZERO,
        duration: Duration::from_secs(60),
        mix: RequestMix::paper_mix(),
        user_count: 5_000,
        poisson_arrivals: false,
    };
    let store = SharedMetricStore::new();
    let mut engine = BifrostEngine::new(
        EngineConfig::default()
            .with_seed(seed)
            .with_session_shards(shards),
    );
    engine.register_store_provider("prometheus", store.clone());
    engine.register_proxy(product, stable);
    engine.schedule(strategy, SimTime::ZERO);
    let traffic = engine.attach_traffic(TrafficProfile::new(product, load), store);
    engine.run_until(SimTime::from_secs(70));
    let proxy = engine.proxy(product).expect("registered");
    let proxy_stats = proxy.read().stats();
    format!(
        "{:?} | {:?}",
        engine.traffic_stats(traffic).expect("attached"),
        proxy_stats
    )
}

#[test]
fn sharded_sticky_traffic_is_byte_identical_across_runner_threads() {
    // The satellite determinism guarantee of the sharded store: routing
    // the same seeded traffic at 1, 4, and 8 runner threads over a
    // 16-shard session store yields byte-identical reports per trial.
    let run = |threads: usize| {
        let config = RunnerConfig::default()
            .with_trials(8)
            .with_threads(threads)
            .with_base_seed(Seed::new(2_000));
        run_trials(&config, |trial| sharded_traffic_trial(trial.seed(), 16))
    };
    let serial = run(1);
    for threads in [4usize, 8] {
        let parallel = run(threads);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.config, b.config);
            assert_eq!(
                a.value, b.value,
                "trial {} diverged at {} runner threads",
                a.config.trial_index, threads
            );
        }
    }
}

#[test]
fn shard_count_does_not_change_engine_traffic_results() {
    // The shard knob is a pure scalability control: 1-shard and 16-shard
    // engines report byte-identical traffic and proxy statistics.
    let one = sharded_traffic_trial(Seed::new(77), 1);
    let sixteen = sharded_traffic_trial(Seed::new(77), 16);
    assert_eq!(one, sixteen);
    // The rendering carries real content (sticky traffic flowed).
    assert!(one.contains("sticky_hits"), "{one}");
}

#[test]
fn backends_figure_is_byte_identical_across_runner_threads() {
    // The queued-backend figure derives everything (arrival plan, routing
    // draws, primary and shadow demand jitter, queue/shed decisions) from
    // the per-trial seed, so its per-point samples must match to the byte
    // across 1, 4, and 8 runner threads.
    let base = RunnerConfig::default()
        .with_trials(3)
        .with_base_seed(Seed::new(33));
    let serial =
        suite::run_figure("backends", true, None, Some(6_000), &base.with_threads(1)).unwrap();
    for threads in [4usize, 8] {
        let parallel = suite::run_figure(
            "backends",
            true,
            None,
            Some(6_000),
            &base.with_threads(threads),
        )
        .unwrap();
        assert_eq!(serial.points.len(), parallel.points.len());
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.point, b.point);
            assert_eq!(
                format!("{:?}", a.samples),
                format!("{:?}", b.samples),
                "point {} diverged at {} runner threads",
                a.point,
                threads
            );
            assert_eq!(a.stats, b.stats);
        }
    }
}

#[test]
fn traffic_figure_is_byte_identical_across_thread_counts() {
    // The request-level traffic pipeline derives everything (arrival plan,
    // routing draws, backend behaviour) from the per-trial seed, so the
    // rendered per-point samples must match to the byte between a 1-thread
    // and an N-thread run.
    let base = RunnerConfig::default()
        .with_trials(3)
        .with_base_seed(Seed::new(21));
    let serial =
        suite::run_figure("traffic", true, None, Some(4_000), &base.with_threads(1)).unwrap();
    let parallel =
        suite::run_figure("traffic", true, None, Some(4_000), &base.with_threads(3)).unwrap();
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.point, b.point);
        assert_eq!(
            format!("{:?}", a.samples),
            format!("{:?}", b.samples),
            "point {} diverged",
            a.point
        );
        assert_eq!(a.stats, b.stats);
    }
}
