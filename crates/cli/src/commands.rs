//! CLI commands: argument parsing and command execution.

use crate::dashboard::Dashboard;
use bifrost_bench::runner::RunnerConfig;
use bifrost_bench::{render_bench_report, suite};
use bifrost_casestudy::prelude::*;
use bifrost_core::seed::Seed;
use bifrost_dsl::{BackendDoc, EngineDoc};
use bifrost_engine::{
    BackendDefaults, BackendProfile, BifrostEngine, EngineConfig, QueuedBackend, TrafficProfile,
};
use bifrost_metrics::SharedMetricStore;
use bifrost_simnet::SimTime;
use bifrost_workload::LoadProfile;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The arguments did not match any command; carries the usage text.
    Usage(String),
    /// A strategy file could not be read.
    Io {
        /// The file that failed to load.
        path: PathBuf,
        /// The underlying error message.
        message: String,
    },
    /// The strategy file failed to parse or compile.
    Dsl(bifrost_dsl::DslError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(usage) => write!(f, "{usage}"),
            CliError::Io { path, message } => {
                write!(f, "cannot read '{}': {message}", path.display())
            }
            CliError::Dsl(err) => write!(f, "invalid strategy: {err}"),
        }
    }
}

impl Error for CliError {}

impl From<bifrost_dsl::DslError> for CliError {
    fn from(err: bifrost_dsl::DslError) -> Self {
        CliError::Dsl(err)
    }
}

/// The usage text shown for `--help` and argument errors.
pub const USAGE: &str = "bifrost — automated enactment of multi-phase live testing strategies

USAGE:
    bifrost validate <strategy.yml>     check a strategy file and print its summary
    bifrost dot <strategy.yml>          render the strategy's automaton as Graphviz dot
    bifrost run <strategy.yml> [--verbose] [--deadline <secs>] [--shards N]
                [--traffic <rps>] [--replicas N] [--queue-capacity N] [--timeout-ms N]
                                        enact the strategy against the simulated deployment
                                        (--shards overrides the session-store shard count,
                                        also settable via the file's engine.session_shards;
                                        --traffic drives seeded request-level traffic through
                                        every proxied service, honouring the file's
                                        engine.tick/cores/backends; --replicas,
                                        --queue-capacity, and --timeout-ms give versions
                                        without a backends: entry queued replicas)
    bifrost demo [--verbose]            run the product-replacement evaluation scenario
    bifrost bench [--fig <fig6|fig7|fig9|traffic|sessions|backends>] [--trials N]
                  [--threads M] [--base-seed S] [--max N] [--requests N] [--quick]
                  [--json <out.json>]
                                        run a paper figure as a multi-trial parallel
                                        experiment with deterministic per-trial seeds
                                        (--threads defaults to available parallelism)
    bifrost help                        show this message";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Validate a strategy file.
    Validate {
        /// Path to the strategy file.
        path: PathBuf,
    },
    /// Render a strategy's automaton as Graphviz dot.
    Dot {
        /// Path to the strategy file.
        path: PathBuf,
    },
    /// Enact a strategy against the simulated deployment.
    Run {
        /// Path to the strategy file.
        path: PathBuf,
        /// Show individual check executions.
        verbose: bool,
        /// Virtual-time deadline in seconds.
        deadline_secs: u64,
        /// Session-store shard count override (`--shards`); `None` defers
        /// to the strategy file's `engine.session_shards`, then the engine
        /// default.
        session_shards: Option<usize>,
        /// Request rate of seeded request-level traffic to drive through
        /// every proxied service (`--traffic`); `None` enacts without
        /// traffic (the historical behaviour).
        traffic_rps: Option<f64>,
        /// Default replica count for versions without an explicit
        /// `backends:` entry (`--replicas`).
        backend_replicas: Option<usize>,
        /// Default per-replica queue bound (`--queue-capacity`).
        backend_queue: Option<usize>,
        /// Default backend timeout in milliseconds (`--timeout-ms`).
        backend_timeout_ms: Option<u64>,
    },
    /// Run the built-in product-replacement demo scenario.
    Demo {
        /// Show individual check executions.
        verbose: bool,
    },
    /// Run a paper figure as a multi-trial parallel benchmark.
    Bench {
        /// The figure to run (`fig6`, `fig7`, `fig9`, and their aliases).
        figure: String,
        /// Number of independent trials.
        trials: usize,
        /// Number of worker threads sharing the trial queue.
        threads: usize,
        /// Base seed; trial `i` runs with seed `base_seed + i`.
        base_seed: u64,
        /// Sweep bound for the engine-scalability figures.
        max: Option<usize>,
        /// Request volume for the traffic figure.
        requests: Option<usize>,
        /// Use the compressed (quick) timeline.
        quick: bool,
        /// Write the machine-readable report to this path.
        json: Option<PathBuf>,
    },
    /// Print the usage text.
    Help,
}

impl Command {
    /// Parses process arguments (without the binary name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the arguments do not form a valid
    /// command.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut iter = args.iter().map(String::as_str);
        match iter.next() {
            None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
            Some("validate") => {
                let path = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                Ok(Command::Validate { path: path.into() })
            }
            Some("dot") => {
                let path = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                Ok(Command::Dot { path: path.into() })
            }
            Some("run") => {
                let path = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                let mut verbose = false;
                let mut deadline_secs = 7 * 24 * 3_600;
                let mut session_shards = None;
                let mut traffic_rps = None;
                let mut backend_replicas = None;
                let mut backend_queue = None;
                let mut backend_timeout_ms = None;
                let rest: Vec<&str> = iter.collect();
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--verbose" | "-v" => verbose = true,
                        "--deadline" => {
                            i += 1;
                            deadline_secs = rest
                                .get(i)
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                        }
                        "--shards" => {
                            i += 1;
                            let shards: usize = rest
                                .get(i)
                                .and_then(|s| s.parse().ok())
                                .filter(|s| {
                                    (1..=bifrost_core::routing::MAX_SESSION_SHARDS).contains(s)
                                })
                                .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                            session_shards = Some(shards);
                        }
                        "--traffic" => {
                            i += 1;
                            let rps: f64 = rest
                                .get(i)
                                .and_then(|s| s.parse().ok())
                                .filter(|v: &f64| v.is_finite() && *v > 0.0)
                                .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                            traffic_rps = Some(rps);
                        }
                        "--replicas" => {
                            i += 1;
                            let replicas: usize = rest
                                .get(i)
                                .and_then(|s| s.parse().ok())
                                .filter(|v| (1..=bifrost_dsl::ast::MAX_REPLICAS).contains(v))
                                .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                            backend_replicas = Some(replicas);
                        }
                        "--queue-capacity" => {
                            i += 1;
                            let queue: usize = rest
                                .get(i)
                                .and_then(|s| s.parse().ok())
                                .filter(|v| (1..=bifrost_dsl::ast::MAX_QUEUE_CAPACITY).contains(v))
                                .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                            backend_queue = Some(queue);
                        }
                        "--timeout-ms" => {
                            i += 1;
                            let timeout: u64 = rest
                                .get(i)
                                .and_then(|s| s.parse().ok())
                                .filter(|v| *v >= 1)
                                .ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
                            backend_timeout_ms = Some(timeout);
                        }
                        _ => return Err(CliError::Usage(USAGE.to_string())),
                    }
                    i += 1;
                }
                Ok(Command::Run {
                    path: path.into(),
                    verbose,
                    deadline_secs,
                    session_shards,
                    traffic_rps,
                    backend_replicas,
                    backend_queue,
                    backend_timeout_ms,
                })
            }
            Some("demo") => {
                let verbose = iter.any(|a| a == "--verbose" || a == "-v");
                Ok(Command::Demo { verbose })
            }
            Some("bench") => {
                let rest: Vec<&str> = iter.collect();
                let mut figure = "fig7".to_string();
                let mut trials = 1usize;
                // Trials are seed-deterministic and independent, so default
                // to the machine's parallelism (the runner caps workers at
                // the trial count anyway).
                let mut threads = RunnerConfig::auto_threads();
                let mut base_seed = Seed::DEFAULT.value();
                let mut max = None;
                let mut requests = None;
                let mut quick = false;
                let mut json = None;
                let mut i = 0;
                let usage = || CliError::Usage(USAGE.to_string());
                // An explicit 0 is a usage error, not a silently clamped
                // degenerate run.
                let count = |text: &str| -> Result<usize, CliError> {
                    text.parse().ok().filter(|v| *v >= 1).ok_or_else(usage)
                };
                while i < rest.len() {
                    let take = |i: &mut usize| -> Result<&str, CliError> {
                        *i += 1;
                        rest.get(*i).copied().ok_or_else(usage)
                    };
                    match rest[i] {
                        "--fig" | "--figure" => figure = take(&mut i)?.to_string(),
                        "--trials" => trials = count(take(&mut i)?)?,
                        "--threads" => threads = count(take(&mut i)?)?,
                        "--base-seed" => base_seed = take(&mut i)?.parse().map_err(|_| usage())?,
                        "--max" => max = Some(take(&mut i)?.parse().map_err(|_| usage())?),
                        "--requests" => {
                            requests = Some(take(&mut i)?.parse().map_err(|_| usage())?)
                        }
                        "--quick" => quick = true,
                        "--json" => json = Some(PathBuf::from(take(&mut i)?)),
                        _ => return Err(usage()),
                    }
                    i += 1;
                }
                Ok(Command::Bench {
                    figure,
                    trials,
                    threads,
                    base_seed,
                    max,
                    requests,
                    quick,
                    json,
                })
            }
            Some(other) => Err(CliError::Usage(format!(
                "unknown command '{other}'\n\n{USAGE}"
            ))),
        }
    }
}

/// The result of executing a command: the text to print and the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutput {
    /// Text to print to stdout.
    pub text: String,
    /// Process exit code (0 = success).
    pub exit_code: i32,
}

impl CommandOutput {
    fn ok(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            exit_code: 0,
        }
    }
}

/// Executes a parsed command.
///
/// # Errors
///
/// Returns a [`CliError`] for unreadable files or invalid strategy documents.
pub fn run_command(command: &Command) -> Result<CommandOutput, CliError> {
    match command {
        Command::Help => Ok(CommandOutput::ok(USAGE)),
        Command::Validate { path } => {
            let strategy = load_strategy(path)?;
            let mut text = format!(
                "strategy '{}' is valid\n  services: {}\n  versions: {}\n  states: {}\n  nominal duration: {:.0}s\n",
                strategy.name(),
                strategy.services().service_count(),
                strategy.services().version_count(),
                strategy.automaton().state_count(),
                strategy.nominal_duration().as_secs_f64(),
            );
            for (id, state) in strategy.automaton().states() {
                text.push_str(&format!(
                    "  {} '{}' ({} checks, {:.0}s)\n",
                    id,
                    state.name(),
                    state.checks().len(),
                    state.duration().as_secs_f64()
                ));
            }
            Ok(CommandOutput::ok(text))
        }
        Command::Dot { path } => {
            let strategy = load_strategy(path)?;
            Ok(CommandOutput::ok(strategy.automaton().to_dot()))
        }
        Command::Run {
            path,
            verbose,
            deadline_secs,
            session_shards,
            traffic_rps,
            backend_replicas,
            backend_queue,
            backend_timeout_ms,
        } => {
            let document = load_document(path)?;
            let strategy = bifrost_dsl::compile(&document)?;
            // CLI flag > strategy file's engine section > engine default.
            let shards = session_shards.or(document.engine.session_shards);
            // Any backend flag opts profile-only versions into queued
            // replicas with the given shape.
            let backend_defaults = (backend_replicas.is_some()
                || backend_queue.is_some()
                || backend_timeout_ms.is_some())
            .then(|| {
                BackendDefaults::new(
                    backend_replicas.unwrap_or(1),
                    backend_queue.unwrap_or(bifrost_engine::backends::DEFAULT_QUEUE_CAPACITY),
                    backend_timeout_ms
                        .map(Duration::from_millis)
                        .unwrap_or(bifrost_engine::backends::DEFAULT_BACKEND_TIMEOUT),
                )
            });
            let options = RunOptions {
                verbose: *verbose,
                deadline_secs: *deadline_secs,
                session_shards: shards,
                traffic_rps: *traffic_rps,
                backend_defaults,
            };
            Ok(enact_strategy(strategy, &document.engine, &options))
        }
        Command::Demo { verbose } => Ok(run_demo(*verbose)),
        Command::Bench {
            figure,
            trials,
            threads,
            base_seed,
            max,
            requests,
            quick,
            json,
        } => run_bench(
            figure,
            RunnerConfig::default()
                .with_trials(*trials)
                .with_threads(*threads)
                .with_base_seed(Seed::new(*base_seed)),
            *max,
            *requests,
            *quick,
            json.as_deref(),
        ),
    }
}

/// Runs a paper figure through the multi-trial runner and optionally writes
/// the machine-readable `BENCH_<fig>.json` report.
fn run_bench(
    figure: &str,
    config: RunnerConfig,
    max: Option<usize>,
    requests: Option<usize>,
    quick: bool,
    json: Option<&std::path::Path>,
) -> Result<CommandOutput, CliError> {
    let report = suite::run_figure(figure, quick, max, requests, &config).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown figure '{figure}' (expected one of: {})\n\n{USAGE}",
            suite::FIGURES.join(", ")
        ))
    })?;
    let mut text = render_bench_report(&report);
    if let Some(path) = json {
        std::fs::write(path, report.render_json()).map_err(|e| CliError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        text.push_str(&format!("wrote {}\n", path.display()));
    }
    Ok(CommandOutput::ok(text))
}

fn load_document(path: &PathBuf) -> Result<bifrost_dsl::StrategyDocument, CliError> {
    let source = fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    Ok(bifrost_dsl::parse_document(&source)?)
}

fn load_strategy(path: &PathBuf) -> Result<bifrost_core::Strategy, CliError> {
    Ok(bifrost_dsl::compile(&load_document(path)?)?)
}

/// How `bifrost run` enacts a strategy.
struct RunOptions {
    verbose: bool,
    deadline_secs: u64,
    session_shards: Option<usize>,
    traffic_rps: Option<f64>,
    backend_defaults: Option<BackendDefaults>,
}

/// Builds the queued backend of one `engine: backends:` declaration.
fn queued_from_doc(doc: &BackendDoc) -> QueuedBackend {
    QueuedBackend::new(Duration::from_millis(doc.service_time_ms))
        .with_error_rate(doc.error_rate)
        .with_replicas(doc.replicas)
        .with_queue_capacity(doc.queue_capacity)
        .with_timeout(Duration::from_millis(doc.timeout_ms))
}

/// Enacts a compiled strategy against an engine with an in-process metric
/// store. Without `--traffic` no application feeds the store, so checks
/// without data fail — useful for dry-running check-free strategies and
/// inspecting the enactment timeline. With `--traffic` a seeded
/// request-level workload flows through every proxied service and its
/// backends (shaped by the file's `engine:` section), so checks evaluate
/// observed series: latency, errors, shed rate, utilisation.
fn enact_strategy(
    strategy: bifrost_core::Strategy,
    engine_doc: &EngineDoc,
    options: &RunOptions,
) -> CommandOutput {
    let store = SharedMetricStore::new();
    let mut config = EngineConfig::default();
    if let Some(shards) = options.session_shards {
        config = config.with_session_shards(shards);
    }
    if let Some(defaults) = options.backend_defaults {
        config = config.with_backend_defaults(defaults);
    }
    let mut engine = BifrostEngine::new(config);
    engine.register_store_provider("prometheus", store.clone());
    // Register one proxy per service, defaulting to the first version.
    let registrations: Vec<_> = strategy
        .services()
        .services()
        .map(|(id, _)| (id, strategy.services().versions_of(id)))
        .collect();
    for (service, versions) in &registrations {
        if let Some(default) = versions.first() {
            engine.register_proxy(*service, *default);
        }
    }
    // Attach a traffic stream per proxied service, its backends shaped by
    // the strategy file's engine section.
    let mut streams = Vec::new();
    if let Some(rps) = options.traffic_rps {
        let nominal = strategy.nominal_duration().as_secs() + 30;
        let duration = Duration::from_secs(options.deadline_secs.min(nominal));
        let catalog = strategy.services();
        for (service_id, versions) in &registrations {
            let service_name = catalog
                .service(*service_id)
                .map(|s| s.name().to_string())
                .unwrap_or_else(|| service_id.to_string());
            let load = LoadProfile::paper_profile(duration).with_rate(rps);
            let mut profile =
                TrafficProfile::new(*service_id, load).with_service_label(service_name.clone());
            if let Some(tick) = engine_doc.tick_secs {
                profile = profile.with_tick(Duration::from_secs_f64(tick));
            }
            if let Some(cores) = engine_doc.cores {
                profile = profile.with_cores(cores);
            }
            for vid in versions {
                let Some(version) = catalog.version(*vid) else {
                    continue;
                };
                profile = match engine_doc
                    .backends
                    .iter()
                    .find(|b| b.matches(&service_name, version.name()))
                {
                    Some(doc) => {
                        profile.with_queued_backend(*vid, version.name(), queued_from_doc(doc))
                    }
                    None => profile.with_backend(*vid, version.name(), BackendProfile::default()),
                };
            }
            let handle = engine.attach_traffic(profile, store.clone());
            streams.push((service_name, handle));
        }
    }
    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(options.deadline_secs));
    let dashboard = Dashboard::new().verbose(options.verbose);
    let mut text = dashboard.render(&engine);
    let exit_code = match engine.report(handle) {
        Some(report) if report.succeeded() => 0,
        Some(_) => 1,
        None => 2,
    };
    for (service, stream) in streams {
        let Some(stats) = engine.traffic_stats(stream) else {
            continue;
        };
        text.push_str(&format!(
            "traffic {service}: {} requests, {} errors, {} shed, {} timed out, mean {:.1}ms, p95 {:.1}ms\n",
            stats.requests,
            stats.errors,
            stats.shed,
            stats.timed_out,
            stats.mean_latency_ms(),
            stats.latency_quantile_ms(0.95),
        ));
    }
    text.push_str(&dashboard.progress_line(&engine));
    text.push('\n');
    CommandOutput { text, exit_code }
}

/// Runs the compressed product-replacement scenario end to end (load
/// generation, application, engine) and prints the per-phase overhead table.
fn run_demo(verbose: bool) -> CommandOutput {
    let experiment = OverheadExperiment::compressed();
    let baseline = experiment.run_variant(Variant::Baseline);
    let active = experiment.run_variant(Variant::Active);

    let mut text = String::from("product-replacement demo (compressed timeline)\n\n");
    text.push_str("phase              baseline-mean  active-mean  overhead\n");
    for window in &active.windows {
        let base = baseline.phase_mean(&window.name).unwrap_or(f64::NAN);
        let act = active.phase_mean(&window.name).unwrap_or(f64::NAN);
        text.push_str(&format!(
            "{:<18} {:>10.2}ms {:>10.2}ms {:>8.2}ms\n",
            window.name,
            base,
            act,
            act - base
        ));
    }
    text.push_str(&format!(
        "\nstrategy finished successfully: {}\n",
        active.strategy_succeeded.unwrap_or(false)
    ));
    if verbose {
        text.push_str(&format!(
            "requests recorded: baseline={} active={}\n",
            baseline.recorder.len(),
            active.recorder.len()
        ));
    }
    CommandOutput::ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_basic_commands() {
        assert_eq!(Command::parse(&[]).unwrap(), Command::Help);
        assert_eq!(Command::parse(&strings(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            Command::parse(&strings(&["validate", "s.yml"])).unwrap(),
            Command::Validate {
                path: "s.yml".into()
            }
        );
        assert_eq!(
            Command::parse(&strings(&["dot", "s.yml"])).unwrap(),
            Command::Dot {
                path: "s.yml".into()
            }
        );
        assert_eq!(
            Command::parse(&strings(&[
                "run",
                "s.yml",
                "--verbose",
                "--deadline",
                "600",
                "--shards",
                "16",
                "--traffic",
                "250.5",
                "--replicas",
                "2",
                "--queue-capacity",
                "128",
                "--timeout-ms",
                "250",
            ]))
            .unwrap(),
            Command::Run {
                path: "s.yml".into(),
                verbose: true,
                deadline_secs: 600,
                session_shards: Some(16),
                traffic_rps: Some(250.5),
                backend_replicas: Some(2),
                backend_queue: Some(128),
                backend_timeout_ms: Some(250),
            }
        );
        assert!(Command::parse(&strings(&["run", "s.yml", "--shards", "0"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--shards", "99999999999"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--shards"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--traffic", "0"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--traffic", "-5"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--replicas", "0"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--queue-capacity", "0"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--timeout-ms", "0"])).is_err());
        assert_eq!(
            Command::parse(&strings(&["demo", "-v"])).unwrap(),
            Command::Demo { verbose: true }
        );
    }

    #[test]
    fn parse_rejects_unknown_and_incomplete_commands() {
        assert!(matches!(
            Command::parse(&strings(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(Command::parse(&strings(&["validate"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--deadline"])).is_err());
        assert!(Command::parse(&strings(&["run", "s.yml", "--bogus"])).is_err());
    }

    #[test]
    fn help_command_prints_usage() {
        let output = run_command(&Command::Help).unwrap();
        assert_eq!(output.exit_code, 0);
        assert!(output.text.contains("USAGE"));
    }

    #[test]
    fn validate_and_dot_and_run_on_a_real_file() {
        let dir = std::env::temp_dir().join(format!("bifrost-cli-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("strategy.yml");
        fs::write(
            &path,
            r#"
name: cli-test
engine:
  session_shards: 2
strategy:
  phases:
    - phase: canary
      service: search
      stable: v1
      candidate: v2
      traffic: 5
      duration: 30
    - phase: ab_test
      service: search
      a: v1
      b: v2
      duration: 30
"#,
        )
        .unwrap();

        let validate = run_command(&Command::Validate { path: path.clone() }).unwrap();
        assert_eq!(validate.exit_code, 0);
        assert!(validate.text.contains("cli-test"));
        assert!(validate.text.contains("states: 4"));

        let dot = run_command(&Command::Dot { path: path.clone() }).unwrap();
        assert!(dot.text.starts_with("digraph"));

        let run = run_command(&Command::Run {
            path: path.clone(),
            verbose: false,
            deadline_secs: 3_600,
            session_shards: Some(4),
            traffic_rps: None,
            backend_replicas: None,
            backend_queue: None,
            backend_timeout_ms: None,
        })
        .unwrap();
        // The strategy has no checks, so it auto-passes and succeeds.
        assert_eq!(run.exit_code, 0, "output: {}", run.text);
        assert!(run.text.contains("strategies finished"));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run_command(&Command::Validate {
            path: "/definitely/not/here.yml".into(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn invalid_file_is_reported_as_dsl_error() {
        let dir = std::env::temp_dir().join(format!("bifrost-cli-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.yml");
        fs::write(&path, "name: broken\n").unwrap();
        let err = run_command(&Command::Validate { path: path.clone() }).unwrap_err();
        assert!(matches!(err, CliError::Dsl(_)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_bench_command_with_flags() {
        assert_eq!(
            Command::parse(&strings(&["bench"])).unwrap(),
            Command::Bench {
                figure: "fig7".into(),
                trials: 1,
                // Defaults to the machine's parallelism (thread count
                // never changes results).
                threads: RunnerConfig::auto_threads(),
                base_seed: 42,
                max: None,
                requests: None,
                quick: false,
                json: None,
            }
        );
        assert_eq!(
            Command::parse(&strings(&[
                "bench",
                "--fig",
                "fig9",
                "--trials",
                "4",
                "--threads",
                "2",
                "--base-seed",
                "7",
                "--max",
                "80",
                "--requests",
                "5000",
                "--quick",
                "--json",
                "out.json",
            ]))
            .unwrap(),
            Command::Bench {
                figure: "fig9".into(),
                trials: 4,
                threads: 2,
                base_seed: 7,
                max: Some(80),
                requests: Some(5_000),
                quick: true,
                json: Some("out.json".into()),
            }
        );
        assert!(Command::parse(&strings(&["bench", "--trials"])).is_err());
        assert!(Command::parse(&strings(&["bench", "--trials", "x"])).is_err());
        assert!(Command::parse(&strings(&["bench", "--bogus"])).is_err());
        // Explicit zeros are usage errors, not silently clamped runs.
        assert!(Command::parse(&strings(&["bench", "--trials", "0"])).is_err());
        assert!(Command::parse(&strings(&["bench", "--threads", "0"])).is_err());
    }

    #[test]
    fn run_with_traffic_drives_queued_backends_from_the_engine_section() {
        let dir = std::env::temp_dir().join(format!("bifrost-cli-traffic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traffic.yml");
        fs::write(
            &path,
            r#"
name: traffic-run
engine:
  tick: 0.5
  cores: 4
  backends:
    - service: search
      version: v2
      service_time_ms: 5
      replicas: 2
      queue_capacity: 64
      timeout_ms: 250
strategy:
  phases:
    - phase: canary
      service: search
      stable: v1
      candidate: v2
      traffic: 20
      duration: 30
"#,
        )
        .unwrap();
        let output = run_command(&Command::Run {
            path,
            verbose: false,
            deadline_secs: 600,
            session_shards: None,
            traffic_rps: Some(200.0),
            backend_replicas: Some(4),
            backend_queue: None,
            backend_timeout_ms: None,
        })
        .unwrap();
        assert_eq!(output.exit_code, 0, "output: {}", output.text);
        // The traffic summary line reports routed volume and latency.
        assert!(output.text.contains("traffic search:"), "{}", output.text);
        assert!(output.text.contains("requests"), "{}", output.text);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_command_runs_trials_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("bifrost-cli-bench-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let json = dir.join("BENCH_fig9.json");
        let output = run_command(&Command::Bench {
            figure: "fig9".into(),
            trials: 2,
            threads: 2,
            base_seed: 7,
            max: Some(8),
            requests: None,
            quick: true,
            json: Some(json.clone()),
        })
        .unwrap();
        assert_eq!(output.exit_code, 0);
        assert!(output.text.contains("checks=8"), "{}", output.text);
        assert!(output.text.contains("wrote"));
        let report =
            bifrost_bench::BenchReport::parse(&fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(report.figure, "fig9");
        assert_eq!(report.trials, 2);
        fs::remove_dir_all(&dir).ok();

        let err = run_command(&Command::Bench {
            figure: "nope".into(),
            trials: 1,
            threads: 1,
            base_seed: 42,
            max: None,
            requests: None,
            quick: true,
            json: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown figure"));
    }

    #[test]
    fn bench_traffic_figure_runs_with_request_override() {
        let output = run_command(&Command::Bench {
            figure: "traffic".into(),
            trials: 1,
            threads: 1,
            base_seed: 42,
            max: None,
            requests: Some(2_000),
            quick: true,
            json: None,
        })
        .unwrap();
        assert_eq!(output.exit_code, 0);
        assert!(output.text.contains("latency/mean_ms"), "{}", output.text);
        assert!(output.text.contains("split/abs_error_pct"));
    }

    #[test]
    fn demo_runs_and_reports_phases() {
        let output = run_command(&Command::Demo { verbose: true }).unwrap();
        assert_eq!(output.exit_code, 0);
        assert!(output.text.contains("Canary"));
        assert!(output.text.contains("Dark Launch"));
        assert!(output.text.contains("requests recorded"));
    }

    #[test]
    fn run_deadline_is_virtual_time_not_wall_clock() {
        // A week-long strategy enacts in well under a second of wall time.
        let dir = std::env::temp_dir().join(format!("bifrost-cli-long-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("long.yml");
        fs::write(
            &path,
            r#"
name: long-running
strategy:
  phases:
    - phase: rollout
      service: search
      stable: v1
      candidate: v2
      from_traffic: 10
      to_traffic: 100
      step: 10
      step_duration: 86400
"#,
        )
        .unwrap();
        let started = std::time::Instant::now();
        let output = run_command(&Command::Run {
            path,
            verbose: false,
            deadline_secs: 30 * 86_400,
            session_shards: None,
            traffic_rps: None,
            backend_replicas: None,
            backend_queue: None,
            backend_timeout_ms: None,
        })
        .unwrap();
        assert_eq!(output.exit_code, 0);
        assert!(started.elapsed() < Duration::from_secs(10));
        fs::remove_dir_all(&dir).ok();
    }
}
