//! The `bifrost` binary: parse arguments, run the command, print the result.

use bifrost_cli::{parse_args, run_command};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::from(2);
        }
    };
    match run_command(&command) {
        Ok(output) => {
            print!("{}", output.text);
            ExitCode::from(output.exit_code.clamp(0, 255) as u8)
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(1)
        }
    }
}
