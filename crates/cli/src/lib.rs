//! # bifrost-cli
//!
//! The Bifrost command-line interface: validate strategy files written in
//! the DSL, render their automata, and enact them against the simulated
//! deployment while streaming dashboard-style status updates.
//!
//! The binary (`bifrost`) is a thin wrapper around this library so that the
//! command implementations stay unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod commands;
pub mod dashboard;

pub use commands::{run_command, CliError, Command, CommandOutput};
pub use dashboard::Dashboard;

/// Parses raw process arguments (excluding the binary name) into a command.
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the expected syntax if the
/// arguments cannot be understood.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    commands::Command::parse(args)
}
