//! A text dashboard rendering the engine's event stream.
//!
//! The paper's Bifrost dashboard is a web UI fed through WebSockets; this
//! reproduction renders the same information — strategy status, state
//! transitions, check results, proxy updates — as plain text suitable for a
//! terminal or a CI log.

use bifrost_engine::{BifrostEngine, EngineEvent, StrategyReport};
use std::fmt::Write as _;

/// Renders engine state into human-readable status text.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    /// Show individual check executions (verbose mode).
    pub verbose: bool,
}

impl Dashboard {
    /// Creates a dashboard with default (non-verbose) settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables verbose output (builder style).
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Renders the full status of an engine: one block per strategy plus the
    /// recent event tail.
    pub fn render(&self, engine: &BifrostEngine) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "bifrost engine @ {}", engine.now());
        let reports = engine.reports();
        let _ = writeln!(out, "strategies: {}", reports.len());
        for report in &reports {
            let _ = writeln!(out, "  {}", self.render_report(report));
        }
        let _ = writeln!(out, "events: {}", engine.events().len());
        for event in self.interesting_events(engine) {
            let _ = writeln!(out, "  {}", event.describe());
        }
        out
    }

    /// Renders a single strategy report line.
    pub fn render_report(&self, report: &StrategyReport) -> String {
        report.summary()
    }

    /// The events worth showing: everything in verbose mode, otherwise only
    /// lifecycle events (scheduled / started / state entered / exception /
    /// completed).
    fn interesting_events<'a>(&self, engine: &'a BifrostEngine) -> Vec<&'a EngineEvent> {
        engine
            .events()
            .events()
            .iter()
            .filter(|event| {
                self.verbose
                    || !matches!(
                        event,
                        EngineEvent::CheckExecuted { .. } | EngineEvent::ProxyConfigured { .. }
                    )
            })
            .collect()
    }

    /// Renders a one-line progress summary (used while a run is in flight).
    pub fn progress_line(&self, engine: &BifrostEngine) -> String {
        let reports = engine.reports();
        let finished = reports.iter().filter(|r| r.is_finished()).count();
        let succeeded = reports.iter().filter(|r| r.succeeded()).count();
        format!(
            "{} | {}/{} strategies finished ({} succeeded)",
            engine.now(),
            finished,
            reports.len(),
            succeeded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::prelude::*;
    use bifrost_engine::EngineConfig;
    use bifrost_metrics::SharedMetricStore;
    use bifrost_simnet::SimTime;

    fn engine_with_strategy() -> BifrostEngine {
        let mut catalog = ServiceCatalog::new();
        let search = catalog.add_service(Service::new("search"));
        let stable = catalog
            .add_version(
                search,
                ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
            )
            .unwrap();
        let fast = catalog
            .add_version(
                search,
                ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)),
            )
            .unwrap();
        let strategy = StrategyBuilder::new("dash-test", catalog)
            .phase(
                PhaseSpec::canary(
                    "canary",
                    search,
                    stable,
                    fast,
                    Percentage::new(5.0).unwrap(),
                )
                .duration_secs(30),
            )
            .build()
            .unwrap();
        let mut engine = BifrostEngine::new(EngineConfig::default());
        engine.register_store_provider("prometheus", SharedMetricStore::new());
        engine.register_proxy(search, stable);
        engine.schedule(strategy, SimTime::ZERO);
        engine.run_until(SimTime::from_secs(120));
        engine
    }

    #[test]
    fn render_contains_strategy_and_events() {
        let engine = engine_with_strategy();
        let dashboard = Dashboard::new();
        let text = dashboard.render(&engine);
        assert!(text.contains("bifrost engine"));
        assert!(text.contains("dash-test"));
        assert!(text.contains("strategies: 1"));
        assert!(text.contains("events:"));
        // Non-verbose output hides check executions but shows completions.
        assert!(text.contains("completed"));
    }

    #[test]
    fn verbose_mode_shows_more_events() {
        let engine = engine_with_strategy();
        let quiet = Dashboard::new().render(&engine);
        let verbose = Dashboard::new().verbose(true).render(&engine);
        assert!(verbose.lines().count() >= quiet.lines().count());
    }

    #[test]
    fn progress_line_counts_finished_strategies() {
        let engine = engine_with_strategy();
        let line = Dashboard::new().progress_line(&engine);
        assert!(line.contains("1/1 strategies finished"));
        assert!(line.contains("(1 succeeded)"));
    }
}
