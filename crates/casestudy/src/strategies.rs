//! The release strategies used by the evaluation.
//!
//! * [`evaluation_strategy`] — the four-phase strategy of the end-user
//!   overhead experiment (Section 5.1): canary launch of product A and B,
//!   dark launch of both, A/B test between them, and gradual rollout of the
//!   winner. Because the canary and dark-launch phases involve *three*
//!   product versions at once, the automaton is assembled directly from the
//!   formal model rather than through the two-version phase builder.
//! * [`trimmed_strategy`] — the variant used by the parallel-strategies
//!   experiment (Section 5.2.1): same four phases, product B removed, final
//!   phase shortened (280 s total).
//! * [`parallel_check_strategy`] — the two-phase strategy with `8·n`
//!   identical checks of the parallel-checks experiment (Section 5.2.2).
//! * [`fastsearch_strategy`] — the running example of Sections 2–3
//!   (fastSearch canary + gradual rollout + A/B test), used by examples and
//!   documentation.

use crate::app::CaseStudyTopology;
use bifrost_core::automaton::AutomatonBuilder;
use bifrost_core::check::{CheckSpec, MetricQuery, QueryAggregation, Validator};
use bifrost_core::ids::{CheckId, IdAllocator, StateId};
use bifrost_core::outcome::OutcomeMapping;
use bifrost_core::phase::{PhaseCheck, PhaseSpec};
use bifrost_core::prelude::*;
use bifrost_core::routing::{DarkLaunchRoute, RoutingMode, RoutingRule, TrafficSplit};
use bifrost_core::state::State;
use bifrost_core::thresholds::Thresholds;
use bifrost_core::timer::Timer;
use bifrost_core::user::UserSelector;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Phase durations of the end-user overhead experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvaluationDurations {
    /// Canary phase duration.
    pub canary: Duration,
    /// Dark-launch phase duration.
    pub dark: Duration,
    /// A/B test duration.
    pub ab: Duration,
    /// Seconds per gradual rollout step.
    pub rollout_step: Duration,
}

impl Default for EvaluationDurations {
    fn default() -> Self {
        // The paper compresses the experiment: 60 s canary, 60 s dark launch,
        // 60 s A/B test, 200 s gradual rollout (20 steps × 10 s).
        Self {
            canary: Duration::from_secs(60),
            dark: Duration::from_secs(60),
            ab: Duration::from_secs(60),
            rollout_step: Duration::from_secs(10),
        }
    }
}

/// An error-count check against a product version, re-executed every 12 s.
fn error_check(version_name: &str, repetitions: u32, interval: Duration) -> Check {
    // Placeholder id; the caller re-assigns ids through its allocator.
    Check::basic(
        CheckId::new(0),
        format!("errors-{version_name}"),
        CheckSpec::single(
            MetricQuery::new(
                "prometheus",
                format!("errors_{version_name}"),
                "request_errors",
            )
            .with_label("version", version_name)
            .with_aggregation(QueryAggregation::Rate)
            .with_window_secs(interval.as_secs().max(1)),
            Validator::LessThan(5.0),
        ),
        Timer::new(interval, repetitions).expect("static timer"),
        OutcomeMapping::binary(repetitions as i64, -1, 1).expect("static mapping"),
    )
}

fn with_id(check: Check, ids: &mut IdAllocator) -> Check {
    match check.kind().clone() {
        bifrost_core::check::CheckKind::Basic(basic) => Check::basic(
            ids.next_id(),
            check.name(),
            check.spec().clone(),
            *check.timer(),
            basic.mapping,
        ),
        bifrost_core::check::CheckKind::Exception(exc) => Check::exception(
            ids.next_id(),
            check.name(),
            check.spec().clone(),
            *check.timer(),
            exc.fallback,
        ),
    }
}

/// An always-passing check spanning the given duration, used by phases that
/// have no explicit monitoring (e.g. the paper's dark launch, which dropped
/// its CPU checks to avoid spurious rollbacks during the load test).
fn pass_check(name: &str, duration: Duration, ids: &mut IdAllocator) -> Check {
    Check::basic(
        ids.next_id(),
        name.to_string(),
        CheckSpec::all_of(vec![]),
        Timer::new(duration, 1).expect("non-zero duration"),
        OutcomeMapping::binary(0, 0, 1).expect("static mapping"),
    )
}

/// A sales-comparison check evaluated once at the end of the A/B phase: the
/// number of items sold by product A must exceed zero (the winner decision
/// itself is taken by the experiment harness comparing both series).
fn sales_check(version_name: &str, duration: Duration, ids: &mut IdAllocator) -> Check {
    Check::basic(
        ids.next_id(),
        format!("sales-{version_name}"),
        CheckSpec::single(
            MetricQuery::new(
                "prometheus",
                format!("sales_{version_name}"),
                "items_sold_total",
            )
            .with_label("version", version_name)
            .with_aggregation(QueryAggregation::Last),
            Validator::GreaterThan(0.0),
        ),
        Timer::new(duration, 1).expect("non-zero duration"),
        OutcomeMapping::binary(1, -1, 1).expect("static mapping"),
    )
}

/// Builds the four-phase release strategy of the end-user overhead
/// experiment over the given case-study topology.
///
/// Phases (Section 5.1.2): canary launch of product A and B at 5 % each,
/// dark launch duplicating 100 % of product traffic to both alternatives,
/// a 50/50 A/B test between A and B with sticky sessions, and a gradual
/// rollout of the winner (product A) from 5 % to 100 % in 5 % steps.
pub fn evaluation_strategy(
    topology: &CaseStudyTopology,
    durations: EvaluationDurations,
) -> Strategy {
    let mut state_ids = IdAllocator::new();
    let mut check_ids = IdAllocator::new();
    let service = topology.product_service;
    let stable = topology.product_stable;
    let a = topology.product_a;
    let b = topology.product_b;

    // Pre-allocate state ids: canary, dark, ab, 20 rollout steps, success,
    // rollback.
    let canary: StateId = state_ids.next_id();
    let dark: StateId = state_ids.next_id();
    let ab: StateId = state_ids.next_id();
    let rollout_steps: Vec<StateId> = (0..20).map(|_| state_ids.next_id()).collect();
    let success: StateId = state_ids.next_id();
    let rollback: StateId = state_ids.next_id();

    let check_interval = Duration::from_secs(12);
    let canary_reps = (durations.canary.as_secs() / check_interval.as_secs()).max(1) as u32;

    // Phase 1: canary — 90 % stable, 5 % product A, 5 % product B, two
    // parallel error checks (one per alternative), re-executed every 12 s.
    let canary_split = TrafficSplit::new(vec![
        (stable, Percentage::new(90.0).expect("static")),
        (a, Percentage::new(5.0).expect("static")),
        (b, Percentage::new(5.0).expect("static")),
    ])
    .expect("static split");
    let canary_state = State::builder(canary, "canary")
        .routing(RoutingRule::Split {
            service,
            split: canary_split,
            sticky: false,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        })
        .check(with_id(
            error_check("product-a", canary_reps, check_interval),
            &mut check_ids,
        ))
        .check(with_id(
            error_check("product-b", canary_reps, check_interval),
            &mut check_ids,
        ))
        .thresholds(Thresholds::single(1))
        .duration(durations.canary)
        .build()
        .expect("static state");

    // Phase 2: dark launch — all live traffic stays on the stable version,
    // 100 % duplicated to both alternatives.
    let dark_state = State::builder(dark, "dark-launch")
        .routing(RoutingRule::Split {
            service,
            split: TrafficSplit::all_to(stable),
            sticky: false,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        })
        .routing(RoutingRule::Shadow {
            service,
            route: DarkLaunchRoute::new(stable, a, Percentage::full()),
        })
        .routing(RoutingRule::Shadow {
            service,
            route: DarkLaunchRoute::new(stable, b, Percentage::full()),
        })
        .check(pass_check("dark-pass", durations.dark, &mut check_ids))
        .thresholds(Thresholds::single(0))
        .duration(durations.dark)
        .build()
        .expect("static state");

    // Phase 3: A/B test — 50/50 between A and B, sticky sessions, sales
    // metric evaluated once at the end.
    let ab_state = State::builder(ab, "ab-test")
        .routing(RoutingRule::Split {
            service,
            split: TrafficSplit::ab(a, b).expect("distinct versions"),
            sticky: true,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        })
        .check(sales_check("product-a", durations.ab, &mut check_ids))
        .thresholds(Thresholds::single(0))
        .duration(durations.ab)
        .build()
        .expect("static state");

    // Phase 4: gradual rollout of the winner (product A) 5 % → 100 %.
    let mut rollout_states = Vec::new();
    for (i, state_id) in rollout_steps.iter().enumerate() {
        let share = Percentage::new(5.0 * (i + 1) as f64).expect("5..=100");
        let state = State::builder(*state_id, format!("rollout-{}pct", share.value()))
            .routing(RoutingRule::Split {
                service,
                split: TrafficSplit::canary(stable, a, share).expect("static split"),
                sticky: false,
                selector: UserSelector::All,
                mode: RoutingMode::CookieBased,
            })
            .check(pass_check(
                &format!("rollout-pass-{i}"),
                durations.rollout_step,
                &mut check_ids,
            ))
            .thresholds(Thresholds::single(0))
            .duration(durations.rollout_step)
            .build()
            .expect("static state");
        rollout_states.push(state);
    }

    let success_state = State::builder(success, "success")
        .routing(RoutingRule::Split {
            service,
            split: TrafficSplit::all_to(a),
            sticky: false,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        })
        .duration(Duration::from_secs(1))
        .build()
        .expect("static state");
    let rollback_state = State::builder(rollback, "rollback")
        .routing(RoutingRule::Split {
            service,
            split: TrafficSplit::all_to(stable),
            sticky: false,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        })
        .duration(Duration::from_secs(1))
        .build()
        .expect("static state");

    let mut builder = AutomatonBuilder::new()
        .state(canary_state)
        .state(dark_state)
        .state(ab_state)
        .state(success_state)
        .state(rollback_state)
        .start(canary)
        .final_state(success)
        .final_state(rollback)
        // Canary: both error checks must pass (outcome 2 > threshold 1).
        .transition(canary, vec![rollback, dark])
        .transition(dark, vec![rollback, ab])
        .transition(ab, vec![rollback, rollout_steps[0]]);
    for state in rollout_states {
        builder = builder.state(state);
    }
    for (i, step) in rollout_steps.iter().enumerate() {
        let next = rollout_steps.get(i + 1).copied().unwrap_or(success);
        builder = builder.transition(*step, vec![rollback, next]);
    }
    let automaton = builder.build().expect("static automaton");

    Strategy::from_parts(
        StrategyId::new(0),
        "product-replacement",
        topology.catalog.clone(),
        automaton,
        success,
        rollback,
    )
    .expect("static strategy")
}

/// The trimmed strategy of the parallel-strategies experiment: product B and
/// its checks removed, final phase shortened to 100 s (280 s total: 60 s
/// canary + 60 s dark launch + 60 s A/B + 100 s rollout).
pub fn trimmed_strategy(topology: &CaseStudyTopology) -> Strategy {
    let service = topology.product_service;
    let stable = topology.product_stable;
    let a = topology.product_a;

    let check = PhaseCheck::basic(
        "errors-product-a",
        CheckSpec::single(
            MetricQuery::new("prometheus", "errors_product_a", "request_errors")
                .with_label("version", "product-a")
                .with_aggregation(QueryAggregation::Rate)
                .with_window_secs(12),
            Validator::LessThan(5.0),
        ),
        Timer::from_secs(12, 5).expect("static timer"),
        OutcomeMapping::binary(0, -1, 1).expect("static mapping"),
    );

    StrategyBuilder::new("trimmed-product-replacement", topology.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary",
                service,
                stable,
                a,
                Percentage::new(5.0).expect("static"),
            )
            .check(check.clone())
            .duration_secs(60),
        )
        .phase(
            PhaseSpec::dark_launch("dark-launch", service, stable, a, Percentage::full())
                .duration_secs(60),
        )
        .phase(PhaseSpec::ab_test("ab-test", service, stable, a).duration_secs(60))
        .phase(PhaseSpec::gradual_rollout(
            "rollout",
            service,
            stable,
            a,
            Percentage::new(10.0).expect("static"),
            Percentage::new(100.0).expect("static"),
            Percentage::new(10.0).expect("static"),
            Duration::from_secs(10),
        ))
        .build()
        .expect("static strategy")
}

/// The strategy of the parallel-checks experiment: two identical 60-second
/// phases, each carrying `8 * n` checks (3 availability checks against the
/// product service and 5 Prometheus queries, duplicated `n` times).
pub fn parallel_check_strategy(topology: &CaseStudyTopology, n: usize) -> Strategy {
    let service = topology.product_service;
    let stable = topology.product_stable;
    let a = topology.product_a;

    let phase_checks = |phase: usize| -> Vec<PhaseCheck> {
        let mut checks = Vec::with_capacity(8 * n);
        for copy in 0..n {
            for i in 0..3 {
                checks.push(PhaseCheck::basic(
                    format!("availability-{phase}-{copy}-{i}"),
                    CheckSpec::single(
                        MetricQuery::new("prometheus", format!("up_{copy}_{i}"), "requests_total")
                            .with_label("version", "product")
                            .with_aggregation(QueryAggregation::Count)
                            .with_window_secs(60),
                        Validator::GreaterOrEqual(0.0),
                    ),
                    Timer::from_secs(12, 5).expect("static timer"),
                    OutcomeMapping::binary(0, -1, 1).expect("static mapping"),
                ));
            }
            for i in 0..5 {
                checks.push(PhaseCheck::basic(
                    format!("prometheus-{phase}-{copy}-{i}"),
                    CheckSpec::single(
                        MetricQuery::new(
                            "prometheus",
                            format!("cpu_{copy}_{i}"),
                            "container_cpu_utilization",
                        )
                        .with_label("container", "product")
                        .with_aggregation(QueryAggregation::Mean)
                        .with_window_secs(60),
                        Validator::LessThan(1_000.0),
                    ),
                    Timer::from_secs(12, 5).expect("static timer"),
                    OutcomeMapping::binary(0, -1, 1).expect("static mapping"),
                ));
            }
        }
        checks
    };

    let mut phase1 = PhaseSpec::canary(
        "phase-1",
        service,
        stable,
        a,
        Percentage::new(5.0).expect("static"),
    )
    .duration_secs(60);
    for check in phase_checks(1) {
        phase1 = phase1.check(check);
    }
    let mut phase2 = PhaseSpec::canary(
        "phase-2",
        service,
        stable,
        a,
        Percentage::new(5.0).expect("static"),
    )
    .duration_secs(60);
    for check in phase_checks(2) {
        phase2 = phase2.check(check);
    }

    StrategyBuilder::new(
        format!("parallel-checks-{}", 8 * n),
        topology.catalog.clone(),
    )
    .phase(phase1)
    .phase(phase2)
    .build()
    .expect("static strategy")
}

/// The running example of the paper (Sections 2–3): the fastSearch
/// reimplementation is canary-tested on 1 % of the US users, gradually
/// rolled out to 50 %, A/B-tested against the stable search for five days,
/// and finally rolled out completely.
pub fn fastsearch_strategy(topology: &CaseStudyTopology) -> Strategy {
    let service = topology.search_service;
    let stable = topology.search_stable;
    let fast = topology.fast_search;
    let day = Duration::from_secs(24 * 3600);

    let response_time_check = PhaseCheck::basic(
        "response-time",
        CheckSpec::single(
            MetricQuery::new("prometheus", "fastsearch_rt", "response_time_ms")
                .with_label("version", "fastSearch")
                .with_aggregation(QueryAggregation::Mean)
                .with_window_secs(600),
            Validator::LessThan(150.0),
        ),
        Timer::new(Duration::from_secs(600), 100).expect("static timer"),
        OutcomeMapping::new(
            Thresholds::new(vec![75, 95]).expect("static"),
            vec![-5, 4, 5],
        )
        .expect("static mapping"),
    );
    let sales_check = PhaseCheck::basic(
        "items-sold",
        CheckSpec::single(
            MetricQuery::new("prometheus", "sales_fastsearch", "items_sold_total")
                .with_label("version", "fastSearch")
                .with_aggregation(QueryAggregation::Last),
            Validator::GreaterThan(0.0),
        ),
        Timer::new(5 * day, 1).expect("static timer"),
        OutcomeMapping::binary(1, -1, 1).expect("static mapping"),
    );

    StrategyBuilder::new("fastsearch-rollout", topology.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary-1pct",
                service,
                stable,
                fast,
                Percentage::new(1.0).expect("static"),
            )
            .check(response_time_check.clone())
            .selector(UserSelector::attribute("country", "US"))
            .duration(day),
        )
        .phase(PhaseSpec::gradual_rollout(
            "ramp-to-50",
            service,
            stable,
            fast,
            Percentage::new(5.0).expect("static"),
            Percentage::new(50.0).expect("static"),
            Percentage::new(45.0 / 3.0).expect("static"),
            day,
        ))
        .phase(
            PhaseSpec::ab_test("ab-search-vs-fastsearch", service, stable, fast)
                .check(sales_check)
                .duration(5 * day),
        )
        .phase(PhaseSpec::gradual_rollout(
            "full-rollout",
            service,
            stable,
            fast,
            Percentage::new(75.0).expect("static"),
            Percentage::new(100.0).expect("static"),
            Percentage::new(25.0).expect("static"),
            day,
        ))
        .build()
        .expect("static strategy")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_strategy_structure() {
        let topology = CaseStudyTopology::new();
        let strategy = evaluation_strategy(&topology, EvaluationDurations::default());
        // canary + dark + ab + 20 rollout + success + rollback = 25 states.
        assert_eq!(strategy.automaton().state_count(), 25);
        assert_eq!(strategy.name(), "product-replacement");
        strategy.validate().unwrap();
        // Nominal duration: 60 + 60 + 60 + 20*10 = 380 s.
        assert_eq!(strategy.nominal_duration(), Duration::from_secs(380));
        // The canary state splits across three versions.
        let canary = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        match canary.routing().first().unwrap() {
            RoutingRule::Split { split, .. } => assert_eq!(split.shares().len(), 3),
            other => panic!("expected split, got {other:?}"),
        }
        assert_eq!(canary.checks().len(), 2);
        // The dark-launch state shadows to both alternatives.
        let dark = strategy.automaton().state_by_name("dark-launch").unwrap();
        assert_eq!(dark.routing().iter().filter(|r| r.is_shadow()).count(), 2);
        // The A/B state is sticky.
        let ab = strategy.automaton().state_by_name("ab-test").unwrap();
        match ab.routing().first().unwrap() {
            RoutingRule::Split { sticky, split, .. } => {
                assert!(sticky);
                assert_eq!(split.shares().len(), 2);
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn evaluation_strategy_with_custom_durations() {
        let topology = CaseStudyTopology::new();
        let durations = EvaluationDurations {
            canary: Duration::from_secs(30),
            dark: Duration::from_secs(30),
            ab: Duration::from_secs(30),
            rollout_step: Duration::from_secs(5),
        };
        let strategy = evaluation_strategy(&topology, durations);
        assert_eq!(
            strategy.nominal_duration(),
            Duration::from_secs(30 + 30 + 30 + 100)
        );
    }

    #[test]
    fn trimmed_strategy_lasts_280_seconds() {
        let topology = CaseStudyTopology::new();
        let strategy = trimmed_strategy(&topology);
        // 60 + 60 + 60 + 10 steps × 10 s = 280 s.
        assert_eq!(strategy.nominal_duration(), Duration::from_secs(280));
        strategy.validate().unwrap();
        // canary + dark + ab + 10 rollout steps + success + rollback.
        assert_eq!(strategy.automaton().state_count(), 15);
    }

    #[test]
    fn parallel_check_strategy_has_8n_checks_per_phase() {
        let topology = CaseStudyTopology::new();
        for n in [1usize, 3, 10] {
            let strategy = parallel_check_strategy(&topology, n);
            let start = strategy
                .automaton()
                .state(strategy.automaton().start())
                .unwrap();
            assert_eq!(start.checks().len(), 8 * n);
            // Two phases plus success/rollback.
            assert_eq!(strategy.automaton().state_count(), 4);
            strategy.validate().unwrap();
        }
    }

    #[test]
    fn fastsearch_strategy_matches_running_example_shape() {
        let topology = CaseStudyTopology::new();
        let strategy = fastsearch_strategy(&topology);
        strategy.validate().unwrap();
        // 1 canary + ramp (5,20,35,50 → 4) + ab + full rollout (75,100 → 2)
        // + success + rollback = 10 states.
        assert_eq!(strategy.automaton().state_count(), 10);
        // Nominal duration ≈ 1 day + 4 days + 5 days + 2 days = 12 days.
        let days = strategy.nominal_duration().as_secs_f64() / 86_400.0;
        assert!((days - 12.0).abs() < 0.1, "days {days}");
        // The canary restricts itself to US users.
        let canary = strategy
            .automaton()
            .state(strategy.automaton().start())
            .unwrap();
        match canary.routing().first().unwrap() {
            RoutingRule::Split { selector, .. } => {
                assert_eq!(selector, &UserSelector::attribute("country", "US"));
            }
            other => panic!("expected split, got {other:?}"),
        }
        // The paper's response-time output mapping is used verbatim.
        let check = &canary.checks()[0];
        assert_eq!(check.timer().repetitions(), 100);
    }
}
