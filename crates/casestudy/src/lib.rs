//! # bifrost-casestudy
//!
//! The microservice-based case study application used throughout the paper's
//! evaluation, rebuilt on top of the simulation substrate, together with the
//! release strategies and deployments of the three experiments:
//!
//! * the **end-user overhead** experiment (Figure 6 / Table 1): a 7-service
//!   e-commerce application on 12 single-core VMs, a 35 req/s JMeter-style
//!   workload, and a four-phase release strategy (canary → dark launch →
//!   A/B test → gradual rollout) replacing the product service,
//! * the **parallel strategies** experiment (Figures 7–8): the engine on its
//!   own single-core VM enacting 1–200 copies of a trimmed strategy, and
//! * the **parallel checks** experiment (Figures 9–10): a trivial two-phase
//!   strategy with 8·n identical checks.
//!
//! The application topology mirrors the paper: an nginx entry point, an
//! HTML/JS frontend, three REST services (product, search, auth), MongoDB,
//! Prometheus (the shared metric store), and cAdvisor (the cluster's
//! resource scraper). The product service exists in three versions (stable,
//! product A, product B); the search service in two (stable, fastSearch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod model;
pub mod overhead;
pub mod strategies;

pub use app::{CaseStudyApp, CaseStudyTopology, ProxyDeployment};
pub use model::{ServiceCosts, VersionBehavior};
pub use overhead::{OverheadExperiment, OverheadRun, PhasePlan, Variant};
pub use strategies::{
    evaluation_strategy, fastsearch_strategy, parallel_check_strategy, trimmed_strategy,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::app::{CaseStudyApp, CaseStudyTopology, ProxyDeployment};
    pub use crate::model::{ServiceCosts, VersionBehavior};
    pub use crate::overhead::{OverheadExperiment, OverheadRun, PhasePlan, Variant};
    pub use crate::strategies::{
        evaluation_strategy, fastsearch_strategy, parallel_check_strategy, trimmed_strategy,
    };
}
