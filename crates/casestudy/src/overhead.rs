//! The end-user overhead experiment (Figure 6 / Table 1).
//!
//! The experiment runs the JMeter-style workload against the case-study
//! application in three variations:
//!
//! * **baseline** — no Bifrost components deployed,
//! * **inactive** — proxies deployed but no strategy executing, and
//! * **active** — proxies deployed and the four-phase release strategy
//!   (canary → dark launch → A/B test → gradual rollout) executing.
//!
//! Response times are recorded per request, the timeline is divided into the
//! four phase windows, and the runner produces the 3-second moving-average
//! series of Figure 6 and the per-phase summary statistics of Table 1.

use crate::app::{CaseStudyApp, ProxyDeployment};
use crate::strategies::{evaluation_strategy, EvaluationDurations};
use bifrost_engine::{BifrostEngine, EngineConfig};
use bifrost_metrics::{SharedMetricStore, SummaryStats};
use bifrost_simnet::{SimRng, SimTime};
use bifrost_workload::{LoadProfile, PhaseWindow, ResponseRecorder};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The three deployment variations compared by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// No middleware deployed.
    Baseline,
    /// Proxies deployed, no strategy running.
    Inactive,
    /// Proxies deployed, the release strategy executing.
    Active,
}

impl Variant {
    /// All variants in presentation order.
    pub const ALL: [Variant; 3] = [Variant::Baseline, Variant::Inactive, Variant::Active];

    /// The label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::Inactive => "inactive",
            Variant::Active => "active",
        }
    }
}

/// The phase timeline of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// Seconds of ramp-up plus health-checking before the strategy starts.
    pub warmup: Duration,
    /// The phase durations.
    pub durations: EvaluationDurations,
}

impl Default for PhasePlan {
    fn default() -> Self {
        Self {
            // 30 s ramp-up + 60 s health checks, as in the paper.
            warmup: Duration::from_secs(90),
            durations: EvaluationDurations::default(),
        }
    }
}

impl PhasePlan {
    /// A compressed plan for fast tests: shorter warm-up and phases.
    pub fn compressed() -> Self {
        Self {
            warmup: Duration::from_secs(20),
            durations: EvaluationDurations {
                canary: Duration::from_secs(20),
                dark: Duration::from_secs(20),
                ab: Duration::from_secs(20),
                rollout_step: Duration::from_secs(3),
            },
        }
    }

    /// When the release strategy starts (after the warm-up).
    pub fn strategy_start(&self) -> SimTime {
        SimTime::ZERO + self.warmup
    }

    /// Total experiment duration: warm-up plus all phases plus a small
    /// drain-out margin.
    pub fn total_duration(&self) -> Duration {
        self.warmup
            + self.durations.canary
            + self.durations.dark
            + self.durations.ab
            + self.durations.rollout_step * 20
            + Duration::from_secs(10)
    }

    /// The four phase windows (relative to the experiment clock).
    pub fn windows(&self) -> Vec<PhaseWindow> {
        let start = self.strategy_start();
        let canary_end = start + self.durations.canary;
        let dark_end = canary_end + self.durations.dark;
        let ab_end = dark_end + self.durations.ab;
        let rollout_end = ab_end + self.durations.rollout_step * 20;
        vec![
            PhaseWindow::new("Canary", start, canary_end),
            PhaseWindow::new("Dark Launch", canary_end, dark_end),
            PhaseWindow::new("A/B Test", dark_end, ab_end),
            PhaseWindow::new("Gradual Rollout", ab_end, rollout_end),
        ]
    }
}

/// The outcome of one run of one variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadRun {
    /// Which variant was executed.
    pub variant: Variant,
    /// The recorded response times.
    pub recorder: ResponseRecorder,
    /// The phase windows of the run.
    pub windows: Vec<PhaseWindow>,
    /// Whether the release strategy (if any) finished successfully.
    pub strategy_succeeded: Option<bool>,
}

impl OverheadRun {
    /// Per-phase summary statistics (one Table 1 column group).
    pub fn phase_summaries(&self) -> Vec<(String, Option<SummaryStats>)> {
        self.windows
            .iter()
            .map(|w| (w.name.clone(), self.recorder.summary(Some(w))))
            .collect()
    }

    /// The Figure 6 series: 3-second moving average of response times.
    pub fn moving_average(&self) -> Vec<(f64, f64)> {
        self.recorder.moving_average_series(Duration::from_secs(3))
    }

    /// Mean response time (ms) during one named phase.
    pub fn phase_mean(&self, phase: &str) -> Option<f64> {
        let window = self.windows.iter().find(|w| w.name == phase)?;
        self.recorder.mean_ms(Some(window))
    }
}

/// The end-user overhead experiment runner.
#[derive(Debug, Clone)]
pub struct OverheadExperiment {
    plan: PhasePlan,
    load: LoadProfile,
    seed: u64,
}

impl OverheadExperiment {
    /// Creates the experiment with the paper's plan and load profile.
    pub fn paper() -> Self {
        let plan = PhasePlan::default();
        let load = LoadProfile::paper_profile(plan.total_duration());
        Self {
            plan,
            load,
            seed: 42,
        }
    }

    /// Creates a compressed experiment suitable for tests and quick demos.
    pub fn compressed() -> Self {
        let plan = PhasePlan::compressed();
        let load = LoadProfile::paper_profile(plan.total_duration()).with_rate(25.0);
        Self {
            plan,
            load,
            seed: 42,
        }
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the load profile (builder style).
    pub fn with_load(mut self, load: LoadProfile) -> Self {
        self.load = load;
        self
    }

    /// The phase plan in use.
    pub fn plan(&self) -> &PhasePlan {
        &self.plan
    }

    /// Runs one variant once and returns its recorded results.
    pub fn run_variant(&self, variant: Variant) -> OverheadRun {
        let store = SharedMetricStore::new();
        let deployment = match variant {
            Variant::Baseline => ProxyDeployment::None,
            Variant::Inactive | Variant::Active => ProxyDeployment::Deployed,
        };
        let mut app = CaseStudyApp::deploy(store.clone(), deployment, self.seed);
        let topology = app.topology().clone();

        // The engine only participates in the active variant.
        let mut engine = (variant == Variant::Active).then(|| {
            let mut engine = BifrostEngine::new(EngineConfig::default());
            engine.register_store_provider("prometheus", store.clone());
            let product_proxy =
                engine.register_proxy(topology.product_service, topology.product_stable);
            let search_proxy =
                engine.register_proxy(topology.search_service, topology.search_stable);
            app.attach_proxies(Some(product_proxy), Some(search_proxy));
            let strategy = evaluation_strategy(&topology, self.plan.durations);
            let handle = engine.schedule(strategy, self.plan.strategy_start());
            (engine, handle)
        });

        // Generate the arrival plan and replay it against the application,
        // advancing the engine's virtual clock in lockstep so proxy
        // configurations change mid-run exactly as they would in production.
        let mut rng = SimRng::seeded(self.seed.wrapping_mul(31).wrapping_add(7));
        let arrivals = self.load.plan(&mut rng);
        let mut recorder = ResponseRecorder::new();
        let mut next_scrape = SimTime::from_secs(1);
        for arrival in arrivals.arrivals() {
            if let Some((engine, _)) = engine.as_mut() {
                engine.run_until(arrival.at);
            }
            while arrival.at >= next_scrape {
                app.scrape_resources(next_scrape);
                next_scrape += Duration::from_secs(1);
            }
            let record = app.handle_request(arrival.at, arrival.user, arrival.kind);
            recorder.record(record);
        }
        let end = SimTime::ZERO + self.plan.total_duration();
        let strategy_succeeded = engine.as_mut().map(|(engine, handle)| {
            engine.run_until(end);
            engine
                .report(*handle)
                .map(|r| r.succeeded())
                .unwrap_or(false)
        });

        OverheadRun {
            variant,
            recorder,
            windows: self.plan.windows(),
            strategy_succeeded,
        }
    }

    /// Runs all three variants (one repetition each).
    pub fn run_all(&self) -> Vec<OverheadRun> {
        Variant::ALL.iter().map(|v| self.run_variant(*v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_plan_windows_cover_the_strategy() {
        let plan = PhasePlan::default();
        let windows = plan.windows();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].name, "Canary");
        assert_eq!(windows[0].from, SimTime::from_secs(90));
        assert_eq!(windows[3].to, SimTime::from_secs(90 + 60 + 60 + 60 + 200));
        assert!(plan.total_duration() > Duration::from_secs(380));
        assert_eq!(plan.strategy_start(), SimTime::from_secs(90));
    }

    #[test]
    fn compressed_experiment_reproduces_the_overhead_ordering() {
        let experiment = OverheadExperiment::compressed();
        let baseline = experiment.run_variant(Variant::Baseline);
        let inactive = experiment.run_variant(Variant::Inactive);
        let active = experiment.run_variant(Variant::Active);

        assert!(baseline.recorder.len() > 500);
        assert_eq!(baseline.variant.label(), "baseline");
        assert!(baseline.strategy_succeeded.is_none());
        assert!(inactive.strategy_succeeded.is_none());
        assert_eq!(active.strategy_succeeded, Some(true));

        // Whole-run means: baseline < inactive; the proxy overhead is in the
        // single-digit millisecond range.
        let base_mean = baseline.recorder.mean_ms(None).unwrap();
        let inactive_mean = inactive.recorder.mean_ms(None).unwrap();
        let overhead = inactive_mean - base_mean;
        assert!(overhead > 2.0 && overhead < 15.0, "overhead {overhead}");

        // Dark launch is the most expensive active phase.
        let active_dark = active.phase_mean("Dark Launch").unwrap();
        let active_canary = active.phase_mean("Canary").unwrap();
        let active_ab = active.phase_mean("A/B Test").unwrap();
        assert!(
            active_dark > active_canary,
            "dark {active_dark} vs canary {active_canary}"
        );
        // The A/B phase benefits from load sharing: cheaper than dark launch
        // and no more expensive than the canary phase.
        assert!(active_ab < active_dark);

        // Figure 6 series exists and spans the experiment.
        let series = active.moving_average();
        assert!(series.len() > 500);
        let summaries = active.phase_summaries();
        assert_eq!(summaries.len(), 4);
        assert!(summaries.iter().all(|(_, s)| s.is_some()));
    }
}
