//! The simulated 7-service e-commerce application.
//!
//! The topology mirrors Figure 5 of the paper: nginx is the entry point,
//! the product service handles the four workload request types, it calls the
//! auth service for every request, MongoDB for data access, and the search
//! service for search queries. The product service exists in three versions
//! (stable, product A, product B), the search service in two (stable,
//! fastSearch). Bifrost proxies can be deployed in front of the product and
//! search services; when they are, every request to those services pays the
//! proxy's processing cost and follows its routing decision.

use crate::model::{ServiceCosts, VersionBehavior};
use bifrost_core::ids::{ServiceId, UserId, VersionId};
use bifrost_core::service::{Endpoint, Service, ServiceCatalog, ServiceVersion};
use bifrost_engine::ProxyHandle;
use bifrost_metrics::{SeriesKey, SharedMetricStore};
use bifrost_proxy::{ProxyRequest, RoutingDecision};
use bifrost_simnet::{Cluster, ContainerId, InstanceSpec, SimRng, SimTime};
use bifrost_workload::{RequestKind, ResponseRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Whether Bifrost proxies are part of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProxyDeployment {
    /// No proxies deployed (the paper's *baseline* variant).
    None,
    /// Proxies deployed in front of the product and search services (the
    /// *inactive* and *active* variants; whether a strategy is running is
    /// determined by the proxies' configuration, which the engine controls).
    Deployed,
}

/// The identifiers of the case-study services and versions, shared between
/// the application, the strategies, and the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyTopology {
    /// The service catalog (product + search with all their versions).
    pub catalog: ServiceCatalog,
    /// The product service.
    pub product_service: ServiceId,
    /// The stable product version.
    pub product_stable: VersionId,
    /// Product alternative A.
    pub product_a: VersionId,
    /// Product alternative B.
    pub product_b: VersionId,
    /// The search service.
    pub search_service: ServiceId,
    /// The stable search version.
    pub search_stable: VersionId,
    /// The redesigned fastSearch version.
    pub fast_search: VersionId,
}

impl CaseStudyTopology {
    /// Builds the catalog of the case-study application.
    pub fn new() -> Self {
        let mut catalog = ServiceCatalog::new();
        let product_service = catalog
            .add_service(Service::new("product").with_description("product catalog and orders"));
        let product_stable = catalog
            .add_version(
                product_service,
                ServiceVersion::new("product", Endpoint::new("10.10.0.10", 8080)),
            )
            .expect("fresh catalog");
        let product_a = catalog
            .add_version(
                product_service,
                ServiceVersion::new("product-a", Endpoint::new("10.10.0.11", 8080)),
            )
            .expect("fresh catalog");
        let product_b = catalog
            .add_version(
                product_service,
                ServiceVersion::new("product-b", Endpoint::new("10.10.0.12", 8080)),
            )
            .expect("fresh catalog");
        let search_service = catalog
            .add_service(Service::new("search").with_description("text-based product search"));
        let search_stable = catalog
            .add_version(
                search_service,
                ServiceVersion::new("search", Endpoint::new("10.10.0.20", 8080)),
            )
            .expect("fresh catalog");
        let fast_search = catalog
            .add_version(
                search_service,
                ServiceVersion::new("fastSearch", Endpoint::new("10.10.0.21", 8080)),
            )
            .expect("fresh catalog");
        Self {
            catalog,
            product_service,
            product_stable,
            product_a,
            product_b,
            search_service,
            search_stable,
            fast_search,
        }
    }
}

impl Default for CaseStudyTopology {
    fn default() -> Self {
        Self::new()
    }
}

/// The simulated application.
#[derive(Debug)]
pub struct CaseStudyApp {
    topology: CaseStudyTopology,
    cluster: Cluster,
    costs: ServiceCosts,
    proxy_deployment: ProxyDeployment,
    // Containers.
    nginx: ContainerId,
    auth: ContainerId,
    mongo: ContainerId,
    product_proxy_container: Option<ContainerId>,
    search_proxy_container: Option<ContainerId>,
    version_containers: BTreeMap<VersionId, ContainerId>,
    version_behaviors: BTreeMap<VersionId, VersionBehavior>,
    // Proxies (shared with the engine).
    product_proxy: Option<ProxyHandle>,
    search_proxy: Option<ProxyHandle>,
    // Metrics.
    store: SharedMetricStore,
    rng: SimRng,
    requests_served: u64,
    /// Cumulative application counters, keyed by `(metric, version)`; they
    /// are re-published on every scrape so that windowed rate queries always
    /// see a sample (the behaviour of a Prometheus scrape loop).
    counters: BTreeMap<(String, String), f64>,
}

impl CaseStudyApp {
    /// Builds the 12-VM deployment of the end-user overhead experiment:
    /// every container on its own single-core VM.
    pub fn deploy(store: SharedMetricStore, proxy_deployment: ProxyDeployment, seed: u64) -> Self {
        let topology = CaseStudyTopology::new();
        let mut cluster = Cluster::new(store.clone(), seed);

        let place = |cluster: &mut Cluster, name: &str| {
            let vm = cluster.add_standard_vm(format!("vm-{name}"));
            cluster.add_container(vm, InstanceSpec::new(name))
        };

        let nginx = place(&mut cluster, "nginx");
        let _frontend = place(&mut cluster, "frontend");
        let auth = place(&mut cluster, "auth");
        let mongo = place(&mut cluster, "mongodb");
        let _prometheus = place(&mut cluster, "prometheus");
        let product_stable_c = place(&mut cluster, "product");
        let product_a_c = place(&mut cluster, "product-a");
        let product_b_c = place(&mut cluster, "product-b");
        let search_c = place(&mut cluster, "search");
        let fast_search_c = place(&mut cluster, "fastsearch");

        let (product_proxy_container, search_proxy_container) = match proxy_deployment {
            ProxyDeployment::None => (None, None),
            ProxyDeployment::Deployed => (
                Some(place(&mut cluster, "product-proxy")),
                Some(place(&mut cluster, "search-proxy")),
            ),
        };

        let mut version_containers = BTreeMap::new();
        version_containers.insert(topology.product_stable, product_stable_c);
        version_containers.insert(topology.product_a, product_a_c);
        version_containers.insert(topology.product_b, product_b_c);
        version_containers.insert(topology.search_stable, search_c);
        version_containers.insert(topology.fast_search, fast_search_c);

        let mut version_behaviors = BTreeMap::new();
        version_behaviors.insert(topology.product_stable, VersionBehavior::stable());
        version_behaviors.insert(topology.product_a, VersionBehavior::healthy_redesign());
        version_behaviors.insert(topology.product_b, VersionBehavior::healthy_redesign());
        version_behaviors.insert(topology.search_stable, VersionBehavior::stable());
        version_behaviors.insert(topology.fast_search, VersionBehavior::healthy_redesign());

        let mut app = Self {
            topology,
            cluster,
            costs: ServiceCosts::calibrated(),
            proxy_deployment,
            nginx,
            auth,
            mongo,
            product_proxy_container,
            search_proxy_container,
            version_containers,
            version_behaviors,
            product_proxy: None,
            search_proxy: None,
            store,
            rng: SimRng::seeded(seed ^ 0x5151_5151),
            requests_served: 0,
            counters: BTreeMap::new(),
        };
        // Initialise the counter series every version exposes, mirroring how
        // Prometheus client libraries register counters at zero on service
        // start-up. Checks that look at error counts therefore see "0" rather
        // than "no data" before the first request arrives.
        let versions: Vec<VersionId> = app.version_containers.keys().copied().collect();
        for version in versions {
            let name = app.version_name(version).to_string();
            for metric in ["request_errors", "requests_total", "items_sold_total"] {
                app.counters.insert((metric.to_string(), name.clone()), 0.0);
            }
        }
        app.publish_counters(SimTime::ZERO);
        app
    }

    /// The topology (catalog and ids) of the application.
    pub fn topology(&self) -> &CaseStudyTopology {
        &self.topology
    }

    /// The shared metric store the application reports into.
    pub fn metric_store(&self) -> &SharedMetricStore {
        &self.store
    }

    /// Overrides the behaviour of a version (e.g. to inject a defective
    /// canary).
    pub fn set_version_behavior(&mut self, version: VersionId, behavior: VersionBehavior) {
        self.version_behaviors.insert(version, behavior);
    }

    /// Attaches the proxy handles obtained from the engine
    /// ([`bifrost_engine::BifrostEngine::register_proxy`]). Without handles,
    /// a deployed proxy acts as a pure pass-through.
    pub fn attach_proxies(&mut self, product: Option<ProxyHandle>, search: Option<ProxyHandle>) {
        self.product_proxy = product;
        self.search_proxy = search;
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Access to the underlying cluster (for resource scraping).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Scrapes per-container resource metrics (the cAdvisor role) and
    /// re-publishes the application counters (the Prometheus scrape loop), so
    /// that windowed queries always find a sample even in quiet periods.
    pub fn scrape_resources(&mut self, now: SimTime) {
        self.cluster.scrape_resources(now);
        self.publish_counters(now);
    }

    /// Writes the current value of every application counter into the store.
    fn publish_counters(&mut self, now: SimTime) {
        for ((metric, version), value) in &self.counters {
            self.store.record_value(
                SeriesKey::new(metric.clone()).with_label("version", version.clone()),
                now.to_timestamp(),
                *value,
            );
        }
    }

    /// Adds `delta` to a cumulative counter and publishes the new value.
    fn bump_counter(&mut self, metric: &str, version: &str, at: SimTime, delta: f64) {
        let value = self
            .counters
            .entry((metric.to_string(), version.to_string()))
            .or_insert(0.0);
        *value += delta;
        let value = *value;
        self.store.record_value(
            SeriesKey::new(metric).with_label("version", version),
            at.to_timestamp(),
            value,
        );
    }

    /// Handles one request end to end and returns its response record.
    ///
    /// The request path is nginx → (product proxy) → product version →
    /// auth → MongoDB (→ (search proxy) → search version → MongoDB for
    /// search requests), with every hop paying network latency and every
    /// service paying CPU on its container. Dark-launched shadow copies
    /// consume CPU on the shadow version, auth, and MongoDB without
    /// affecting the client-visible response.
    pub fn handle_request(
        &mut self,
        at: SimTime,
        user: UserId,
        kind: RequestKind,
    ) -> ResponseRecord {
        self.requests_served += 1;
        let mut now = at;
        // Client → nginx.
        now += self.costs.client_link();
        let nginx_receipt = self
            .cluster
            .execute(self.nginx, now, self.costs.nginx_demand());
        now = nginx_receipt.completed;

        // nginx → product (possibly through the Bifrost proxy).
        let (product_version, shadows, proxy_cost) = self.route_product(user);
        if let Some(proxy_container) = self.product_proxy_container {
            now += self
                .cluster
                .network_hop(self.nginx, proxy_container, kind.request_bytes());
            let receipt = self.cluster.execute(proxy_container, now, proxy_cost);
            now = receipt.completed;
        }
        let product_container = self.version_containers[&product_version];
        let behavior = self.version_behaviors[&product_version];
        now += self
            .cluster
            .network_hop(self.nginx, product_container, kind.request_bytes());
        let product_receipt = self.cluster.execute(
            product_container,
            now,
            behavior.scale(self.costs.product_demand(kind)),
        );
        now = product_receipt.completed;

        // product → auth (token validation) and back.
        now += self.cluster.network_hop(product_container, self.auth, 256);
        let auth_receipt = self
            .cluster
            .execute(self.auth, now, self.costs.auth_demand());
        now = auth_receipt.completed;
        now += self.cluster.network_hop(self.auth, product_container, 128);

        // product → MongoDB and back.
        now += self
            .cluster
            .network_hop(product_container, self.mongo, kind.request_bytes());
        let db_receipt = self
            .cluster
            .execute(self.mongo, now, self.costs.db_demand(kind));
        now = db_receipt.completed;
        now += self
            .cluster
            .network_hop(self.mongo, product_container, kind.response_bytes() / 4);

        // Search requests additionally fan out to the search service.
        if kind.touches_search() {
            let (search_version, search_shadows, search_proxy_cost) = self.route_search(user);
            if let Some(proxy_container) = self.search_proxy_container {
                now += self
                    .cluster
                    .network_hop(product_container, proxy_container, 256);
                let receipt = self
                    .cluster
                    .execute(proxy_container, now, search_proxy_cost);
                now = receipt.completed;
            }
            let search_container = self.version_containers[&search_version];
            let search_behavior = self.version_behaviors[&search_version];
            now += self
                .cluster
                .network_hop(product_container, search_container, 256);
            let search_receipt = self.cluster.execute(
                search_container,
                now,
                search_behavior.scale(self.costs.search_demand()),
            );
            now = search_receipt.completed;
            // Search hits the database too.
            now += self.cluster.network_hop(search_container, self.mongo, 128);
            let db =
                self.cluster
                    .execute(self.mongo, now, self.costs.db_demand(RequestKind::Details));
            now = db.completed;
            now += self.cluster.network_hop(self.mongo, search_container, 1024);
            now += self
                .cluster
                .network_hop(search_container, product_container, 1024);
            // Shadow copies of the search call (dark-launched fastSearch).
            for shadow in search_shadows {
                self.execute_shadow_search(at, shadow);
            }
        }

        // Response travels back to the client.
        now += self
            .cluster
            .network_hop(product_container, self.nginx, kind.response_bytes());
        now += self.costs.client_link();

        // Shadow copies of the product request (dark launch): they replay the
        // product → auth → db chain on the shadow version without delaying
        // the client-visible response.
        for shadow in shadows {
            self.execute_shadow_product(at, shadow, kind);
        }

        // Outcome: the serving version may fail with its error rate.
        let success = !self.rng.chance(behavior.error_rate);
        self.report_request_metrics(at, kind, product_version, success, behavior);

        ResponseRecord {
            at,
            kind,
            response_time: now - at,
            success,
        }
    }

    /// Routes a product request through the product proxy (if deployed and
    /// attached), returning the serving version, dark-launch shadow targets,
    /// and the proxy CPU cost.
    fn route_product(&mut self, user: UserId) -> (VersionId, Vec<VersionId>, Duration) {
        route_via_proxy(
            self.proxy_deployment,
            self.product_proxy.as_ref(),
            self.topology.product_stable,
            user,
        )
    }

    /// Routes a search sub-request through the search proxy.
    fn route_search(&mut self, user: UserId) -> (VersionId, Vec<VersionId>, Duration) {
        route_via_proxy(
            self.proxy_deployment,
            self.search_proxy.as_ref(),
            self.topology.search_stable,
            user,
        )
    }

    /// Executes the duplicated work of a dark-launched product request.
    fn execute_shadow_product(&mut self, at: SimTime, target: VersionId, kind: RequestKind) {
        let Some(&container) = self.version_containers.get(&target) else {
            return;
        };
        let behavior = self.version_behaviors[&target];
        let product = self.cluster.execute(
            container,
            at,
            behavior.scale(self.costs.product_demand(kind)),
        );
        // The shadow also validates the token and reads the database — the
        // "three requests need to be shadowed" of the paper.
        let auth = self
            .cluster
            .execute(self.auth, product.completed, self.costs.auth_demand());
        self.cluster
            .execute(self.mongo, auth.completed, self.costs.db_demand(kind));
        self.store.increment(
            SeriesKey::new("shadow_requests_total")
                .with_label("version", self.version_name(target)),
            at.to_timestamp(),
            1.0,
        );
    }

    /// Executes the duplicated work of a dark-launched search request.
    fn execute_shadow_search(&mut self, at: SimTime, target: VersionId) {
        let Some(&container) = self.version_containers.get(&target) else {
            return;
        };
        let behavior = self.version_behaviors[&target];
        let search =
            self.cluster
                .execute(container, at, behavior.scale(self.costs.search_demand()));
        self.cluster.execute(
            self.mongo,
            search.completed,
            self.costs.db_demand(RequestKind::Details),
        );
    }

    /// Pushes the per-request application metrics that strategy checks watch.
    fn report_request_metrics(
        &mut self,
        at: SimTime,
        kind: RequestKind,
        version: VersionId,
        success: bool,
        behavior: VersionBehavior,
    ) {
        let version_name = self.version_name(version).to_string();
        self.bump_counter("requests_total", &version_name, at, 1.0);
        self.store.increment(
            SeriesKey::new("requests_by_kind")
                .with_label("version", &version_name)
                .with_label("kind", kind.name()),
            at.to_timestamp(),
            1.0,
        );
        if !success {
            self.bump_counter("request_errors", &version_name, at, 1.0);
        }
        // Business metric: buy requests convert into sold items, better
        // versions convert slightly more.
        let converts = kind == RequestKind::Buy
            && success
            && self.rng.chance(0.4 * behavior.conversion_factor);
        if converts {
            self.bump_counter("items_sold_total", &version_name, at, 1.0);
        }
    }

    fn version_name(&self, version: VersionId) -> &str {
        self.topology
            .catalog
            .version(version)
            .map(|v| v.name())
            .unwrap_or("unknown")
    }
}

/// Routes one request through a service's Bifrost proxy — the same
/// decision + cost pipeline ([`bifrost_proxy::BifrostProxy::route_costed`])
/// the engine's traffic simulation drives in batches. Returns the serving
/// version, the dark-launch shadow targets, and the proxy's CPU cost.
fn route_via_proxy(
    deployment: ProxyDeployment,
    proxy: Option<&ProxyHandle>,
    stable: VersionId,
    user: UserId,
) -> (VersionId, Vec<VersionId>, Duration) {
    match (deployment, proxy) {
        (ProxyDeployment::None, _) => (stable, Vec::new(), Duration::ZERO),
        (ProxyDeployment::Deployed, None) => (
            stable,
            Vec::new(),
            bifrost_proxy::OverheadModel::default().passthrough_cost(),
        ),
        (ProxyDeployment::Deployed, Some(handle)) => {
            let (decision, cost): (RoutingDecision, Duration) =
                handle.read().route_costed(&ProxyRequest::from_user(user));
            let shadows = decision.shadows.iter().map(|s| s.target).collect();
            (decision.primary, shadows, cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::routing::{DarkLaunchRoute, Percentage, RoutingMode, TrafficSplit};
    use bifrost_core::user::UserSelector;
    use bifrost_engine::{BifrostEngine, EngineConfig};
    use bifrost_metrics::{Aggregation, RangeQuery};
    use bifrost_proxy::{ProxyConfig, ProxyRule};
    use parking_lot::RwLock;
    use std::sync::Arc;

    fn request_mean_ms(app: &mut CaseStudyApp, kinds: &[RequestKind], n: usize) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            for (j, kind) in kinds.iter().enumerate() {
                // Space the requests 100 ms apart to avoid artificial queueing.
                let at = SimTime::from_millis((i * kinds.len() + j) as u64 * 100);
                let record = app.handle_request(at, UserId::new((i * 7 + j) as u64), *kind);
                total += record.response_time.as_secs_f64() * 1_000.0;
                count += 1;
            }
        }
        total / count as f64
    }

    #[test]
    fn baseline_response_time_is_low_twenties() {
        let store = SharedMetricStore::new();
        let mut app = CaseStudyApp::deploy(store, ProxyDeployment::None, 1);
        let mean = request_mean_ms(&mut app, &RequestKind::ALL, 50);
        assert!(mean > 15.0 && mean < 30.0, "baseline mean {mean}");
        assert_eq!(app.requests_served(), 200);
    }

    #[test]
    fn deployed_but_unattached_proxies_add_passthrough_overhead() {
        let store = SharedMetricStore::new();
        let mut baseline = CaseStudyApp::deploy(store.clone(), ProxyDeployment::None, 1);
        let mut inactive = CaseStudyApp::deploy(store, ProxyDeployment::Deployed, 1);
        let base = request_mean_ms(&mut baseline, &RequestKind::ALL, 50);
        let with_proxy = request_mean_ms(&mut inactive, &RequestKind::ALL, 50);
        let overhead = with_proxy - base;
        assert!(overhead > 3.0 && overhead < 15.0, "overhead {overhead}");
    }

    #[test]
    fn engine_attached_proxy_routes_canary_traffic() {
        let store = SharedMetricStore::new();
        let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::Deployed, 3);
        let topology = app.topology().clone();

        let mut engine = BifrostEngine::new(EngineConfig::default());
        engine.register_store_provider("prometheus", store);
        let product_proxy =
            engine.register_proxy(topology.product_service, topology.product_stable);
        let search_proxy = engine.register_proxy(topology.search_service, topology.search_stable);
        app.attach_proxies(Some(product_proxy.clone()), Some(search_proxy));

        // Manually push a 50% canary config (bypassing the engine loop).
        let split = TrafficSplit::canary(
            topology.product_stable,
            topology.product_a,
            Percentage::new(50.0).unwrap(),
        )
        .unwrap();
        product_proxy.write().apply_config(
            ProxyConfig::new(topology.product_service, topology.product_stable).with_rule(
                ProxyRule::split(split, false, UserSelector::All, RoutingMode::CookieBased),
            ),
        );

        for i in 0..400 {
            app.handle_request(
                SimTime::from_millis(i * 30),
                UserId::new(i),
                RequestKind::Details,
            );
        }
        let store = app.metric_store().clone();
        let a_requests = store
            .evaluate(
                &RangeQuery::new("requests_total")
                    .with_label("version", "product-a")
                    .aggregate(Aggregation::Last),
                SimTime::from_secs(60).to_timestamp(),
            )
            .unwrap_or(0.0);
        assert!(
            a_requests > 120.0 && a_requests < 280.0,
            "canary got {a_requests}"
        );
    }

    #[test]
    fn dark_launch_duplicates_work_without_changing_primary() {
        let store = SharedMetricStore::new();
        let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::Deployed, 5);
        let topology = app.topology().clone();
        let proxy = Arc::new(RwLock::new(bifrost_proxy::BifrostProxy::new(
            "product-proxy",
            ProxyConfig::new(topology.product_service, topology.product_stable).with_rule(
                ProxyRule::shadow(DarkLaunchRoute::new(
                    topology.product_stable,
                    topology.product_a,
                    Percentage::full(),
                )),
            ),
        )));
        app.attach_proxies(Some(proxy), None);
        for i in 0..100 {
            let record = app.handle_request(
                SimTime::from_millis(i * 30),
                UserId::new(i),
                RequestKind::Details,
            );
            assert!(record.response_time > Duration::ZERO);
        }
        let shadows = store
            .evaluate(
                &RangeQuery::new("shadow_requests_total")
                    .with_label("version", "product-a")
                    .aggregate(Aggregation::Last),
                SimTime::from_secs(60).to_timestamp(),
            )
            .unwrap_or(0.0);
        assert_eq!(shadows, 100.0);
        // Primary traffic still went to the stable product version.
        let stable_requests = store
            .evaluate(
                &RangeQuery::new("requests_total")
                    .with_label("version", "product")
                    .aggregate(Aggregation::Last),
                SimTime::from_secs(60).to_timestamp(),
            )
            .unwrap_or(0.0);
        assert_eq!(stable_requests, 100.0);
    }

    #[test]
    fn defective_version_produces_errors_and_slower_responses() {
        let store = SharedMetricStore::new();
        let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::Deployed, 7);
        let topology = app.topology().clone();
        app.set_version_behavior(topology.product_a, VersionBehavior::defective());
        // Route everything to the defective version.
        let proxy = Arc::new(RwLock::new(bifrost_proxy::BifrostProxy::new(
            "product-proxy",
            ProxyConfig::new(topology.product_service, topology.product_stable).with_rule(
                ProxyRule::split(
                    TrafficSplit::all_to(topology.product_a),
                    false,
                    UserSelector::All,
                    RoutingMode::CookieBased,
                ),
            ),
        )));
        app.attach_proxies(Some(proxy), None);
        let mut failures = 0;
        for i in 0..500 {
            let record = app.handle_request(
                SimTime::from_millis(i * 30),
                UserId::new(i),
                RequestKind::Details,
            );
            if !record.success {
                failures += 1;
            }
        }
        assert!(failures > 20, "expected visible error rate, got {failures}");
        let errors = store
            .evaluate(
                &RangeQuery::new("request_errors")
                    .with_label("version", "product-a")
                    .aggregate(Aggregation::Last),
                SimTime::from_secs(60).to_timestamp(),
            )
            .unwrap_or(0.0);
        assert_eq!(errors, failures as f64);
    }

    #[test]
    fn buy_requests_generate_sales_metrics() {
        let store = SharedMetricStore::new();
        let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::None, 11);
        for i in 0..200 {
            app.handle_request(
                SimTime::from_millis(i * 30),
                UserId::new(i),
                RequestKind::Buy,
            );
        }
        let sold = store
            .evaluate(
                &RangeQuery::new("items_sold_total")
                    .with_label("version", "product")
                    .aggregate(Aggregation::Last),
                SimTime::from_secs(60).to_timestamp(),
            )
            .unwrap_or(0.0);
        assert!(sold > 30.0 && sold < 150.0, "sold {sold}");
    }

    #[test]
    fn resource_scrapes_export_container_series() {
        let store = SharedMetricStore::new();
        let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::None, 13);
        for i in 0..50 {
            app.handle_request(
                SimTime::from_millis(i * 20),
                UserId::new(i),
                RequestKind::Search,
            );
        }
        app.scrape_resources(SimTime::from_secs(2));
        let cpu = store.evaluate(
            &RangeQuery::new("container_cpu_utilization")
                .with_label("container", "product")
                .aggregate(Aggregation::Last),
            SimTime::from_secs(3).to_timestamp(),
        );
        assert!(cpu.is_some());
        assert!(cpu.unwrap() > 0.0);
    }
}
