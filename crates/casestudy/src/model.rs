//! Processing-cost and behaviour models of the case-study services.
//!
//! The absolute numbers are calibrated so that the simulated baseline
//! response time lands in the low-20-millisecond range the paper reports for
//! its Google Cloud deployment, and so that the relative effects (proxy hop,
//! dark-launch duplication, A/B load sharing) reproduce the shape of
//! Figure 6 / Table 1.

use bifrost_workload::RequestKind;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// CPU demand parameters of the application services (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceCosts {
    /// nginx reverse-proxy processing per request.
    pub nginx_ms: f64,
    /// Product service base processing per request.
    pub product_ms: f64,
    /// Additional product-service milliseconds per kilobyte of response.
    pub product_per_kb_ms: f64,
    /// Search service processing per search query.
    pub search_ms: f64,
    /// Auth service processing per token validation.
    pub auth_ms: f64,
    /// MongoDB read cost.
    pub db_read_ms: f64,
    /// MongoDB write cost.
    pub db_write_ms: f64,
    /// Latency between the load generator and nginx (one way).
    pub client_link_ms: f64,
}

impl Default for ServiceCosts {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl ServiceCosts {
    /// The calibration used by the evaluation reproduction.
    pub fn calibrated() -> Self {
        Self {
            nginx_ms: 0.8,
            product_ms: 9.0,
            product_per_kb_ms: 0.02,
            search_ms: 4.5,
            auth_ms: 2.5,
            db_read_ms: 2.0,
            db_write_ms: 4.0,
            client_link_ms: 1.0,
        }
    }

    /// Product-service CPU demand for one request of the given kind.
    pub fn product_demand(&self, kind: RequestKind) -> Duration {
        let kb = kind.response_bytes() as f64 / 1024.0;
        Duration::from_secs_f64((self.product_ms + self.product_per_kb_ms * kb) / 1_000.0)
    }

    /// MongoDB CPU demand for one request of the given kind.
    pub fn db_demand(&self, kind: RequestKind) -> Duration {
        let ms = if kind.is_write() {
            self.db_write_ms
        } else {
            self.db_read_ms
        };
        Duration::from_secs_f64(ms / 1_000.0)
    }

    /// Auth service CPU demand per request.
    pub fn auth_demand(&self) -> Duration {
        Duration::from_secs_f64(self.auth_ms / 1_000.0)
    }

    /// Search service CPU demand per search request.
    pub fn search_demand(&self) -> Duration {
        Duration::from_secs_f64(self.search_ms / 1_000.0)
    }

    /// nginx CPU demand per request.
    pub fn nginx_demand(&self) -> Duration {
        Duration::from_secs_f64(self.nginx_ms / 1_000.0)
    }

    /// One-way latency between the load generator and nginx.
    pub fn client_link(&self) -> Duration {
        Duration::from_secs_f64(self.client_link_ms / 1_000.0)
    }
}

/// Behaviour of one deployed version of a service: how its processing time
/// and error rate differ from the stable implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VersionBehavior {
    /// Multiplier applied to the service's base CPU demand (1.0 = identical
    /// to stable, 0.8 = 20 % faster).
    pub speed_factor: f64,
    /// Probability that a request served by this version fails with an HTTP
    /// 500 (feeds the error-count metrics the canary checks watch).
    pub error_rate: f64,
    /// Relative conversion strength used for the simulated business metric
    /// (items sold); only meaningful for product-service versions.
    pub conversion_factor: f64,
}

impl Default for VersionBehavior {
    fn default() -> Self {
        Self::stable()
    }
}

impl VersionBehavior {
    /// The stable version: nominal speed, negligible error rate.
    pub fn stable() -> Self {
        Self {
            speed_factor: 1.0,
            error_rate: 0.001,
            conversion_factor: 1.0,
        }
    }

    /// A healthy redesign: slightly faster, same negligible error rate,
    /// slightly better conversion.
    pub fn healthy_redesign() -> Self {
        Self {
            speed_factor: 0.9,
            error_rate: 0.001,
            conversion_factor: 1.1,
        }
    }

    /// A defective version: occasional errors and slower responses — used by
    /// rollback scenarios and failure-injection tests.
    pub fn defective() -> Self {
        Self {
            speed_factor: 1.6,
            error_rate: 0.12,
            conversion_factor: 0.7,
        }
    }

    /// Scales a base CPU demand by this version's speed factor.
    pub fn scale(&self, base: Duration) -> Duration {
        Duration::from_secs_f64(base.as_secs_f64() * self.speed_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_demand_grows_with_response_size() {
        let costs = ServiceCosts::calibrated();
        assert!(
            costs.product_demand(RequestKind::Products)
                > costs.product_demand(RequestKind::Details)
        );
        assert!(costs.db_demand(RequestKind::Buy) > costs.db_demand(RequestKind::Details));
        assert!(costs.auth_demand() > Duration::ZERO);
        assert!(costs.search_demand() > costs.nginx_demand());
        assert!(costs.client_link() > Duration::ZERO);
        assert_eq!(ServiceCosts::default(), ServiceCosts::calibrated());
    }

    #[test]
    fn baseline_sum_is_in_the_low_twenties() {
        // Sanity-check the calibration: the dominant CPU components of a
        // Details request (nginx + product + auth + db) plus ~6 network hops
        // and the client link should land near the paper's ~22 ms baseline.
        let costs = ServiceCosts::calibrated();
        let cpu_ms = costs.nginx_ms
            + costs.product_ms
            + costs.product_per_kb_ms * 2.0
            + costs.auth_ms
            + costs.db_read_ms;
        let network_ms = 2.0 * costs.client_link_ms + 6.0 * 0.5;
        let total = cpu_ms + network_ms;
        assert!(total > 15.0 && total < 25.0, "calibration drifted: {total}");
    }

    #[test]
    fn version_behaviors() {
        let stable = VersionBehavior::stable();
        let redesign = VersionBehavior::healthy_redesign();
        let broken = VersionBehavior::defective();
        assert_eq!(VersionBehavior::default(), stable);
        assert!(redesign.speed_factor < stable.speed_factor);
        assert!(broken.error_rate > redesign.error_rate);
        assert!(broken.conversion_factor < redesign.conversion_factor);
        let base = Duration::from_millis(10);
        assert_eq!(stable.scale(base), base);
        assert!(redesign.scale(base) < base);
        assert!(broken.scale(base) > base);
    }
}
