//! End-to-end tests of the request-level traffic pipeline: arrivals →
//! engine ticks → proxy fleet → per-version metric series → checks.

use bifrost_core::phase::PhaseCheck;
use bifrost_core::prelude::*;
use bifrost_engine::{BackendProfile, BifrostEngine, EngineConfig, TrafficProfile};
use bifrost_metrics::{Aggregation, RangeQuery, SharedMetricStore};
use bifrost_simnet::SimTime;
use std::time::Duration;

struct Fixture {
    engine: BifrostEngine,
    store: SharedMetricStore,
    catalog: ServiceCatalog,
    search: ServiceId,
    stable: VersionId,
    fast: VersionId,
}

fn fixture(seed: u64) -> Fixture {
    let mut catalog = ServiceCatalog::new();
    let search = catalog.add_service(Service::new("search"));
    let stable = catalog
        .add_version(
            search,
            ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
        )
        .unwrap();
    let fast = catalog
        .add_version(
            search,
            ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)),
        )
        .unwrap();
    let store = SharedMetricStore::new();
    let mut engine = BifrostEngine::new(EngineConfig::default().with_seed(Seed::new(seed)));
    engine.register_store_provider("prometheus", store.clone());
    engine.register_proxy(search, stable);
    Fixture {
        engine,
        store,
        catalog,
        search,
        stable,
        fast,
    }
}

fn traffic_profile(f: &Fixture, duration_secs: u64, rate: f64) -> TrafficProfile {
    let load = bifrost_workload::LoadProfile::paper_profile(Duration::from_secs(duration_secs))
        .with_rate(rate)
        .with_users(1_000_000);
    TrafficProfile::new(f.search, load)
        .with_service_label("search")
        .with_backend(
            f.stable,
            "v1",
            BackendProfile::healthy(Duration::from_millis(10)),
        )
        .with_backend(
            f.fast,
            "v2",
            BackendProfile::healthy(Duration::from_millis(6)),
        )
}

#[test]
fn observed_split_matches_the_active_state_within_one_percent() {
    let mut f = fixture(7);
    // A single 10% canary state that outlives the whole traffic window.
    let strategy = StrategyBuilder::new("canary", f.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary-10",
                f.search,
                f.stable,
                f.fast,
                Percentage::new(10.0).unwrap(),
            )
            .duration_secs(200),
        )
        .build()
        .unwrap();
    f.engine.schedule(strategy, SimTime::ZERO);
    let handle = f
        .engine
        .attach_traffic(traffic_profile(&f, 80, 2_000.0), f.store.clone());
    f.engine.run_until(SimTime::from_secs(90));

    let stats = f.engine.traffic_stats(handle).unwrap();
    assert!(
        stats.requests > 100_000,
        "need ≥ 10^5 requests, got {}",
        stats.requests
    );
    let share = stats.share_of(f.fast);
    assert!(
        (share - 0.10).abs() < 0.01,
        "canary share {share} vs configured 0.10 over {} requests",
        stats.requests
    );
    // The proxy's own counters agree with the stream's.
    let proxy = f.engine.proxy(f.search).unwrap();
    let proxy_stats = proxy.read().stats().clone();
    assert_eq!(
        proxy_stats.per_version.get(&f.fast).copied().unwrap_or(0),
        stats.per_version[&f.fast]
    );
    // The observed series landed in the store: requests_total per version.
    let recorded = f
        .store
        .evaluate(
            &RangeQuery::new("requests_total")
                .with_label("version", "v2")
                .aggregate(Aggregation::Last),
            SimTime::from_secs(90).to_timestamp(),
        )
        .unwrap();
    assert_eq!(recorded, stats.per_version[&f.fast] as f64);
}

#[test]
fn shadow_copies_match_the_dark_launch_percentage() {
    let mut f = fixture(11);
    let strategy = StrategyBuilder::new("dark", f.catalog.clone())
        .phase(
            PhaseSpec::dark_launch(
                "dark-25",
                f.search,
                f.stable,
                f.fast,
                Percentage::new(25.0).unwrap(),
            )
            .duration_secs(200),
        )
        .build()
        .unwrap();
    f.engine.schedule(strategy, SimTime::ZERO);
    let handle = f
        .engine
        .attach_traffic(traffic_profile(&f, 80, 2_000.0), f.store.clone());
    f.engine.run_until(SimTime::from_secs(90));

    let stats = f.engine.traffic_stats(handle).unwrap();
    assert!(stats.requests > 100_000);
    // All primary traffic stays on stable; a quarter of it is duplicated.
    assert_eq!(stats.per_version[&f.stable], stats.requests);
    let shadow_share = stats.shadow_share();
    assert!(
        (shadow_share - 0.25).abs() < 0.01,
        "shadow share {shadow_share} vs configured 0.25"
    );
    assert_eq!(
        stats.shadow_per_version.get(&f.fast).copied().unwrap_or(0),
        stats.shadow_copies
    );
    // Shadow series recorded for the dark-launched version.
    let recorded = f
        .store
        .evaluate(
            &RangeQuery::new("shadow_requests_total")
                .with_label("version", "v2")
                .aggregate(Aggregation::Last),
            SimTime::from_secs(90).to_timestamp(),
        )
        .unwrap();
    assert_eq!(recorded, stats.shadow_copies as f64);
}

/// A check watching the observed error counter of the canary version.
fn canary_error_check() -> PhaseCheck {
    PhaseCheck::basic(
        "canary-errors",
        CheckSpec::single(
            MetricQuery::new("prometheus", "errors", "request_errors").with_label("version", "v2"),
            Validator::LessThan(50.0),
        ),
        Timer::from_secs(10, 5).unwrap(),
        OutcomeMapping::binary(5, -1, 1).unwrap(),
    )
}

#[test]
fn checks_evaluate_observed_traffic_not_injected_samples() {
    // Healthy canary backend → the error check passes → rollout succeeds.
    let mut healthy = fixture(13);
    let strategy = |f: &Fixture| {
        StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary-20",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(20.0).unwrap(),
                )
                .check(canary_error_check())
                .duration_secs(60),
            )
            .build()
            .unwrap()
    };
    let handle = healthy.engine.schedule(strategy(&healthy), SimTime::ZERO);
    healthy
        .engine
        .attach_traffic(traffic_profile(&healthy, 70, 200.0), healthy.store.clone());
    healthy.engine.run_until(SimTime::from_secs(120));
    assert!(healthy.engine.report(handle).unwrap().succeeded());

    // Defective canary backend (30% errors) → the same check fails on the
    // observed counters → the strategy rolls back. Nothing was injected
    // into the store by hand.
    let mut broken = fixture(13);
    let profile = traffic_profile(&broken, 70, 200.0).with_backend(
        broken.fast,
        "v2",
        BackendProfile::defective(Duration::from_millis(40), 0.3),
    );
    let handle = broken.engine.schedule(strategy(&broken), SimTime::ZERO);
    broken.engine.attach_traffic(profile, broken.store.clone());
    broken.engine.run_until(SimTime::from_secs(120));
    let report = broken.engine.report(handle).unwrap();
    assert!(report.is_finished());
    assert!(!report.succeeded());
    // The error counter the check saw came from routed traffic.
    let errors = broken
        .store
        .evaluate(
            &RangeQuery::new("request_errors")
                .with_label("version", "v2")
                .aggregate(Aggregation::Last),
            SimTime::from_secs(120).to_timestamp(),
        )
        .unwrap();
    assert!(errors >= 50.0, "observed canary errors {errors}");
}

#[test]
fn traffic_latency_series_reflect_backend_profiles() {
    let mut f = fixture(17);
    let strategy = StrategyBuilder::new("ab", f.catalog.clone())
        .phase(PhaseSpec::ab_test("ab", f.search, f.stable, f.fast).duration_secs(200))
        .build()
        .unwrap();
    f.engine.schedule(strategy, SimTime::ZERO);
    let handle = f
        .engine
        .attach_traffic(traffic_profile(&f, 60, 300.0), f.store.clone());
    f.engine.run_until(SimTime::from_secs(70));
    let stats = f.engine.traffic_stats(handle).unwrap();
    assert!(stats.mean_latency_ms() > 0.0);
    assert!(stats.latency_quantile_ms(0.95) >= stats.mean_latency_ms() * 0.5);
    assert!(stats.proxy_cpu_ms_per_request() > 0.0);
    let latency = |version: &str| {
        f.store
            .evaluate(
                &RangeQuery::new("request_latency_ms")
                    .with_label("version", version)
                    .over_window_secs(70)
                    .aggregate(Aggregation::Mean),
                SimTime::from_secs(70).to_timestamp(),
            )
            .unwrap()
    };
    // v2's backend is configured faster than v1's (6 ms vs 10 ms).
    assert!(
        latency("v2") < latency("v1"),
        "v2 {} vs v1 {}",
        latency("v2"),
        latency("v1")
    );
}

#[test]
fn traffic_streams_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut f = fixture(seed);
        let strategy = StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary-30",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(30.0).unwrap(),
                )
                .duration_secs(100),
            )
            .build()
            .unwrap();
        f.engine.schedule(strategy, SimTime::ZERO);
        let handle = f
            .engine
            .attach_traffic(traffic_profile(&f, 30, 500.0), f.store.clone());
        f.engine.run_until(SimTime::from_secs(40));
        f.engine.traffic_stats(handle).unwrap().clone()
    };
    let a = run(99);
    let b = run(99);
    assert_eq!(a, b, "same seed must reproduce the exact traffic outcome");
    let c = run(100);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn run_to_completion_drains_traffic_past_the_last_strategy() {
    // The strategy finishes at ~30s but the traffic plan runs to 60s:
    // run_to_completion must keep routing until the plan is exhausted
    // instead of stopping with the last strategy.
    let mut f = fixture(23);
    let strategy = StrategyBuilder::new("short", f.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary",
                f.search,
                f.stable,
                f.fast,
                Percentage::new(10.0).unwrap(),
            )
            .duration_secs(30),
        )
        .build()
        .unwrap();
    let handle = f.engine.schedule(strategy, SimTime::ZERO);
    let traffic = f
        .engine
        .attach_traffic(traffic_profile(&f, 60, 100.0), f.store.clone());
    f.engine.run_to_completion(SimTime::from_secs(3_600));
    assert!(f.engine.report(handle).unwrap().is_finished());
    let stats = f.engine.traffic_stats(traffic).unwrap();
    // ~100 rps × 60 s (minus the ramp) — far more than the ~3000 requests
    // a stop at t=30 would leave us with.
    assert!(
        stats.requests > 4_000,
        "traffic truncated at {} requests",
        stats.requests
    );
}

#[test]
fn traffic_without_a_registered_proxy_is_skipped() {
    let mut f = fixture(1);
    let load =
        bifrost_workload::LoadProfile::paper_profile(Duration::from_secs(10)).with_rate(50.0);
    let handle = f.engine.attach_traffic(
        TrafficProfile::new(ServiceId::new(99), load),
        f.store.clone(),
    );
    f.engine.run_until(SimTime::from_secs(20));
    assert_eq!(f.engine.traffic_stats(handle).unwrap().requests, 0);
}
