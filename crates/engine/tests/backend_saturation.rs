//! End-to-end tests of the queued backend fleet: saturation must be
//! *observable* (rising p95 and shed-rate series) and *actionable* (a
//! metric check on the shed counter rolls the strategy back), and a dark
//! launch must heat the shadow version's replicas without changing any
//! primary-visible outcome.

use bifrost_core::check::QueryAggregation;
use bifrost_core::phase::PhaseCheck;
use bifrost_core::prelude::*;
use bifrost_engine::{
    BackendProfile, BifrostEngine, EngineConfig, QueuedBackend, TrafficProfile, TrafficStats,
};
use bifrost_metrics::{Aggregation, RangeQuery, SharedMetricStore};
use bifrost_simnet::SimTime;
use bifrost_workload::{LoadProfile, RequestMix};
use std::time::Duration;

struct Fixture {
    engine: BifrostEngine,
    store: SharedMetricStore,
    catalog: ServiceCatalog,
    search: ServiceId,
    stable: VersionId,
    canary: VersionId,
}

fn fixture(seed: u64) -> Fixture {
    let mut catalog = ServiceCatalog::new();
    let search = catalog.add_service(Service::new("search"));
    let stable = catalog
        .add_version(
            search,
            ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
        )
        .unwrap();
    let canary = catalog
        .add_version(
            search,
            ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)),
        )
        .unwrap();
    let store = SharedMetricStore::new();
    let mut engine = BifrostEngine::new(EngineConfig::default().with_seed(Seed::new(seed)));
    engine.register_store_provider("prometheus", store.clone());
    engine.register_proxy(search, stable);
    Fixture {
        engine,
        store,
        catalog,
        search,
        stable,
        canary,
    }
}

/// A ramping open-loop load: the rate grows linearly over `ramp_secs`
/// towards `peak_rps`, then holds.
fn ramping_load(duration_secs: u64, ramp_secs: u64, peak_rps: f64) -> LoadProfile {
    LoadProfile {
        requests_per_second: peak_rps,
        ramp_up: Duration::from_secs(ramp_secs),
        duration: Duration::from_secs(duration_secs),
        mix: RequestMix::paper_mix(),
        user_count: 1_000_000,
        poisson_arrivals: false,
    }
}

/// The canary's server shape: 5 ms per request per single-core replica
/// (200 rps of capacity per replica), a short queue, a 250 ms deadline.
fn canary_backend(replicas: usize) -> QueuedBackend {
    QueuedBackend::new(Duration::from_millis(5))
        .with_replicas(replicas)
        .with_queue_capacity(32)
        .with_timeout(Duration::from_millis(250))
}

fn traffic_profile(f: &Fixture, replicas: usize, load: LoadProfile) -> TrafficProfile {
    // An amply-provisioned proxy VM: the scenarios here study *backend*
    // saturation, so the proxy must not be the upstream bottleneck (dark
    // launches cost ~11 ms of routing CPU per duplicated request under the
    // Node-prototype overhead model).
    TrafficProfile::new(f.search, load)
        .with_cores(24)
        .with_service_label("search")
        .with_backend(
            f.stable,
            "v1",
            BackendProfile::healthy(Duration::from_millis(8)),
        )
        .with_queued_backend(f.canary, "v2", canary_backend(replicas))
}

/// An exception check watching the canary's shed counter: more than 20
/// shed/timed-out requests in any 10-second window aborts the state to the
/// rollback state.
fn shed_check() -> PhaseCheck {
    PhaseCheck::exception(
        "canary-shed",
        CheckSpec::single(
            MetricQuery::new("prometheus", "shed", "requests_shed_total")
                .with_label("version", "v2")
                .with_window_secs(10)
                .with_aggregation(QueryAggregation::Rate),
            Validator::LessThan(20.0),
        ),
        Timer::from_secs(10, 8).unwrap(),
    )
}

fn canary_strategy(f: &Fixture) -> Strategy {
    StrategyBuilder::new("canary", f.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary-20",
                f.search,
                f.stable,
                f.canary,
                Percentage::new(20.0).unwrap(),
            )
            .check(shed_check())
            .duration_secs(90),
        )
        .build()
        .unwrap()
}

fn p95_gauge(store: &SharedMetricStore, version: &str, at_secs: u64, window: u64) -> Option<f64> {
    store.evaluate(
        &RangeQuery::new("request_latency_p95_ms")
            .with_label("version", version)
            .over_window_secs(window)
            .aggregate(Aggregation::Max),
        SimTime::from_secs(at_secs).to_timestamp(),
    )
}

#[test]
fn saturation_is_observable_in_p95_and_shed_series() {
    // Peak 1,400 rps, 20% canary → ~280 rps against 200 rps of capacity at
    // one replica: with no check to intervene, the ramp drives the canary
    // into saturation and the series must show it.
    let mut f = fixture(41);
    let strategy = StrategyBuilder::new("canary", f.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary-20",
                f.search,
                f.stable,
                f.canary,
                Percentage::new(20.0).unwrap(),
            )
            .duration_secs(90),
        )
        .build()
        .unwrap();
    f.engine.schedule(strategy, SimTime::ZERO);
    let traffic = f.engine.attach_traffic(
        traffic_profile(&f, 1, ramping_load(90, 60, 1_400.0)),
        f.store.clone(),
    );
    f.engine.run_until(SimTime::from_secs(120));

    let stats = f.engine.traffic_stats(traffic).unwrap().clone();
    assert!(stats.shed + stats.timed_out > 100, "stats: {stats:?}");
    assert!(stats.shed_rate() > 0.0);
    assert!(stats.shed_per_version.get(&f.canary).copied().unwrap_or(0) > 100);
    assert_eq!(
        stats.peak_utilization.get(&f.canary).copied().unwrap(),
        100.0,
        "a saturated replica must peg its utilisation"
    );
    // The p95 series of the canary rises as the ramp approaches
    // saturation: compare an early window against a late one.
    let early = p95_gauge(&f.store, "v2", 20, 15).unwrap();
    let late = p95_gauge(&f.store, "v2", 85, 15).unwrap();
    assert!(
        late > early * 3.0,
        "p95 did not rise under saturation: early {early} ms, late {late} ms"
    );
    // The shed-rate series lands in the store where checks can see it.
    let shed_series = f
        .store
        .evaluate(
            &RangeQuery::new("requests_shed_total")
                .with_label("version", "v2")
                .aggregate(Aggregation::Last),
            SimTime::from_secs(120).to_timestamp(),
        )
        .unwrap();
    assert!(shed_series > 100.0, "shed counter {shed_series}");
}

#[test]
fn undersized_canary_rolls_back_while_provisioned_canary_succeeds() {
    // Same ramp, now with the shed check attached: the 1-replica canary
    // crosses the shed threshold and the exception check rolls the
    // strategy back early — saturation is actionable, not just visible.
    let mut thin = fixture(41);
    let handle = thin.engine.schedule(canary_strategy(&thin), SimTime::ZERO);
    let traffic = thin.engine.attach_traffic(
        traffic_profile(&thin, 1, ramping_load(90, 60, 1_400.0)),
        thin.store.clone(),
    );
    thin.engine.run_until(SimTime::from_secs(120));
    let stats = thin.engine.traffic_stats(traffic).unwrap();
    assert!(
        stats.shed + stats.timed_out > 20,
        "the shed threshold must have been crossed: {stats:?}"
    );
    let report = thin.engine.report(handle).unwrap();
    assert!(report.is_finished());
    assert!(!report.succeeded(), "saturated canary must roll back");
    // After the rollback the canary stops receiving primary traffic, so
    // shedding stops well short of an uncontrolled run's volume.
    assert!(
        *stats.per_version.get(&thin.canary).unwrap() < stats.requests / 10,
        "rollback must cut the canary's traffic: {stats:?}"
    );

    // The same scenario with 4 replicas (800 rps of capacity) stays
    // healthy: nothing is shed and the strategy succeeds.
    let mut wide = fixture(41);
    let handle = wide.engine.schedule(canary_strategy(&wide), SimTime::ZERO);
    let traffic = wide.engine.attach_traffic(
        traffic_profile(&wide, 4, ramping_load(90, 60, 1_400.0)),
        wide.store.clone(),
    );
    wide.engine.run_until(SimTime::from_secs(120));
    let stats = wide.engine.traffic_stats(traffic).unwrap();
    assert_eq!(stats.shed, 0, "4 replicas must not shed: {stats:?}");
    assert_eq!(stats.timed_out, 0);
    assert!(wide.engine.report(handle).unwrap().succeeded());
    // Utilisation is observable and plausible: peak well below 100%.
    let peak = stats.peak_utilization.get(&wide.canary).copied().unwrap();
    assert!(peak > 5.0 && peak < 90.0, "peak canary utilisation {peak}");
}

/// Primary-visible *outcome* fields of the traffic statistics: counts,
/// errors, and the per-version split. Latency is compared separately with
/// a tolerance, because duplicating requests costs proxy-side routing CPU
/// (the paper's measured dark-launch overhead) even though the shadow
/// backend's latency never surfaces.
fn primary_view(stats: &TrafficStats) -> (u64, u64, u64, u64, Vec<(VersionId, u64)>) {
    (
        stats.requests,
        stats.errors,
        stats.shed,
        stats.timed_out,
        stats.per_version.iter().map(|(v, n)| (*v, *n)).collect(),
    )
}

#[test]
fn dark_launch_heats_the_shadow_version_without_touching_primary_outcomes() {
    let dark_strategy = |f: &Fixture, share: f64| {
        StrategyBuilder::new("dark", f.catalog.clone())
            .phase(
                PhaseSpec::dark_launch(
                    "dark",
                    f.search,
                    f.stable,
                    f.canary,
                    Percentage::new(share).unwrap(),
                )
                .duration_secs(90),
            )
            .build()
            .unwrap()
    };
    let run = |share: f64| {
        let mut f = fixture(17);
        f.engine.schedule(dark_strategy(&f, share), SimTime::ZERO);
        let traffic = f.engine.attach_traffic(
            traffic_profile(&f, 2, ramping_load(80, 20, 600.0)),
            f.store.clone(),
        );
        f.engine.run_until(SimTime::from_secs(100));
        let stats = f.engine.traffic_stats(traffic).unwrap().clone();
        let utilization = f
            .store
            .evaluate(
                &RangeQuery::new("backend_utilization")
                    .with_label("version", "v2")
                    .over_window_secs(100)
                    .aggregate(Aggregation::Max),
                SimTime::from_secs(100).to_timestamp(),
            )
            .unwrap_or(0.0);
        (stats, utilization)
    };

    let (with_dark, hot) = run(20.0);
    let (without_dark, cold) = run(0.0);

    // The dark launch duplicated ~20% of the traffic onto v2 and its
    // replicas measurably heated up.
    assert!(
        (with_dark.shadow_share() - 0.20).abs() < 0.02,
        "shadow share {}",
        with_dark.shadow_share()
    );
    assert!(with_dark.shadow_per_version[&VersionId::new(1)] > 0);
    assert!(
        hot > cold + 10.0,
        "shadow utilisation {hot}% must exceed idle {cold}% by a margin"
    );
    // ... without changing anything the caller can see: same requests,
    // same errors, same per-version split.
    assert_eq!(primary_view(&with_dark), primary_view(&without_dark));
    assert_eq!(without_dark.shadow_copies, 0);
    // Mean latency moves only by the proxy-side duplication cost (a few
    // milliseconds) — if the shadow backend's ~100 ms+ queueing leaked
    // into primary latencies this margin would blow up.
    let delta = with_dark.mean_latency_ms() - without_dark.mean_latency_ms();
    assert!(
        (0.0..5.0).contains(&delta),
        "primary mean latency moved by {delta} ms under a 20% dark launch"
    );
}

#[test]
fn shadow_overload_is_shed_server_side_and_stays_invisible_to_callers() {
    // A dark launch at 100% onto a single thin replica: far beyond the
    // shadow version's capacity. The overflow is shed server-side (visible
    // in the stream's shadow_shed and the version's shed series) while the
    // primary latency/error picture stays identical to a run without any
    // dark launch.
    let strategy = |f: &Fixture, share: f64| {
        StrategyBuilder::new("dark", f.catalog.clone())
            .phase(
                PhaseSpec::dark_launch(
                    "dark-all",
                    f.search,
                    f.stable,
                    f.canary,
                    Percentage::new(share).unwrap(),
                )
                .duration_secs(60),
            )
            .build()
            .unwrap()
    };
    let run = |share: f64| {
        let mut f = fixture(29);
        f.engine.schedule(strategy(&f, share), SimTime::ZERO);
        let traffic = f.engine.attach_traffic(
            traffic_profile(&f, 1, ramping_load(60, 10, 800.0)),
            f.store.clone(),
        );
        f.engine.run_until(SimTime::from_secs(80));
        f.engine.traffic_stats(traffic).unwrap().clone()
    };
    let flooded = run(100.0);
    let baseline = run(0.0);
    assert!(flooded.shadow_shed > 0, "stats: {flooded:?}");
    assert_eq!(primary_view(&flooded), primary_view(&baseline));
    // Sheds of shadow copies never count into caller-visible errors, and
    // the saturated shadow backend's latency never surfaces: the primary
    // mean moves only by the proxy-side duplication cost.
    assert_eq!(flooded.errors, baseline.errors);
    let delta = flooded.mean_latency_ms() - baseline.mean_latency_ms();
    assert!(
        (0.0..15.0).contains(&delta),
        "primary mean latency moved by {delta} ms under a flooded dark launch"
    );
}
