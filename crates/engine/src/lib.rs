//! # bifrost-engine
//!
//! The Bifrost engine: the middleware component that interprets release
//! strategies (the formal model of `bifrost-core`), executes their checks on
//! timers against monitoring data, evaluates state transitions, and pushes
//! routing configurations to the per-service proxies.
//!
//! The engine runs on *virtual time* supplied by the `bifrost-simnet`
//! scheduler. Every unit of engine work — executing a check (including its
//! metric queries), evaluating a completed state, pushing a proxy
//! configuration — consumes CPU on the engine's (by default single-core)
//! processor. This makes the engine-side evaluation of the paper directly
//! reproducible: CPU utilisation under many parallel strategies (Figure 7),
//! enactment delay under many parallel strategies (Figure 8), and the same
//! two quantities under an increasing number of parallel checks
//! (Figures 9–10).
//!
//! ```
//! use bifrost_core::prelude::*;
//! use bifrost_engine::prelude::*;
//! use bifrost_metrics::SharedMetricStore;
//! use bifrost_simnet::SimTime;
//!
//! // Catalog: a search service with a stable and a canary version.
//! let mut catalog = ServiceCatalog::new();
//! let search = catalog.add_service(Service::new("search"));
//! let stable = catalog.add_version(search, ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)))?;
//! let fast = catalog.add_version(search, ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)))?;
//!
//! // A single-phase canary strategy without checks (auto-passes).
//! let strategy = StrategyBuilder::new("quick-canary", catalog)
//!     .phase(PhaseSpec::canary("canary", search, stable, fast, Percentage::new(5.0)?).duration_secs(30))
//!     .build()?;
//!
//! // Engine with an in-process metric store as its "prometheus" provider.
//! let store = SharedMetricStore::new();
//! let mut engine = BifrostEngine::new(EngineConfig::default());
//! engine.register_store_provider("prometheus", store);
//! engine.register_proxy(search, stable);
//! let handle = engine.schedule(strategy, SimTime::ZERO);
//! engine.run_until(SimTime::from_secs(120));
//! assert!(engine.report(handle).unwrap().is_finished());
//! # Ok::<(), bifrost_core::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backends;
pub mod cost;
pub mod engine;
pub mod events;
pub mod execution;
pub mod proxies;
pub mod report;
pub mod traffic;

pub use backends::{BackendDefaults, BackendDispatch, BackendFleet, QueuedBackend, VersionBackend};
pub use cost::EngineCostModel;
pub use engine::{BifrostEngine, EngineConfig, StrategyHandle};
pub use events::{DueAction, EngineEvent, EventLog, EventQueue};
pub use execution::{CheckProgress, ExecutionStatus, StrategyExecution};
pub use proxies::{ProxyFleet, ProxyHandle};
pub use report::StrategyReport;
pub use traffic::{BackendModel, BackendProfile, TrafficHandle, TrafficProfile, TrafficStats};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::backends::{
        BackendDefaults, BackendDispatch, BackendFleet, QueuedBackend, VersionBackend,
    };
    pub use crate::cost::EngineCostModel;
    pub use crate::engine::{BifrostEngine, EngineConfig, StrategyHandle};
    pub use crate::events::{DueAction, EngineEvent, EventLog, EventQueue};
    pub use crate::execution::{CheckProgress, ExecutionStatus, StrategyExecution};
    pub use crate::proxies::{ProxyFleet, ProxyHandle};
    pub use crate::report::StrategyReport;
    pub use crate::traffic::{
        BackendModel, BackendProfile, TrafficHandle, TrafficProfile, TrafficStats,
    };
}
