//! Queued per-version backend servers: load-dependent latency, bounded
//! queues, and overload shedding for the request-level traffic pipeline.
//!
//! The paper's dark-launch and canary claims rest on live traffic *loading
//! the application versions themselves*: a shadowed version must visibly
//! heat up, and an undersized canary must saturate and degrade. The plain
//! [`crate::traffic::BackendProfile`] models a version as a fixed mean
//! service time plus an error coin-flip, so no strategy can ever observe
//! queueing or saturation. This module adds the missing capacity model:
//!
//! * a [`QueuedBackend`] describes one version's server shape — mean
//!   service demand per request, intrinsic error rate, replica count,
//!   per-replica queue bound, and a request timeout;
//! * a [`VersionBackend`] is the running instance: one single-core
//!   [`CpuResource`] per replica, dispatched least-backlogged-first, with
//!   arrivals beyond the queue bound shed immediately;
//! * a [`BackendFleet`] keys the running servers by `(ServiceId,
//!   VersionId)` so every traffic stream of a service charges the same
//!   replicas — which is exactly what lets a 20% dark launch measurably
//!   heat the shadow version.
//!
//! Latency becomes load-dependent through [`WorkReceipt::queueing_delay`]:
//! below saturation a request starts almost immediately and its latency is
//! its service demand; past saturation the queue builds, latencies climb
//! towards the timeout, and once the per-replica queue bound is hit the
//! server sheds load. All of it is deterministic — the only randomness
//! (demand jitter, error draws) lives in the traffic stream's seeded RNGs.

use bifrost_core::ids::{ServiceId, VersionId};
use bifrost_simnet::{CpuResource, SimTime, WorkReceipt};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Duration;

/// Default per-replica bound on outstanding (queued + executing) requests.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default request timeout.
pub const DEFAULT_BACKEND_TIMEOUT: Duration = Duration::from_millis(1_000);

/// The server shape of one service version: how much work a request costs,
/// how often it fails intrinsically, and how much capacity the version has.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedBackend {
    /// Mean service demand of one request (per replica core).
    pub service_time: Duration,
    /// Intrinsic probability that a *served* request fails.
    pub error_rate: f64,
    /// Number of single-core replicas serving this version.
    pub replicas: usize,
    /// Per-replica bound on outstanding requests (queued + executing);
    /// arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline from backend arrival to completion; requests finishing
    /// later count as timeout errors (the work is still charged — the
    /// server burns the cycles even when the caller has given up).
    pub timeout: Duration,
}

impl QueuedBackend {
    /// A healthy queued backend with the given mean service demand and the
    /// default replica/queue/timeout shape.
    pub fn new(service_time: Duration) -> Self {
        Self {
            service_time,
            error_rate: 0.0,
            replicas: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            timeout: DEFAULT_BACKEND_TIMEOUT,
        }
    }

    /// Overrides the intrinsic error rate (builder style, clamped to
    /// `[0, 1]`).
    pub fn with_error_rate(mut self, error_rate: f64) -> Self {
        self.error_rate = if error_rate.is_nan() {
            0.0
        } else {
            error_rate.clamp(0.0, 1.0)
        };
        self
    }

    /// Overrides the replica count (builder style, minimum 1).
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Overrides the per-replica queue bound (builder style, minimum 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// Overrides the request timeout (builder style, minimum 1 ms).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout.max(Duration::from_millis(1));
        self
    }
}

/// Engine-level default capacity shape applied to versions that only
/// declare a plain [`crate::traffic::BackendProfile`]: the profile supplies
/// service time and error rate, these defaults supply the queueing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendDefaults {
    /// Replicas per version.
    pub replicas: usize,
    /// Per-replica queue bound.
    pub queue_capacity: usize,
    /// Request timeout.
    pub timeout: Duration,
}

impl Default for BackendDefaults {
    fn default() -> Self {
        Self {
            replicas: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            timeout: DEFAULT_BACKEND_TIMEOUT,
        }
    }
}

impl BackendDefaults {
    /// Creates defaults with the given shape (each knob clamped to its
    /// minimum).
    pub fn new(replicas: usize, queue_capacity: usize, timeout: Duration) -> Self {
        Self {
            replicas: replicas.max(1),
            queue_capacity: queue_capacity.max(1),
            timeout: timeout.max(Duration::from_millis(1)),
        }
    }
}

/// The outcome of handing one request to a version's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendDispatch {
    /// The request was admitted; the receipt carries queueing delay and
    /// completion time. The caller applies the timeout policy.
    Admitted(WorkReceipt),
    /// Every replica's queue was full — the request was shed without
    /// charging any work.
    Shed,
}

/// One replica: a single-core queued server (the paper testbed's
/// `n1-standard-1` shape) plus the completion times of its outstanding
/// requests, so the queue bound is enforceable without a full event list.
#[derive(Debug, Clone)]
struct Replica {
    cpu: CpuResource,
    /// Completion times of admitted, not-yet-finished requests. Pushed in
    /// dispatch order; a single-core FIFO server completes in that order,
    /// so the front is always the earliest completion.
    inflight: VecDeque<SimTime>,
}

impl Replica {
    fn new() -> Self {
        Self {
            cpu: CpuResource::single_core(),
            inflight: VecDeque::new(),
        }
    }

    /// Drops completed entries and returns the number of requests still
    /// outstanding at `at`.
    fn outstanding(&mut self, at: SimTime) -> usize {
        while self.inflight.front().is_some_and(|done| *done <= at) {
            self.inflight.pop_front();
        }
        self.inflight.len()
    }
}

/// The running queued server of one service version.
pub struct VersionBackend {
    spec: QueuedBackend,
    replicas: Vec<Replica>,
    /// Requests shed because every replica's queue was full.
    shed: u64,
    /// Requests admitted (work charged to a replica).
    admitted: u64,
    /// Time and value of the last utilisation sample, so repeated samples
    /// at the same instant (several streams ticking one service) return
    /// the measured value instead of a bogus 0% over an empty window.
    last_sample: (SimTime, f64),
}

impl VersionBackend {
    /// Boots the version's replicas from its spec.
    pub fn new(spec: QueuedBackend) -> Self {
        let replicas = (0..spec.replicas.max(1)).map(|_| Replica::new()).collect();
        Self {
            spec,
            replicas,
            shed: 0,
            admitted: 0,
            last_sample: (SimTime::ZERO, 0.0),
        }
    }

    /// The server shape.
    pub fn spec(&self) -> &QueuedBackend {
        &self.spec
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Dispatches one request arriving at the backend at `at` with the
    /// given service `demand`: among the replicas whose queue
    /// (outstanding requests) still has room, the least-backlogged one
    /// admits it; the request is shed — no work charged — only when every
    /// replica's queue is at capacity.
    pub fn dispatch(&mut self, at: SimTime, demand: Duration) -> BackendDispatch {
        let mut best: Option<(usize, SimTime)> = None;
        for idx in 0..self.replicas.len() {
            if self.replicas[idx].outstanding(at) >= self.spec.queue_capacity {
                continue;
            }
            let start = self.replicas[idx].cpu.earliest_start(at);
            // Strict `<` keeps the lowest index on ties — deterministic.
            if best.is_none_or(|(_, s)| start < s) {
                best = Some((idx, start));
            }
        }
        let Some((idx, _)) = best else {
            self.shed += 1;
            return BackendDispatch::Shed;
        };
        let replica = &mut self.replicas[idx];
        let receipt = replica.cpu.submit(at, demand);
        replica.inflight.push_back(receipt.completed);
        self.admitted += 1;
        BackendDispatch::Admitted(receipt)
    }

    /// Utilisation in percent of the version's total replica capacity since
    /// the previous sample (see [`CpuResource::sample_utilization`]). The
    /// traffic stream samples once per tick, which also keeps the replicas'
    /// pending execution-interval lists drained. Repeated samples at (or
    /// before) the last sample time return the last measured value: when
    /// several streams of one service tick at the same boundary, the
    /// second sampler must not read 0% off an already-drained window.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        if self.replicas.is_empty() {
            return 0.0;
        }
        let (last_at, last_value) = self.last_sample;
        if now <= last_at {
            return last_value;
        }
        let sum: f64 = self
            .replicas
            .iter_mut()
            .map(|r| r.cpu.sample_utilization(now))
            .sum();
        let value = sum / self.replicas.len() as f64;
        self.last_sample = (now, value);
        value
    }

    /// Average utilisation of the version's replicas from time zero to
    /// `now` (independent of the sampling windows).
    pub fn average_utilization(&self, now: SimTime) -> f64 {
        if self.replicas.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .replicas
            .iter()
            .map(|r| r.cpu.average_utilization(now))
            .sum();
        sum / self.replicas.len() as f64
    }
}

impl fmt::Debug for VersionBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionBackend")
            .field("spec", &self.spec)
            .field("admitted", &self.admitted)
            .field("shed", &self.shed)
            .finish()
    }
}

/// The engine's running backend servers, keyed by `(service, version)`.
/// Every traffic stream of a service dispatches into the same servers, so
/// primary and shadow load of concurrent streams contend realistically.
#[derive(Debug, Default)]
pub struct BackendFleet {
    servers: BTreeMap<(ServiceId, VersionId), VersionBackend>,
}

impl BackendFleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the running server of `(service, version)`, booting it from
    /// `spec` on first sight (later calls keep the existing server and its
    /// accumulated load — the first registration wins).
    pub fn ensure(
        &mut self,
        service: ServiceId,
        version: VersionId,
        spec: &QueuedBackend,
    ) -> &mut VersionBackend {
        self.servers
            .entry((service, version))
            .or_insert_with(|| VersionBackend::new(*spec))
    }

    /// The running server of `(service, version)`, if any.
    pub fn server(&self, service: ServiceId, version: VersionId) -> Option<&VersionBackend> {
        self.servers.get(&(service, version))
    }

    /// Iterates mutably over the running servers of one service.
    pub fn servers_of_mut(
        &mut self,
        service: ServiceId,
    ) -> impl Iterator<Item = (VersionId, &mut VersionBackend)> {
        self.servers
            .range_mut((service, VersionId::new(0))..=(service, VersionId::new(u64::MAX)))
            .map(|((_, version), server)| (*version, server))
    }

    /// Number of running version servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether no server has been booted yet.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ms: u64) -> QueuedBackend {
        QueuedBackend::new(Duration::from_millis(ms))
            .with_queue_capacity(2)
            .with_timeout(Duration::from_millis(100))
    }

    #[test]
    fn builders_clamp_degenerate_values() {
        let q = QueuedBackend::new(Duration::from_millis(5))
            .with_error_rate(7.0)
            .with_replicas(0)
            .with_queue_capacity(0)
            .with_timeout(Duration::ZERO);
        assert_eq!(q.error_rate, 1.0);
        assert_eq!(q.replicas, 1);
        assert_eq!(q.queue_capacity, 1);
        assert_eq!(q.timeout, Duration::from_millis(1));
        assert_eq!(
            QueuedBackend::new(Duration::ZERO)
                .with_error_rate(f64::NAN)
                .error_rate,
            0.0
        );
        let d = BackendDefaults::new(0, 0, Duration::ZERO);
        assert_eq!((d.replicas, d.queue_capacity), (1, 1));
    }

    #[test]
    fn idle_server_serves_at_service_demand() {
        let mut server = VersionBackend::new(spec(10));
        match server.dispatch(SimTime::from_secs(1), Duration::from_millis(10)) {
            BackendDispatch::Admitted(receipt) => {
                assert_eq!(receipt.queueing_delay(), Duration::ZERO);
                assert_eq!(receipt.latency(), Duration::from_millis(10));
            }
            BackendDispatch::Shed => panic!("idle server must admit"),
        }
        assert_eq!(server.admitted(), 1);
        assert_eq!(server.shed(), 0);
    }

    #[test]
    fn latency_grows_with_backlog_then_queue_sheds() {
        // Capacity 2 outstanding per replica: the third simultaneous
        // arrival is shed, and the second one queues behind the first.
        let mut server = VersionBackend::new(spec(10));
        let a = server.dispatch(SimTime::ZERO, Duration::from_millis(10));
        let b = server.dispatch(SimTime::ZERO, Duration::from_millis(10));
        let c = server.dispatch(SimTime::ZERO, Duration::from_millis(10));
        let BackendDispatch::Admitted(a) = a else {
            panic!("first admitted")
        };
        let BackendDispatch::Admitted(b) = b else {
            panic!("second admitted")
        };
        assert_eq!(a.queueing_delay(), Duration::ZERO);
        assert_eq!(b.queueing_delay(), Duration::from_millis(10));
        assert_eq!(c, BackendDispatch::Shed);
        assert_eq!(server.shed(), 1);
        // Once the backlog drains, the queue admits again.
        let d = server.dispatch(SimTime::from_millis(50), Duration::from_millis(10));
        assert!(matches!(d, BackendDispatch::Admitted(_)));
    }

    #[test]
    fn a_full_replica_overflows_to_one_with_queue_room() {
        // Replica A ends up time-least-backlogged with a full queue of
        // short jobs; the next arrival must land on B's free slot, not be
        // shed. Capacity 2, two replicas.
        let mut server = VersionBackend::new(spec(10).with_replicas(2));
        // A gets two 1 ms jobs (earliest free), B gets one 40 ms job.
        assert!(matches!(
            server.dispatch(SimTime::ZERO, Duration::from_millis(1)),
            BackendDispatch::Admitted(_)
        ));
        assert!(matches!(
            server.dispatch(SimTime::ZERO, Duration::from_millis(40)),
            BackendDispatch::Admitted(_)
        ));
        assert!(matches!(
            server.dispatch(SimTime::ZERO, Duration::from_millis(1)),
            BackendDispatch::Admitted(_)
        ));
        // A (free at 2 ms) is the time-least-backlogged but holds 2
        // outstanding jobs; B (free at 40 ms) has one slot left.
        let d = server.dispatch(SimTime::ZERO, Duration::from_millis(1));
        let BackendDispatch::Admitted(receipt) = d else {
            panic!("must overflow to the replica with queue room")
        };
        assert_eq!(receipt.started, SimTime::from_millis(40));
        // Now every queue is full → shed.
        assert_eq!(
            server.dispatch(SimTime::ZERO, Duration::from_millis(1)),
            BackendDispatch::Shed
        );
        assert_eq!(server.shed(), 1);
    }

    #[test]
    fn repeated_samples_at_one_instant_return_the_measured_value() {
        let mut server = VersionBackend::new(spec(10));
        server.dispatch(SimTime::ZERO, Duration::from_millis(10));
        let first = server.sample_utilization(SimTime::from_millis(20));
        assert!((first - 50.0).abs() < 1e-9, "{first}");
        // A second stream sampling the shared server at the same tick
        // boundary must see the same measurement, not 0% of an empty
        // window.
        let again = server.sample_utilization(SimTime::from_millis(20));
        assert_eq!(again, first);
        // A genuinely later window measures afresh.
        let later = server.sample_utilization(SimTime::from_millis(40));
        assert_eq!(later, 0.0);
    }

    #[test]
    fn replicas_spread_simultaneous_load() {
        let mut server = VersionBackend::new(spec(10).with_replicas(2));
        let a = server.dispatch(SimTime::ZERO, Duration::from_millis(10));
        let b = server.dispatch(SimTime::ZERO, Duration::from_millis(10));
        for dispatch in [a, b] {
            let BackendDispatch::Admitted(receipt) = dispatch else {
                panic!("admitted")
            };
            assert_eq!(receipt.queueing_delay(), Duration::ZERO);
        }
        // 2 × 10 ms over 2 replicas in a 20 ms window → 50 %.
        let u = server.sample_utilization(SimTime::from_millis(20));
        assert!((u - 50.0).abs() < 1e-9, "{u}");
        assert!((server.average_utilization(SimTime::from_millis(20)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_shares_servers_per_service_version() {
        let mut fleet = BackendFleet::new();
        let service = ServiceId::new(1);
        let v1 = VersionId::new(1);
        let v2 = VersionId::new(2);
        fleet
            .ensure(service, v1, &spec(10))
            .dispatch(SimTime::ZERO, Duration::from_millis(10));
        // Second ensure with a different spec keeps the booted server.
        let server = fleet.ensure(service, v1, &spec(99));
        assert_eq!(server.spec().service_time, Duration::from_millis(10));
        assert_eq!(server.admitted(), 1);
        fleet.ensure(service, v2, &spec(10));
        fleet.ensure(ServiceId::new(2), v1, &spec(10));
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.servers_of_mut(service).count(), 2);
        assert!(fleet.server(service, v1).is_some());
        assert!(fleet.server(service, VersionId::new(9)).is_none());
    }
}
