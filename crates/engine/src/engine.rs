//! The Bifrost engine: strategy scheduling, timed check execution, state
//! transitions, and proxy configuration over virtual time.

use crate::backends::{BackendDefaults, BackendFleet};
use crate::cost::EngineCostModel;
use crate::events::{EngineEvent, EventLog, EventQueue};
use crate::execution::StrategyExecution;
use crate::proxies::{ProxyFleet, ProxyHandle};
use crate::report::StrategyReport;
use crate::traffic::{TrafficHandle, TrafficProfile, TrafficStats, TrafficStream};
use bifrost_core::ids::{CheckId, ServiceId, StateId, StrategyId, VersionId};
use bifrost_core::seed::Seed;
use bifrost_core::strategy::Strategy;
use bifrost_metrics::{ProviderRegistry, SharedMetricStore};
use bifrost_simnet::{CpuResource, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A handle identifying a scheduled strategy within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrategyHandle(StrategyId);

impl StrategyHandle {
    /// The engine-assigned strategy id.
    pub fn id(self) -> StrategyId {
        self.0
    }
}

impl fmt::Display for StrategyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Number of CPU cores available to the engine (the paper's testbed uses
    /// single-core `n1-standard-1` instances).
    pub cores: usize,
    /// The per-action CPU cost model.
    pub costs: EngineCostModel,
    /// How often the engine samples its own CPU utilisation into the event
    /// stream / utilisation trace.
    pub utilization_sample_interval: Duration,
    /// The seed namespacing any stochastic engine behaviour. The enactment
    /// core is deterministic, but the seed is part of the configuration so a
    /// trial's engine, workload, and application all derive from one
    /// [`bifrost_core::TrialConfig`] seed and the whole run is reproducible.
    pub seed: Seed,
    /// How many ways every registered proxy shards its sticky-session
    /// table (striped locks + smaller per-shard trees; see
    /// [`bifrost_proxy::SessionStore`]). Routed decisions and reported
    /// statistics are identical for every shard count — the knob only
    /// moves the routing hot path's scalability.
    pub session_shards: usize,
    /// Capacity defaults for traffic backends declared as plain
    /// [`crate::traffic::BackendProfile`]s: when set, those versions are
    /// served by queued replica servers with this shape instead of the
    /// degenerate unlimited-capacity model. Versions with an explicit
    /// [`crate::backends::QueuedBackend`] keep their own shape.
    pub backend_defaults: Option<BackendDefaults>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cores: 1,
            costs: EngineCostModel::default(),
            utilization_sample_interval: Duration::from_secs(1),
            seed: Seed::DEFAULT,
            session_shards: bifrost_proxy::DEFAULT_SESSION_SHARDS,
            backend_defaults: None,
        }
    }
}

impl EngineConfig {
    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: Seed) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the session-store shard count of registered proxies
    /// (builder style, minimum 1).
    pub fn with_session_shards(mut self, session_shards: usize) -> Self {
        self.session_shards = session_shards.max(1);
        self
    }

    /// Gives profile-only traffic backends a queued capacity shape
    /// (builder style): `defaults` supplies replicas, queue bound, and
    /// timeout; each version's profile keeps supplying service time and
    /// error rate.
    pub fn with_backend_defaults(mut self, defaults: BackendDefaults) -> Self {
        self.backend_defaults = Some(defaults);
        self
    }
}

/// Internal scheduler payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EngineAction {
    /// Admit and start a scheduled strategy.
    StartStrategy { strategy: StrategyId },
    /// Execute one repetition of a check.
    FireCheck {
        strategy: StrategyId,
        state: StateId,
        check: CheckId,
        generation: u64,
    },
    /// The nominal end of a state: evaluate the outcome and transition.
    StateDeadline {
        strategy: StrategyId,
        state: StateId,
        generation: u64,
    },
    /// Sample the engine's CPU utilisation.
    SampleUtilization,
    /// Route one tick's batch of a traffic stream through the proxy fleet.
    TrafficTick { stream: usize, batch: usize },
}

/// The Bifrost engine.
pub struct BifrostEngine {
    config: EngineConfig,
    queue: EventQueue<EngineAction>,
    cpu: CpuResource,
    providers: ProviderRegistry,
    proxies: ProxyFleet,
    executions: BTreeMap<StrategyId, StrategyExecution>,
    traffic: Vec<TrafficStream>,
    /// One proxy-VM CPU per service carrying traffic: streams targeting the
    /// same service contend for the same cores.
    traffic_cpus: BTreeMap<ServiceId, CpuResource>,
    /// The queued backend servers, keyed by `(service, version)`: every
    /// stream's primary and shadow dispatches of a version charge the same
    /// replicas.
    backends: BackendFleet,
    events: EventLog,
    next_strategy_id: u64,
    /// Number of scheduled strategies that have not reached a final state.
    /// Kept in sync by `schedule` / `finish_strategy` so the run loops'
    /// completion test is O(1) instead of a scan over every execution.
    unfinished: usize,
    /// Number of scheduled traffic ticks not yet processed, so
    /// `run_to_completion` drains attached traffic instead of abandoning
    /// it the moment the last strategy finishes.
    pending_traffic_ticks: usize,
    utilization_trace: Vec<(SimTime, f64)>,
    utilization_sampling_started: bool,
}

impl BifrostEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            queue: EventQueue::new(),
            cpu: CpuResource::new(config.cores),
            providers: ProviderRegistry::new(),
            proxies: ProxyFleet::with_session_shards(config.session_shards),
            executions: BTreeMap::new(),
            traffic: Vec::new(),
            traffic_cpus: BTreeMap::new(),
            backends: BackendFleet::new(),
            events: EventLog::new(),
            next_strategy_id: 0,
            unfinished: 0,
            pending_traffic_ticks: 0,
            utilization_trace: Vec::new(),
            utilization_sampling_started: false,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a metrics provider backed by a shared store under `name`
    /// (e.g. `"prometheus"`).
    pub fn register_store_provider(&mut self, name: impl Into<String>, store: SharedMetricStore) {
        self.providers.register_store(name, store);
    }

    /// Direct access to the provider registry (for custom providers).
    pub fn providers_mut(&mut self) -> &mut ProviderRegistry {
        &mut self.providers
    }

    /// Registers a proxy for a service with its default (stable) version and
    /// returns the shared handle for the application simulation.
    pub fn register_proxy(
        &mut self,
        service: ServiceId,
        default_version: VersionId,
    ) -> ProxyHandle {
        self.proxies.register(service, default_version)
    }

    /// The proxy handle of a service, if registered.
    pub fn proxy(&self, service: ServiceId) -> Option<ProxyHandle> {
        self.proxies.handle(service)
    }

    /// Attaches a request-level traffic stream: the profile's arrival plan
    /// is materialised from the engine seed, batched per virtual-time tick,
    /// and every batch is routed through the target service's proxy as the
    /// engine advances — recording the observed per-version series into
    /// `store` (register the same store as a provider so checks see them).
    /// Returns a handle for querying the stream's statistics.
    ///
    /// Streams targeting the same service share that service's proxy-VM
    /// CPU (the first attached profile sizes it), so concurrent streams
    /// contend realistically. Give each stream a distinct service label
    /// when recording into the same store — two recorders publishing under
    /// one label would interleave their independent cumulative totals into
    /// the same counter series.
    pub fn attach_traffic(
        &mut self,
        profile: TrafficProfile,
        store: SharedMetricStore,
    ) -> TrafficHandle {
        let index = self.traffic.len();
        let stream = TrafficStream::new(
            profile,
            index,
            self.config.seed,
            store,
            self.config.backend_defaults,
        );
        self.traffic_cpus
            .entry(stream.service())
            .or_insert_with(|| CpuResource::new(stream.cores()));
        let tick_times = stream.batch_times();
        self.pending_traffic_ticks += tick_times.len();
        self.queue
            .schedule_batch(tick_times.into_iter().enumerate().map(|(batch, at)| {
                (
                    at,
                    EngineAction::TrafficTick {
                        stream: index,
                        batch,
                    },
                )
            }));
        self.traffic.push(stream);
        TrafficHandle(index)
    }

    /// The accumulated statistics of an attached traffic stream.
    pub fn traffic_stats(&self, handle: TrafficHandle) -> Option<&TrafficStats> {
        self.traffic.get(handle.0).map(TrafficStream::stats)
    }

    /// The running queued backend servers (for utilisation queries by
    /// experiment harnesses and tests). Servers boot lazily on the first
    /// dispatch of a version with a queued backend model.
    pub fn backends(&self) -> &BackendFleet {
        &self.backends
    }

    /// Schedules a strategy to start at `start_at`. Returns a handle for
    /// later report queries.
    pub fn schedule(&mut self, strategy: Strategy, start_at: SimTime) -> StrategyHandle {
        let id = StrategyId::new(self.next_strategy_id);
        self.next_strategy_id += 1;
        let execution = StrategyExecution::new(id, strategy, start_at);
        self.executions.insert(id, execution);
        self.unfinished += 1;
        self.events.push(EngineEvent::StrategyScheduled {
            strategy: id,
            start_at,
        });
        self.queue
            .schedule_at(start_at, EngineAction::StartStrategy { strategy: id });
        StrategyHandle(id)
    }

    /// The current virtual time of the engine.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The engine's event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The engine's CPU (for utilisation queries by experiment harnesses).
    pub fn cpu(&self) -> &CpuResource {
        &self.cpu
    }

    /// The periodic CPU utilisation trace `(time, percent)` sampled every
    /// [`EngineConfig::utilization_sample_interval`].
    pub fn utilization_trace(&self) -> &[(SimTime, f64)] {
        &self.utilization_trace
    }

    /// The report for a scheduled strategy.
    pub fn report(&self, handle: StrategyHandle) -> Option<StrategyReport> {
        self.executions
            .get(&handle.id())
            .map(StrategyReport::from_execution)
    }

    /// Reports for all scheduled strategies.
    pub fn reports(&self) -> Vec<StrategyReport> {
        self.executions
            .values()
            .map(StrategyReport::from_execution)
            .collect()
    }

    /// Whether every scheduled strategy has reached a final state. O(1):
    /// the engine counts unfinished strategies instead of scanning them.
    pub fn all_finished(&self) -> bool {
        debug_assert_eq!(
            self.unfinished,
            self.executions
                .values()
                .filter(|e| !e.status().is_finished())
                .count()
        );
        self.unfinished == 0
    }

    fn start_utilization_sampling(&mut self) {
        if !self.utilization_sampling_started {
            self.utilization_sampling_started = true;
            self.queue.schedule_at(
                SimTime::ZERO + self.config.utilization_sample_interval,
                EngineAction::SampleUtilization,
            );
        }
    }

    /// Runs the engine until all pending work up to `deadline` has been
    /// processed, advancing virtual time. Returns the number of events
    /// processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_utilization_sampling();
        let mut processed = 0;
        while let Some(due) = self.queue.pop_until(deadline) {
            processed += 1;
            self.handle_action(due.at, due.action, deadline);
        }
        self.queue.advance_to(deadline);
        processed
    }

    /// Runs the engine until every scheduled strategy has finished and
    /// every attached traffic tick has been routed, or `deadline` is
    /// reached, whichever comes first.
    pub fn run_to_completion(&mut self, deadline: SimTime) -> u64 {
        self.start_utilization_sampling();
        let mut processed = 0;
        while self.unfinished > 0 || self.pending_traffic_ticks > 0 {
            match self.queue.pop_until(deadline) {
                Some(due) => {
                    processed += 1;
                    self.handle_action(due.at, due.action, deadline);
                }
                None => break,
            }
        }
        processed
    }

    fn handle_action(&mut self, at: SimTime, action: EngineAction, deadline: SimTime) {
        match action {
            EngineAction::SampleUtilization => {
                let utilization = self.cpu.sample_utilization(at);
                self.utilization_trace.push((at, utilization));
                let next = at + self.config.utilization_sample_interval;
                if next <= deadline
                    && !(self.unfinished == 0
                        && self.pending_traffic_ticks == 0
                        && self.queue.is_empty())
                {
                    self.queue
                        .schedule_at(next, EngineAction::SampleUtilization);
                }
            }
            EngineAction::StartStrategy { strategy } => self.start_strategy(strategy, at),
            EngineAction::FireCheck {
                strategy,
                state,
                check,
                generation,
            } => self.fire_check(strategy, state, check, generation, at),
            EngineAction::StateDeadline {
                strategy,
                state,
                generation,
            } => self.state_deadline(strategy, state, generation, at),
            EngineAction::TrafficTick { stream, batch } => self.traffic_tick(stream, batch, at),
        }
    }

    /// Routes one traffic tick's batch through the target service's proxy.
    /// Streams whose service has no registered proxy are skipped (like
    /// rules for unregistered services).
    fn traffic_tick(&mut self, stream: usize, batch: usize, at: SimTime) {
        self.pending_traffic_ticks = self.pending_traffic_ticks.saturating_sub(1);
        let Some(traffic) = self.traffic.get_mut(stream) else {
            return;
        };
        let Some(proxy) = self.proxies.handle(traffic.service()) else {
            return;
        };
        let cpu = self
            .traffic_cpus
            .get_mut(&traffic.service())
            .expect("registered at attach");
        traffic.route_batch(batch, &proxy, cpu, &mut self.backends, at);
    }

    fn start_strategy(&mut self, strategy: StrategyId, at: SimTime) {
        // Admission work (parsing, instantiating runtime state) contends for
        // the engine CPU; with many strategies submitted at once the later
        // ones begin their first state correspondingly later. The execution
        // counts as *started* at its scheduled time — exactly how the paper
        // measures "end time − start time" against the specified duration.
        let admission = self.config.costs.admission_cost();
        let receipt = self.cpu.submit(at, admission);
        let first_state_at = receipt.completed;
        let start_state = {
            let execution = match self.executions.get_mut(&strategy) {
                Some(e) => e,
                None => return,
            };
            execution.mark_started(at);
            execution.strategy().automaton().start()
        };
        self.events
            .push(EngineEvent::StrategyStarted { strategy, at });
        self.enter_state(strategy, start_state, first_state_at);
    }

    /// Enters a state: pushes proxy configurations, schedules the state's
    /// check timers and deadline.
    fn enter_state(&mut self, strategy: StrategyId, state: StateId, at: SimTime) {
        let (generation, routing, checks, duration, is_final) = {
            let execution = match self.executions.get_mut(&strategy) {
                Some(e) => e,
                None => return,
            };
            let generation = match execution.enter_state(state, at) {
                Ok(g) => g,
                Err(_) => return,
            };
            let state_def = execution
                .current_state_def()
                .expect("state was just entered");
            let routing = state_def.routing().to_vec();
            let checks: Vec<(CheckId, Vec<Duration>)> = state_def
                .checks()
                .iter()
                .map(|c| (c.id(), c.timer().fire_offsets().collect()))
                .collect();
            let duration = state_def.duration();
            let is_final = execution.strategy().automaton().is_final(state);
            (generation, routing, checks, duration, is_final)
        };

        self.events.push(EngineEvent::StateEntered {
            strategy,
            state,
            at,
        });

        // Push proxy configuration updates; the engine pays CPU per proxy.
        let updated = self.proxies.apply_rules(&routing);
        if !updated.is_empty() {
            let cost = self.config.costs.proxy_update_cost(updated.len());
            let receipt = self.cpu.submit(at, cost);
            for (service, revision) in updated {
                self.events.push(EngineEvent::ProxyConfigured {
                    strategy,
                    service,
                    revision,
                    at: receipt.completed,
                });
            }
        }

        if is_final {
            self.finish_strategy(strategy, state, at);
            return;
        }

        // Schedule timed check executions relative to the state entry.
        for (check, offsets) in checks {
            self.queue.schedule_batch(offsets.into_iter().map(|offset| {
                (
                    at + offset,
                    EngineAction::FireCheck {
                        strategy,
                        state,
                        check,
                        generation,
                    },
                )
            }));
        }
        // Schedule the state's nominal deadline.
        self.queue.schedule_at(
            at + duration,
            EngineAction::StateDeadline {
                strategy,
                state,
                generation,
            },
        );
    }

    /// Marks a strategy finished in `final_state`, maintains the unfinished
    /// counter, and emits the completion event.
    fn finish_strategy(&mut self, strategy: StrategyId, final_state: StateId, at: SimTime) {
        let success = {
            let execution = self.executions.get_mut(&strategy).expect("known strategy");
            let was_finished = execution.status().is_finished();
            execution.mark_finished(final_state, at);
            if !was_finished {
                self.unfinished = self.unfinished.saturating_sub(1);
            }
            execution.strategy().is_success(final_state)
        };
        self.events.push(EngineEvent::StrategyCompleted {
            strategy,
            final_state,
            success,
            at,
        });
    }

    fn fire_check(
        &mut self,
        strategy: StrategyId,
        state: StateId,
        check: CheckId,
        generation: u64,
        at: SimTime,
    ) {
        // Gather what we need and validate that the event is not stale.
        let (spec_queries, is_exception, fallback) = {
            let execution = match self.executions.get(&strategy) {
                Some(e) => e,
                None => return,
            };
            if execution.generation() != generation
                || execution.current_state() != Some(state)
                || execution.status().is_finished()
            {
                return;
            }
            let state_def = match execution.current_state_def() {
                Some(s) => s,
                None => return,
            };
            let check_def = match state_def.check(check) {
                Some(c) => c,
                None => return,
            };
            (
                check_def.spec().clone(),
                check_def.is_exception(),
                check_def.fallback(),
            )
        };

        // The engine pays CPU for the check execution and its metric queries.
        let cost = self.config.costs.check_cost(spec_queries.queries().len());
        let receipt = self.cpu.submit(at, cost);
        let executed_at = receipt.completed;

        // Fetch the metric values *at the time the queries actually run*.
        let values = self
            .providers
            .fetch_all(spec_queries.queries(), executed_at.to_timestamp());
        let success = spec_queries.evaluate(&values);

        let execution = match self.executions.get_mut(&strategy) {
            Some(e) => e,
            None => return,
        };
        // Re-validate staleness: the state may have been exited while the
        // check work was queued on the CPU.
        if execution.generation() != generation || execution.current_state() != Some(state) {
            return;
        }
        let _ = execution.record_check_execution(check, success);
        self.events.push(EngineEvent::CheckExecuted {
            strategy,
            state,
            check,
            success,
            at: executed_at,
        });

        // A failing exception check aborts the state immediately.
        if is_exception && !success {
            if let Some(fallback) = fallback {
                execution.record_exception(fallback);
                self.events.push(EngineEvent::ExceptionTriggered {
                    strategy,
                    state,
                    check,
                    fallback,
                    at: executed_at,
                });
                let eval_cost = self.config.costs.state_evaluation_cost();
                let eval_receipt = self.cpu.submit(executed_at, eval_cost);
                self.transition(strategy, state, eval_receipt.completed);
            }
        }
    }

    fn state_deadline(
        &mut self,
        strategy: StrategyId,
        state: StateId,
        generation: u64,
        at: SimTime,
    ) {
        {
            let execution = match self.executions.get(&strategy) {
                Some(e) => e,
                None => return,
            };
            if execution.generation() != generation
                || execution.current_state() != Some(state)
                || execution.status().is_finished()
            {
                return;
            }
        }
        // Evaluating the state consumes CPU; the transition happens when that
        // work completes (possibly delayed by queued check executions).
        let cost = self.config.costs.state_evaluation_cost();
        let receipt = self.cpu.submit(at, cost);
        self.transition(strategy, state, receipt.completed);
    }

    /// Applies the transition function to the completed state and enters the
    /// successor (or finishes the strategy).
    fn transition(&mut self, strategy: StrategyId, state: StateId, at: SimTime) {
        let (outcome_value, next) = {
            let execution = match self.executions.get(&strategy) {
                Some(e) => e,
                None => return,
            };
            if execution.current_state() != Some(state) || execution.status().is_finished() {
                return;
            }
            let outcome = match execution.build_outcome() {
                Ok(o) => o,
                Err(_) => return,
            };
            let next = execution
                .strategy()
                .automaton()
                .next_state(&outcome)
                .unwrap_or_default();
            (outcome.value, next)
        };
        self.events.push(EngineEvent::StateEvaluated {
            strategy,
            state,
            outcome: outcome_value,
            next,
            at,
        });
        match next {
            Some(next_state) => self.enter_state(strategy, next_state, at),
            None => {
                // The state itself was final (should normally be handled on
                // entry, but kept for robustness).
                self.finish_strategy(strategy, state, at);
            }
        }
    }
}

impl fmt::Debug for BifrostEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BifrostEngine")
            .field("now", &self.queue.now())
            .field("strategies", &self.executions.len())
            .field("unfinished", &self.unfinished)
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::phase::PhaseCheck;
    use bifrost_core::prelude::*;
    use bifrost_metrics::SeriesKey;

    struct Fixture {
        engine: BifrostEngine,
        store: SharedMetricStore,
        catalog: ServiceCatalog,
        search: ServiceId,
        stable: VersionId,
        fast: VersionId,
    }

    fn fixture() -> Fixture {
        let mut catalog = ServiceCatalog::new();
        let search = catalog.add_service(Service::new("search"));
        let stable = catalog
            .add_version(
                search,
                ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
            )
            .unwrap();
        let fast = catalog
            .add_version(
                search,
                ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)),
            )
            .unwrap();
        let store = SharedMetricStore::new();
        let mut engine = BifrostEngine::new(EngineConfig::default());
        engine.register_store_provider("prometheus", store.clone());
        engine.register_proxy(search, stable);
        Fixture {
            engine,
            store,
            catalog,
            search,
            stable,
            fast,
        }
    }

    fn error_check(every_secs: u64, times: u32) -> PhaseCheck {
        PhaseCheck::basic(
            "errors",
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors")
                    .with_label("instance", "search:80"),
                Validator::LessThan(5.0),
            ),
            Timer::from_secs(every_secs, times).unwrap(),
            OutcomeMapping::binary(times as i64, -1, 1).unwrap(),
        )
    }

    fn exception_check(every_secs: u64, times: u32) -> PhaseCheck {
        PhaseCheck::exception(
            "error-spike",
            CheckSpec::single(
                MetricQuery::new("prometheus", "errors", "request_errors")
                    .with_label("instance", "search:80"),
                Validator::LessThan(100.0),
            ),
            Timer::from_secs(every_secs, times).unwrap(),
        )
    }

    fn feed_low_errors(store: &SharedMetricStore, until_secs: u64) {
        for t in 0..until_secs {
            store.record_value(
                SeriesKey::new("request_errors").with_label("instance", "search:80"),
                bifrost_metrics::TimestampMs::from_secs(t),
                1.0,
            );
        }
    }

    #[test]
    fn single_canary_strategy_succeeds_with_healthy_metrics() {
        let mut f = fixture();
        feed_low_errors(&f.store, 200);
        let strategy = StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary-5",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(error_check(12, 5))
                .duration_secs(60),
            )
            .build()
            .unwrap();
        let handle = f.engine.schedule(strategy, SimTime::ZERO);
        f.engine.run_until(SimTime::from_secs(300));

        let report = f.engine.report(handle).unwrap();
        assert!(report.is_finished());
        assert!(report.succeeded());
        assert!(report.measured_duration().unwrap() >= Duration::from_secs(60));
        // 5 check executions were recorded.
        let check_events = f
            .engine
            .events()
            .for_strategy(handle.id())
            .filter(|e| matches!(e, EngineEvent::CheckExecuted { .. }))
            .count();
        assert_eq!(check_events, 5);
    }

    #[test]
    fn unhealthy_metrics_cause_rollback() {
        let mut f = fixture();
        // High error counts → the "< 5" validator fails on every execution.
        for t in 0..200 {
            f.store.record_value(
                SeriesKey::new("request_errors").with_label("instance", "search:80"),
                bifrost_metrics::TimestampMs::from_secs(t),
                50.0,
            );
        }
        let strategy = StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary-5",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(error_check(12, 5))
                .duration_secs(60),
            )
            .build()
            .unwrap();
        let handle = f.engine.schedule(strategy, SimTime::ZERO);
        f.engine.run_until(SimTime::from_secs(300));
        let report = f.engine.report(handle).unwrap();
        assert!(report.is_finished());
        assert!(!report.succeeded());
    }

    #[test]
    fn missing_metrics_fail_checks_and_roll_back() {
        let mut f = fixture();
        let strategy = StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary-5",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(error_check(12, 5))
                .duration_secs(60),
            )
            .build()
            .unwrap();
        let handle = f.engine.schedule(strategy, SimTime::ZERO);
        f.engine.run_until(SimTime::from_secs(300));
        assert!(!f.engine.report(handle).unwrap().succeeded());
    }

    #[test]
    fn exception_check_aborts_state_early() {
        let mut f = fixture();
        // Error counts far above the exception threshold of 100.
        for t in 0..200 {
            f.store.record_value(
                SeriesKey::new("request_errors").with_label("instance", "search:80"),
                bifrost_metrics::TimestampMs::from_secs(t),
                500.0,
            );
        }
        let strategy = StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary-5",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(exception_check(12, 5))
                .duration_secs(60),
            )
            .build()
            .unwrap();
        let handle = f.engine.schedule(strategy, SimTime::ZERO);
        f.engine.run_until(SimTime::from_secs(300));
        let report = f.engine.report(handle).unwrap();
        assert!(report.is_finished());
        assert!(!report.succeeded());
        // The rollback happened at the first check execution (~12 s), well
        // before the nominal 60 s state end.
        assert!(report.measured_duration().unwrap() < Duration::from_secs(30));
        assert!(f
            .engine
            .events()
            .for_strategy(handle.id())
            .any(|e| matches!(e, EngineEvent::ExceptionTriggered { .. })));
    }

    #[test]
    fn multi_phase_strategy_walks_all_phases() {
        let mut f = fixture();
        feed_low_errors(&f.store, 500);
        let strategy = StrategyBuilder::new("full", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(error_check(12, 5))
                .duration_secs(60),
            )
            .phase(
                PhaseSpec::dark_launch("dark", f.search, f.stable, f.fast, Percentage::full())
                    .duration_secs(60),
            )
            .phase(PhaseSpec::ab_test("ab", f.search, f.stable, f.fast).duration_secs(60))
            .phase(PhaseSpec::gradual_rollout(
                "rollout",
                f.search,
                f.stable,
                f.fast,
                Percentage::new(5.0).unwrap(),
                Percentage::new(100.0).unwrap(),
                Percentage::new(5.0).unwrap(),
                Duration::from_secs(10),
            ))
            .build()
            .unwrap();
        let nominal = strategy.nominal_duration();
        let handle = f.engine.schedule(strategy, SimTime::ZERO);
        f.engine.run_until(SimTime::from_secs(1_000));
        let report = f.engine.report(handle).unwrap();
        assert!(report.succeeded(), "report: {report:?}");
        // canary + dark + ab + 20 rollout steps + success state = 24 entries.
        assert_eq!(report.state_history.len(), 24);
        assert!(report.measured_duration().unwrap() >= nominal);
        // A single strategy on an idle engine has negligible delay.
        assert!(report.enactment_delay().unwrap() < Duration::from_secs(2));
    }

    #[test]
    fn proxy_is_reconfigured_on_state_transitions() {
        let mut f = fixture();
        feed_low_errors(&f.store, 300);
        let proxy = f.engine.proxy(f.search).unwrap();
        let strategy = StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "canary-5",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(5.0).unwrap(),
                )
                .duration_secs(30),
            )
            .build()
            .unwrap();
        f.engine.schedule(strategy, SimTime::ZERO);
        f.engine.run_until(SimTime::from_secs(5));
        // During the canary state the proxy must be active.
        assert!(proxy.read().is_active());
        f.engine.run_until(SimTime::from_secs(200));
        // After completion the success state routes 100% to the new version.
        let config_updates = proxy.read().stats().config_updates;
        assert!(config_updates >= 2, "updates: {config_updates}");
    }

    #[test]
    fn parallel_strategies_incur_queueing_delay() {
        let mut base = fixture();
        feed_low_errors(&base.store, 2_000);
        // Build one reference strategy and clone it many times.
        let make = |catalog: &ServiceCatalog, search, stable, fast| {
            StrategyBuilder::new("load", catalog.clone())
                .phase(
                    PhaseSpec::canary(
                        "canary",
                        search,
                        stable,
                        fast,
                        Percentage::new(5.0).unwrap(),
                    )
                    .check(error_check(12, 5))
                    .duration_secs(60),
                )
                .build()
                .unwrap()
        };
        // Engine with a single strategy.
        let solo_handle = base.engine.schedule(
            make(&base.catalog, base.search, base.stable, base.fast),
            SimTime::ZERO,
        );
        base.engine.run_until(SimTime::from_secs(400));
        let solo_delay = base
            .engine
            .report(solo_handle)
            .unwrap()
            .enactment_delay()
            .unwrap();

        // Engine with 150 identical strategies starting at the same time.
        let mut busy = fixture();
        feed_low_errors(&busy.store, 2_000);
        let handles: Vec<_> = (0..150)
            .map(|_| {
                busy.engine.schedule(
                    make(&busy.catalog, busy.search, busy.stable, busy.fast),
                    SimTime::ZERO,
                )
            })
            .collect();
        busy.engine.run_until(SimTime::from_secs(1_000));
        let delays: Vec<Duration> = handles
            .iter()
            .map(|h| busy.engine.report(*h).unwrap().enactment_delay().unwrap())
            .collect();
        let mean_delay = delays.iter().map(|d| d.as_secs_f64()).sum::<f64>() / delays.len() as f64;
        assert!(
            mean_delay > solo_delay.as_secs_f64(),
            "mean {mean_delay} vs solo {}",
            solo_delay.as_secs_f64()
        );
        // Utilisation was sampled and shows load.
        assert!(!busy.engine.utilization_trace().is_empty());
        let peak = busy
            .engine
            .utilization_trace()
            .iter()
            .map(|(_, u)| *u)
            .fold(0.0f64, f64::max);
        assert!(peak > 10.0, "peak {peak}");
    }

    #[test]
    fn run_to_completion_stops_when_everything_finished() {
        let mut f = fixture();
        feed_low_errors(&f.store, 300);
        let strategy = StrategyBuilder::new("canary", f.catalog.clone())
            .phase(
                PhaseSpec::canary(
                    "c",
                    f.search,
                    f.stable,
                    f.fast,
                    Percentage::new(5.0).unwrap(),
                )
                .duration_secs(30),
            )
            .build()
            .unwrap();
        let handle = f.engine.schedule(strategy, SimTime::from_secs(10));
        let processed = f.engine.run_to_completion(SimTime::from_secs(3_600));
        assert!(processed > 0);
        assert!(f.engine.all_finished());
        let report = f.engine.report(handle).unwrap();
        assert!(report.started_at.is_none() || report.is_finished());
        assert!(f.engine.now() < SimTime::from_secs(3_600));
        assert!(format!("{:?}", f.engine).contains("BifrostEngine"));
    }
}
