//! Per-strategy execution reports.
//!
//! Reports summarise what the engine did for one strategy: when it was
//! scheduled, when it actually started and finished, which states it walked
//! through, and — the key quantity of Figures 8 and 10 — the *enactment
//! delay*: how much longer the execution took than the strategy's nominal
//! duration because engine work had to queue on the shared CPU.

use crate::execution::{ExecutionStatus, StrategyExecution};
use bifrost_core::ids::{StateId, StrategyId};
use bifrost_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A summary of one strategy execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyReport {
    /// The strategy.
    pub strategy: StrategyId,
    /// The strategy name.
    pub name: String,
    /// Lifecycle status at reporting time.
    pub status: ExecutionStatus,
    /// When the strategy was scheduled to start.
    pub scheduled_at: SimTime,
    /// When it actually started.
    pub started_at: Option<SimTime>,
    /// When it finished.
    pub finished_at: Option<SimTime>,
    /// The nominal (specified) duration of the strategy's happy path.
    pub nominal_duration: Duration,
    /// The states visited so far, with entry times.
    pub state_history: Vec<(StateId, SimTime)>,
    /// The final state, if finished.
    pub final_state: Option<StateId>,
}

impl StrategyReport {
    /// Builds a report from the engine's runtime state.
    pub fn from_execution(execution: &StrategyExecution) -> Self {
        let final_state = execution
            .status()
            .is_finished()
            .then(|| execution.history().last().map(|(s, _)| *s))
            .flatten();
        Self {
            strategy: execution.id(),
            name: execution.strategy().name().to_string(),
            status: execution.status(),
            scheduled_at: execution.scheduled_at(),
            started_at: execution.started_at(),
            finished_at: execution.finished_at(),
            nominal_duration: execution.strategy().nominal_duration(),
            state_history: execution.history().to_vec(),
            final_state,
        }
    }

    /// Whether the execution reached a final state.
    pub fn is_finished(&self) -> bool {
        self.status.is_finished()
    }

    /// Whether the execution finished in the success state.
    pub fn succeeded(&self) -> bool {
        self.status == ExecutionStatus::Succeeded
    }

    /// The measured execution duration (start → finish), if finished.
    pub fn measured_duration(&self) -> Option<Duration> {
        match (self.started_at, self.finished_at) {
            (Some(start), Some(end)) => Some(end - start),
            _ => None,
        }
    }

    /// The enactment delay: measured duration minus nominal duration
    /// (clamped at zero). Only meaningful for successful executions — a
    /// rollback legitimately ends early.
    pub fn enactment_delay(&self) -> Option<Duration> {
        let measured = self.measured_duration()?;
        Some(measured.saturating_sub(self.nominal_duration))
    }

    /// Number of state transitions taken.
    pub fn transitions(&self) -> usize {
        self.state_history.len().saturating_sub(1)
    }

    /// Renders a short textual summary (used by the CLI).
    pub fn summary(&self) -> String {
        let status = match self.status {
            ExecutionStatus::Scheduled => "scheduled",
            ExecutionStatus::Running => "running",
            ExecutionStatus::Succeeded => "succeeded",
            ExecutionStatus::RolledBack => "rolled back",
        };
        let delay = self
            .enactment_delay()
            .map(|d| format!(", delay {:.2}s", d.as_secs_f64()))
            .unwrap_or_default();
        format!(
            "{} [{}] {} states visited{}",
            self.name,
            status,
            self.state_history.len(),
            delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::prelude::*;

    fn execution() -> StrategyExecution {
        let mut catalog = ServiceCatalog::new();
        let search = catalog.add_service(Service::new("search"));
        let stable = catalog
            .add_version(
                search,
                ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
            )
            .unwrap();
        let fast = catalog
            .add_version(
                search,
                ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)),
            )
            .unwrap();
        let strategy = StrategyBuilder::new("report-test", catalog)
            .phase(
                PhaseSpec::canary(
                    "canary",
                    search,
                    stable,
                    fast,
                    Percentage::new(5.0).unwrap(),
                )
                .duration_secs(60),
            )
            .build()
            .unwrap();
        StrategyExecution::new(StrategyId::new(7), strategy, SimTime::ZERO)
    }

    #[test]
    fn report_of_unstarted_execution() {
        let exec = execution();
        let report = StrategyReport::from_execution(&exec);
        assert_eq!(report.strategy, StrategyId::new(7));
        assert_eq!(report.name, "report-test");
        assert!(!report.is_finished());
        assert!(!report.succeeded());
        assert!(report.measured_duration().is_none());
        assert!(report.enactment_delay().is_none());
        assert_eq!(report.transitions(), 0);
        assert!(report.summary().contains("scheduled"));
    }

    #[test]
    fn report_of_finished_execution_computes_delay() {
        let mut exec = execution();
        let start_state = exec.strategy().automaton().start();
        let success = exec.strategy().success_state();
        exec.mark_started(SimTime::ZERO);
        exec.enter_state(start_state, SimTime::ZERO).unwrap();
        exec.enter_state(success, SimTime::from_secs(68)).unwrap();
        exec.mark_finished(success, SimTime::from_secs(68));

        let report = StrategyReport::from_execution(&exec);
        assert!(report.is_finished());
        assert!(report.succeeded());
        assert_eq!(report.final_state, Some(success));
        assert_eq!(report.measured_duration(), Some(Duration::from_secs(68)));
        // Nominal duration is 60 s → 8 s delay.
        assert_eq!(report.nominal_duration, Duration::from_secs(60));
        assert_eq!(report.enactment_delay(), Some(Duration::from_secs(8)));
        assert_eq!(report.transitions(), 1);
        assert!(report.summary().contains("succeeded"));
        assert!(report.summary().contains("delay"));
    }

    #[test]
    fn delay_is_clamped_at_zero_for_fast_completions() {
        let mut exec = execution();
        let start_state = exec.strategy().automaton().start();
        let rollback = exec.strategy().rollback_state();
        exec.mark_started(SimTime::ZERO);
        exec.enter_state(start_state, SimTime::ZERO).unwrap();
        exec.enter_state(rollback, SimTime::from_secs(5)).unwrap();
        exec.mark_finished(rollback, SimTime::from_secs(5));
        let report = StrategyReport::from_execution(&exec);
        assert_eq!(report.enactment_delay(), Some(Duration::ZERO));
        assert!(!report.succeeded());
        assert!(report.summary().contains("rolled back"));
    }
}
