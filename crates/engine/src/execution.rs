//! Runtime state of one strategy being enacted.

use bifrost_core::ids::{CheckId, StateId, StrategyId};
use bifrost_core::outcome::{CheckOutcome, StateOutcome};
use bifrost_core::state::State;
use bifrost_core::strategy::Strategy;
use bifrost_core::ModelError;
use bifrost_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The progress of one check within the currently executing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckProgress {
    /// The check.
    pub check: CheckId,
    /// Number of executions performed so far.
    pub executions: u32,
    /// Number of executions that returned 1.
    pub successes: i64,
    /// Total executions the timer prescribes.
    pub planned: u32,
}

impl CheckProgress {
    /// Whether every planned execution has run.
    pub fn is_complete(&self) -> bool {
        self.executions >= self.planned
    }
}

/// The lifecycle of a strategy execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionStatus {
    /// Scheduled but not yet admitted by the engine.
    Scheduled,
    /// Currently executing some state.
    Running,
    /// Finished in the success state.
    Succeeded,
    /// Finished in the rollback state (or another non-success final state).
    RolledBack,
}

impl ExecutionStatus {
    /// Whether the execution has reached a final state.
    pub fn is_finished(self) -> bool {
        matches!(
            self,
            ExecutionStatus::Succeeded | ExecutionStatus::RolledBack
        )
    }
}

/// The engine-side runtime state of one strategy.
#[derive(Debug)]
pub struct StrategyExecution {
    id: StrategyId,
    strategy: Strategy,
    status: ExecutionStatus,
    scheduled_at: SimTime,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    current_state: Option<StateId>,
    /// Generation counter: bumped on every state entry so that stale timer
    /// events from an already-exited state can be ignored.
    generation: u64,
    state_entered_at: Option<SimTime>,
    progress: BTreeMap<CheckId, CheckProgress>,
    /// Exception fallback captured when an exception check trips.
    pending_exception: Option<StateId>,
    /// History of `(state, entered_at)` pairs.
    history: Vec<(StateId, SimTime)>,
}

impl StrategyExecution {
    /// Creates the runtime state for a strategy scheduled at `scheduled_at`.
    pub fn new(id: StrategyId, strategy: Strategy, scheduled_at: SimTime) -> Self {
        Self {
            id,
            strategy,
            status: ExecutionStatus::Scheduled,
            scheduled_at,
            started_at: None,
            finished_at: None,
            current_state: None,
            generation: 0,
            state_entered_at: None,
            progress: BTreeMap::new(),
            pending_exception: None,
            history: Vec::new(),
        }
    }

    /// The engine-assigned strategy id.
    pub fn id(&self) -> StrategyId {
        self.id
    }

    /// The strategy being executed.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The current lifecycle status.
    pub fn status(&self) -> ExecutionStatus {
        self.status
    }

    /// When the strategy was scheduled to start.
    pub fn scheduled_at(&self) -> SimTime {
        self.scheduled_at
    }

    /// When execution actually started.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// When execution finished.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// The state currently being executed.
    pub fn current_state(&self) -> Option<StateId> {
        self.current_state
    }

    /// The generation counter identifying the current state entry.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// When the current state was entered.
    pub fn state_entered_at(&self) -> Option<SimTime> {
        self.state_entered_at
    }

    /// The `(state, entered_at)` history, in order.
    pub fn history(&self) -> &[(StateId, SimTime)] {
        &self.history
    }

    /// The per-check progress of the current state.
    pub fn progress(&self) -> impl Iterator<Item = &CheckProgress> {
        self.progress.values()
    }

    /// Marks the execution as started.
    pub fn mark_started(&mut self, at: SimTime) {
        self.status = ExecutionStatus::Running;
        self.started_at = Some(at);
    }

    /// Enters a state: bumps the generation, resets check progress, and
    /// returns the new generation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownState`] if the state is not part of the
    /// strategy's automaton.
    pub fn enter_state(&mut self, state: StateId, at: SimTime) -> Result<u64, ModelError> {
        let state_def = self
            .strategy
            .automaton()
            .state(state)
            .ok_or(ModelError::UnknownState(state))?;
        self.generation += 1;
        self.current_state = Some(state);
        self.state_entered_at = Some(at);
        self.pending_exception = None;
        self.progress = state_def
            .checks()
            .iter()
            .map(|check| {
                (
                    check.id(),
                    CheckProgress {
                        check: check.id(),
                        executions: 0,
                        successes: 0,
                        planned: check.timer().repetitions(),
                    },
                )
            })
            .collect();
        self.history.push((state, at));
        Ok(self.generation)
    }

    /// The definition of the current state.
    pub fn current_state_def(&self) -> Option<&State> {
        self.current_state
            .and_then(|id| self.strategy.automaton().state(id))
    }

    /// Records one execution of a check. Returns the updated progress.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownCheck`] if the check does not belong to
    /// the current state.
    pub fn record_check_execution(
        &mut self,
        check: CheckId,
        success: bool,
    ) -> Result<CheckProgress, ModelError> {
        let progress = self
            .progress
            .get_mut(&check)
            .ok_or(ModelError::UnknownCheck(check))?;
        progress.executions += 1;
        if success {
            progress.successes += 1;
        }
        Ok(*progress)
    }

    /// Records that an exception check tripped, capturing its fallback state.
    pub fn record_exception(&mut self, fallback: StateId) {
        self.pending_exception = Some(fallback);
    }

    /// The exception fallback captured for the current state, if any.
    pub fn pending_exception(&self) -> Option<StateId> {
        self.pending_exception
    }

    /// Builds the [`StateOutcome`] of the current state from the recorded
    /// check progress.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Validation`] if no state is active, and
    /// propagates weight mismatches from the outcome combination.
    pub fn build_outcome(&self) -> Result<StateOutcome, ModelError> {
        let state_id = self
            .current_state
            .ok_or_else(|| ModelError::Validation("no state is currently active".into()))?;
        let state = self
            .strategy
            .automaton()
            .state(state_id)
            .ok_or(ModelError::UnknownState(state_id))?;
        let checks: Vec<CheckOutcome> = state
            .checks()
            .iter()
            .map(|check| {
                let progress = self
                    .progress
                    .get(&check.id())
                    .copied()
                    .unwrap_or(CheckProgress {
                        check: check.id(),
                        executions: 0,
                        successes: 0,
                        planned: check.timer().repetitions(),
                    });
                let mapped = check.map_aggregate(progress.successes);
                if check.is_exception() {
                    if self.pending_exception.is_some() && Some(check.id()) == self.tripped_check()
                    {
                        CheckOutcome::exception_tripped(
                            check.id(),
                            progress.successes,
                            progress.executions,
                        )
                    } else {
                        CheckOutcome::exception_passed(check.id(), progress.executions)
                    }
                } else {
                    CheckOutcome::basic(check.id(), progress.successes, progress.executions, mapped)
                }
            })
            .collect();
        StateOutcome::combine(state_id, checks, state.weights(), self.pending_exception)
    }

    /// The check that tripped the pending exception, if identifiable (the
    /// first exception check whose fallback matches).
    fn tripped_check(&self) -> Option<CheckId> {
        let fallback = self.pending_exception?;
        self.current_state_def()?
            .checks()
            .iter()
            .find_map(|check| (check.fallback() == Some(fallback)).then_some(check.id()))
    }

    /// Marks the execution finished in `final_state`.
    pub fn mark_finished(&mut self, final_state: StateId, at: SimTime) {
        self.finished_at = Some(at);
        self.status = if self.strategy.is_success(final_state) {
            ExecutionStatus::Succeeded
        } else {
            ExecutionStatus::RolledBack
        };
    }

    /// The total wall-clock (virtual) duration of the execution, if finished.
    pub fn duration(&self) -> Option<std::time::Duration> {
        match (self.started_at, self.finished_at) {
            (Some(start), Some(end)) => Some(end - start),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::prelude::*;

    fn strategy() -> Strategy {
        let mut catalog = ServiceCatalog::new();
        let search = catalog.add_service(Service::new("search"));
        let stable = catalog
            .add_version(
                search,
                ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)),
            )
            .unwrap();
        let fast = catalog
            .add_version(
                search,
                ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)),
            )
            .unwrap();
        StrategyBuilder::new("exec-test", catalog)
            .phase(
                PhaseSpec::canary(
                    "canary",
                    search,
                    stable,
                    fast,
                    Percentage::new(5.0).unwrap(),
                )
                .check(PhaseCheckFixture::error_check())
                .duration_secs(60),
            )
            .build()
            .unwrap()
    }

    struct PhaseCheckFixture;

    impl PhaseCheckFixture {
        fn error_check() -> bifrost_core::phase::PhaseCheck {
            bifrost_core::phase::PhaseCheck::basic(
                "errors",
                CheckSpec::single(
                    MetricQuery::new("prometheus", "errors", "request_errors"),
                    Validator::LessThan(5.0),
                ),
                Timer::from_secs(12, 5).unwrap(),
                OutcomeMapping::binary(5, -1, 1).unwrap(),
            )
        }
    }

    #[test]
    fn lifecycle_scheduled_running_finished() {
        let strategy = strategy();
        let success = strategy.success_state();
        let mut exec = StrategyExecution::new(StrategyId::new(1), strategy, SimTime::from_secs(5));
        assert_eq!(exec.status(), ExecutionStatus::Scheduled);
        assert_eq!(exec.scheduled_at(), SimTime::from_secs(5));
        assert!(!exec.status().is_finished());

        exec.mark_started(SimTime::from_secs(5));
        assert_eq!(exec.status(), ExecutionStatus::Running);
        assert_eq!(exec.started_at(), Some(SimTime::from_secs(5)));

        exec.mark_finished(success, SimTime::from_secs(70));
        assert_eq!(exec.status(), ExecutionStatus::Succeeded);
        assert!(exec.status().is_finished());
        assert_eq!(exec.duration(), Some(std::time::Duration::from_secs(65)));
    }

    #[test]
    fn rollback_final_state_marks_rolled_back() {
        let strategy = strategy();
        let rollback = strategy.rollback_state();
        let mut exec = StrategyExecution::new(StrategyId::new(1), strategy, SimTime::ZERO);
        exec.mark_started(SimTime::ZERO);
        exec.mark_finished(rollback, SimTime::from_secs(10));
        assert_eq!(exec.status(), ExecutionStatus::RolledBack);
    }

    #[test]
    fn enter_state_resets_progress_and_bumps_generation() {
        let strategy = strategy();
        let start = strategy.automaton().start();
        let mut exec = StrategyExecution::new(StrategyId::new(1), strategy, SimTime::ZERO);
        exec.mark_started(SimTime::ZERO);
        let generation_1 = exec.enter_state(start, SimTime::ZERO).unwrap();
        assert_eq!(exec.current_state(), Some(start));
        assert_eq!(exec.progress().count(), 1);
        assert_eq!(exec.history().len(), 1);
        assert_eq!(exec.state_entered_at(), Some(SimTime::ZERO));

        let check = exec.current_state_def().unwrap().checks()[0].id();
        exec.record_check_execution(check, true).unwrap();
        let generation_2 = exec.enter_state(start, SimTime::from_secs(60)).unwrap();
        assert!(generation_2 > generation_1);
        assert_eq!(exec.generation(), generation_2);
        // Progress was reset.
        assert!(exec.progress().all(|p| p.executions == 0));
        assert!(exec.enter_state(StateId::new(99), SimTime::ZERO).is_err());
    }

    #[test]
    fn check_progress_accumulates_and_builds_outcome() {
        let strategy = strategy();
        let start = strategy.automaton().start();
        let mut exec = StrategyExecution::new(StrategyId::new(1), strategy, SimTime::ZERO);
        exec.mark_started(SimTime::ZERO);
        exec.enter_state(start, SimTime::ZERO).unwrap();
        let check = exec.current_state_def().unwrap().checks()[0].id();
        for i in 0..5 {
            let progress = exec.record_check_execution(check, true).unwrap();
            assert_eq!(progress.executions, i + 1);
        }
        let progress = exec.progress().next().unwrap();
        assert!(progress.is_complete());
        assert_eq!(progress.successes, 5);

        let outcome = exec.build_outcome().unwrap();
        // 5 successes with binary(5, -1, 1) → mapped 1, weight 1 → value 1.
        assert_eq!(outcome.value, 1);
        assert!(!outcome.exception_triggered());

        assert!(exec.record_check_execution(CheckId::new(99), true).is_err());
    }

    #[test]
    fn failed_executions_lower_the_outcome() {
        let strategy = strategy();
        let start = strategy.automaton().start();
        let mut exec = StrategyExecution::new(StrategyId::new(1), strategy, SimTime::ZERO);
        exec.mark_started(SimTime::ZERO);
        exec.enter_state(start, SimTime::ZERO).unwrap();
        let check = exec.current_state_def().unwrap().checks()[0].id();
        for success in [true, true, false, true, true] {
            exec.record_check_execution(check, success).unwrap();
        }
        let outcome = exec.build_outcome().unwrap();
        // 4/5 successes → below the binary threshold of 5 → mapped -1.
        assert_eq!(outcome.value, -1);
    }

    #[test]
    fn exception_is_reflected_in_outcome() {
        let strategy = strategy();
        let start = strategy.automaton().start();
        let rollback = strategy.rollback_state();
        let mut exec = StrategyExecution::new(StrategyId::new(1), strategy, SimTime::ZERO);
        exec.mark_started(SimTime::ZERO);
        exec.enter_state(start, SimTime::ZERO).unwrap();
        exec.record_exception(rollback);
        assert_eq!(exec.pending_exception(), Some(rollback));
        let outcome = exec.build_outcome().unwrap();
        assert!(outcome.exception_triggered());
        assert_eq!(outcome.exception_fallback, Some(rollback));
    }

    #[test]
    fn build_outcome_without_active_state_fails() {
        let strategy = strategy();
        let exec = StrategyExecution::new(StrategyId::new(1), strategy, SimTime::ZERO);
        assert!(exec.build_outcome().is_err());
        assert!(exec.current_state_def().is_none());
    }
}
