//! Request-level traffic simulation: live traffic through the proxy fleet.
//!
//! The paper's core claim is that strategies are enacted *over live
//! traffic*: proxies split, stick, and shadow real requests while
//! metric-based checks decide state transitions. This module is the
//! substrate that makes the simulated engine do the same. A
//! [`TrafficProfile`] attaches a [`bifrost_workload::LoadProfile`] to a
//! service; the engine materialises the arrival plan from its seed, groups
//! the arrivals into per-tick batches ([`bifrost_workload::ArrivalPlan::batches`]),
//! and schedules one `TrafficTick` engine event per non-empty tick. Each
//! tick routes its batch through the service's proxy under a shared read
//! lock ([`bifrost_proxy::BifrostProxy::route_many_costed`] — the
//! compiled-config hot path, which partitions the batch by session shard
//! and takes one striped lock per touched shard instead of a global
//! one), charges every request's routing cost to the
//! proxy's own CPU, models the serving version's backend latency and error
//! rate, and records the observed outcomes into the shared metric store via
//! [`bifrost_metrics::TrafficSeriesRecorder`] — so checks evaluate traffic
//! the proxies actually routed instead of hand-injected samples.
//!
//! Everything derives from the engine seed: an N-thread multi-trial run
//! produces byte-identical traffic statistics to a 1-thread run.

use bifrost_core::ids::{ServiceId, VersionId};
use bifrost_core::seed::Seed;
use bifrost_metrics::{SharedMetricStore, TrafficSeriesRecorder};
use bifrost_proxy::ProxyRequest;
use bifrost_simnet::{CpuResource, SimRng, SimTime};
use bifrost_workload::{ArrivalPlan, LoadProfile};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::proxies::ProxyHandle;

/// The backend behaviour of one service version under traffic: how long the
/// version takes to serve a request and how often it fails. This is the
/// traffic pipeline's stand-in for a full application model — enough for
/// checks to observe latency and error-rate differences between versions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProfile {
    /// Mean service time of one request.
    pub service_time: Duration,
    /// Probability that a request served by this version fails.
    pub error_rate: f64,
}

impl Default for BackendProfile {
    fn default() -> Self {
        Self {
            service_time: Duration::from_millis(10),
            error_rate: 0.0,
        }
    }
}

impl BackendProfile {
    /// A healthy backend with the given mean service time.
    pub fn healthy(service_time: Duration) -> Self {
        Self {
            service_time,
            error_rate: 0.0,
        }
    }

    /// A defective backend: slow and failing at `error_rate`.
    pub fn defective(service_time: Duration, error_rate: f64) -> Self {
        Self {
            service_time,
            error_rate: error_rate.clamp(0.0, 1.0),
        }
    }
}

/// A request-level traffic profile attached to one service's proxy.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    service: ServiceId,
    load: LoadProfile,
    tick: Duration,
    cores: usize,
    service_label: String,
    backends: BTreeMap<VersionId, BackendProfile>,
    version_labels: BTreeMap<VersionId, String>,
    default_backend: BackendProfile,
}

impl TrafficProfile {
    /// Creates a profile driving `load` through the proxy of `service`,
    /// batched per 1-second virtual tick on a single-core proxy VM.
    pub fn new(service: ServiceId, load: LoadProfile) -> Self {
        Self {
            service,
            load,
            tick: Duration::from_secs(1),
            cores: 1,
            service_label: format!("{service}"),
            backends: BTreeMap::new(),
            version_labels: BTreeMap::new(),
            default_backend: BackendProfile::default(),
        }
    }

    /// Overrides the batching tick (builder style). Smaller ticks observe
    /// configuration changes sooner; larger ticks process fewer, bigger
    /// batches.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick.max(Duration::from_micros(1));
        self
    }

    /// Overrides the proxy VM's core count (builder style).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Overrides the `service` label used in recorded series (builder
    /// style). Defaults to the service id's rendering.
    pub fn with_service_label(mut self, label: impl Into<String>) -> Self {
        self.service_label = label.into();
        self
    }

    /// Sets a version's backend behaviour and, for recorded series, its
    /// `version` label (builder style).
    pub fn with_backend(
        mut self,
        version: VersionId,
        label: impl Into<String>,
        backend: BackendProfile,
    ) -> Self {
        self.backends.insert(version, backend);
        self.version_labels.insert(version, label.into());
        self
    }

    /// Overrides the backend used for versions without an explicit profile
    /// (builder style).
    pub fn with_default_backend(mut self, backend: BackendProfile) -> Self {
        self.default_backend = backend;
        self
    }

    /// The service whose proxy the traffic flows through.
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// The load profile.
    pub fn load(&self) -> &LoadProfile {
        &self.load
    }

    /// The batching tick.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    fn backend_of(&self, version: VersionId) -> BackendProfile {
        self.backends
            .get(&version)
            .copied()
            .unwrap_or(self.default_backend)
    }
}

/// Aggregate statistics of one traffic stream, maintained as batches are
/// routed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    /// Total requests routed.
    pub requests: u64,
    /// Requests that failed (drawn from the serving version's error rate).
    pub errors: u64,
    /// Dark-launch shadow copies produced.
    pub shadow_copies: u64,
    /// Primary requests per version.
    pub per_version: BTreeMap<VersionId, u64>,
    /// Shadow copies per target version.
    pub shadow_per_version: BTreeMap<VersionId, u64>,
    /// Number of ticks processed.
    pub ticks: u64,
    /// Sum of end-to-end latencies in milliseconds (for the mean).
    pub total_latency_ms: f64,
    /// Every request's end-to-end latency in milliseconds, in arrival order
    /// (for percentiles).
    pub latencies_ms: Vec<f64>,
    /// Total proxy CPU demand this stream's requests contributed
    /// (queueing excluded; shared-proxy contention shows up in latency).
    pub proxy_busy: Duration,
}

impl TrafficStats {
    /// Mean end-to-end latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.total_latency_ms / self.requests as f64
    }

    /// The `q`-quantile (0.0..=1.0) of end-to-end latency in milliseconds.
    /// O(n) selection on a scratch copy rather than a full sort.
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut scratch = self.latencies_ms.clone();
        let rank = (q.clamp(0.0, 1.0) * (scratch.len() - 1) as f64).round() as usize;
        let (_, value, _) = scratch.select_nth_unstable_by(rank, f64::total_cmp);
        *value
    }

    /// The fraction of primary traffic served by `version`.
    pub fn share_of(&self, version: VersionId) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        *self.per_version.get(&version).unwrap_or(&0) as f64 / self.requests as f64
    }

    /// The fraction of requests that produced at least one shadow copy
    /// (assuming at most one shadow rule, copies == shadowed requests).
    pub fn shadow_share(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.shadow_copies as f64 / self.requests as f64
    }

    /// Average proxy CPU milliseconds spent per routed request.
    pub fn proxy_cpu_ms_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.proxy_busy.as_secs_f64() * 1_000.0 / self.requests as f64
    }
}

/// A handle identifying one attached traffic stream within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrafficHandle(pub(crate) usize);

impl fmt::Display for TrafficHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "traffic-{}", self.0)
    }
}

/// One attached traffic stream: the materialised arrival plan, its batch
/// index, the seeded RNG for backend behaviour, and the recorder feeding
/// the metric store. The proxy VM's CPU is *not* part of the stream — the
/// engine keys one [`CpuResource`] per service, so concurrent streams
/// through the same proxy contend for the same cores.
pub(crate) struct TrafficStream {
    profile: TrafficProfile,
    arrivals: ArrivalPlan,
    /// `(tick end, start index, end index)` per non-empty tick, precomputed
    /// from [`ArrivalPlan::batches`] so each engine event is a slice lookup.
    batches: Vec<(SimTime, usize, usize)>,
    rng: SimRng,
    recorder: TrafficSeriesRecorder,
    stats: TrafficStats,
    /// Scratch buffer reused across ticks to build the batch's requests.
    scratch: Vec<ProxyRequest>,
    /// Version → series label, pre-resolved so the per-request loop never
    /// allocates for label bookkeeping. Versions the profile did not name
    /// are added on first sight with their id rendering.
    labels: BTreeMap<VersionId, String>,
}

impl TrafficStream {
    /// Materialises a stream from its profile and the engine seed. The
    /// arrival plan derives from the seed's `"traffic"` stream (namespaced
    /// by stream index so two streams never replay the same sequence).
    pub(crate) fn new(
        profile: TrafficProfile,
        index: usize,
        seed: Seed,
        store: SharedMetricStore,
    ) -> Self {
        let stream_seed = seed.stream(&format!("traffic-{index}"));
        let arrivals = profile.load.plan_seeded(stream_seed);
        // Batches partition the plan in order, so index ranges follow from a
        // running cursor over the batch sizes.
        let mut cursor = 0usize;
        let batches = arrivals
            .batches(profile.tick)
            .map(|batch| {
                let start = cursor;
                cursor += batch.arrivals.len();
                (batch.end, start, cursor)
            })
            .collect();
        let mut recorder = TrafficSeriesRecorder::new(store, profile.service_label.clone());
        recorder.register_versions(
            profile.version_labels.values().map(String::as_str),
            SimTime::ZERO.to_timestamp(),
        );
        Self {
            rng: SimRng::seeded(stream_seed.stream("backends").value()),
            recorder,
            arrivals,
            batches,
            labels: profile.version_labels.clone(),
            profile,
            stats: TrafficStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The service this stream targets.
    pub(crate) fn service(&self) -> ServiceId {
        self.profile.service
    }

    /// The proxy VM core count this stream's profile asks for.
    pub(crate) fn cores(&self) -> usize {
        self.profile.cores
    }

    /// The tick end times of every non-empty batch, for scheduling.
    pub(crate) fn batch_times(&self) -> Vec<SimTime> {
        self.batches.iter().map(|(end, _, _)| *end).collect()
    }

    /// The aggregate statistics so far.
    pub(crate) fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Routes the `batch`-th tick's arrivals through `proxy` at virtual
    /// time `at` (the tick's window end), charging routing cost to the
    /// service's shared proxy `cpu`, and records the outcomes.
    pub(crate) fn route_batch(
        &mut self,
        batch: usize,
        proxy: &ProxyHandle,
        cpu: &mut CpuResource,
        at: SimTime,
    ) {
        let Some(&(_, start, end)) = self.batches.get(batch) else {
            return;
        };
        let arrivals = &self.arrivals.arrivals()[start..end];
        self.scratch.clear();
        self.scratch.extend(
            arrivals
                .iter()
                .map(|arrival| ProxyRequest::from_user(arrival.user)),
        );
        // Routing needs only read access to the proxy (the sharded session
        // store locks per shard internally), so concurrent streams through
        // the same proxy no longer serialize on the handle.
        let routed = proxy.read().route_many_costed(self.scratch.iter());
        for (arrival, (decision, cost)) in arrivals.iter().zip(&routed) {
            let receipt = cpu.submit(arrival.at, *cost);
            self.stats.proxy_busy += *cost;
            let backend = self.profile.backend_of(decision.primary);
            // Backend latency: the version's mean service time with a ±10%
            // deterministic jitter so latency series are not flat lines.
            let service_ms =
                backend.service_time.as_secs_f64() * 1_000.0 * (0.9 + 0.2 * self.rng.uniform());
            let latency_ms = (receipt.completed - arrival.at).as_secs_f64() * 1_000.0 + service_ms;
            let success = !self.rng.chance(backend.error_rate);

            self.stats.requests += 1;
            if !success {
                self.stats.errors += 1;
            }
            *self.stats.per_version.entry(decision.primary).or_insert(0) += 1;
            self.stats.total_latency_ms += latency_ms;
            self.stats.latencies_ms.push(latency_ms);
            let label = self
                .labels
                .entry(decision.primary)
                .or_insert_with(|| decision.primary.to_string());
            self.recorder.observe_request(label, latency_ms, success);
            for shadow in &decision.shadows {
                self.stats.shadow_copies += 1;
                *self
                    .stats
                    .shadow_per_version
                    .entry(shadow.target)
                    .or_insert(0) += 1;
                let label = self
                    .labels
                    .entry(shadow.target)
                    .or_insert_with(|| shadow.target.to_string());
                self.recorder.observe_shadow(label);
            }
        }
        self.stats.ticks += 1;
        // Drain the CPU's utilisation-sampling intervals: nothing samples
        // the traffic CPUs, and without the drain the interval list grows
        // by one entry per routed request.
        let _ = cpu.sample_utilization(at);
        self.recorder.flush(at.to_timestamp());
    }
}

impl fmt::Debug for TrafficStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrafficStream")
            .field("service", &self.profile.service)
            .field("batches", &self.batches.len())
            .field("requests", &self.stats.requests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_workload::LoadProfile;

    #[test]
    fn backend_profiles_clamp_and_default() {
        let healthy = BackendProfile::healthy(Duration::from_millis(5));
        assert_eq!(healthy.error_rate, 0.0);
        let bad = BackendProfile::defective(Duration::from_millis(50), 7.0);
        assert_eq!(bad.error_rate, 1.0);
        assert_eq!(
            BackendProfile::default().service_time,
            Duration::from_millis(10)
        );
    }

    #[test]
    fn profile_builders() {
        let service = ServiceId::new(3);
        let v = VersionId::new(1);
        let profile =
            TrafficProfile::new(service, LoadProfile::paper_profile(Duration::from_secs(10)))
                .with_tick(Duration::from_millis(500))
                .with_cores(2)
                .with_service_label("search")
                .with_backend(v, "v1", BackendProfile::healthy(Duration::from_millis(4)))
                .with_default_backend(BackendProfile::healthy(Duration::from_millis(9)));
        assert_eq!(profile.service(), service);
        assert_eq!(profile.tick(), Duration::from_millis(500));
        assert_eq!(profile.backend_of(v).service_time, Duration::from_millis(4));
        assert_eq!(
            profile.backend_of(VersionId::new(9)).service_time,
            Duration::from_millis(9)
        );
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = TrafficStats::default();
        assert_eq!(stats.mean_latency_ms(), 0.0);
        assert_eq!(stats.latency_quantile_ms(0.95), 0.0);
        assert_eq!(stats.share_of(VersionId::new(0)), 0.0);
        assert_eq!(stats.shadow_share(), 0.0);
        assert_eq!(stats.proxy_cpu_ms_per_request(), 0.0);
    }
}
