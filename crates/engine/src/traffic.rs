//! Request-level traffic simulation: live traffic through the proxy fleet.
//!
//! The paper's core claim is that strategies are enacted *over live
//! traffic*: proxies split, stick, and shadow real requests while
//! metric-based checks decide state transitions. This module is the
//! substrate that makes the simulated engine do the same. A
//! [`TrafficProfile`] attaches a [`bifrost_workload::LoadProfile`] to a
//! service; the engine materialises the arrival plan from its seed, groups
//! the arrivals into per-tick batches ([`bifrost_workload::ArrivalPlan::batches`]),
//! and schedules one `TrafficTick` engine event per non-empty tick. Each
//! tick routes its batch through the service's proxy under a shared read
//! lock ([`bifrost_proxy::BifrostProxy::route_many_costed`] — the
//! compiled-config hot path, which partitions the batch by session shard
//! and takes one striped lock per touched shard instead of a global
//! one), charges every request's routing cost to the
//! proxy's own CPU, models the serving version's backend latency and error
//! rate, and records the observed outcomes into the shared metric store via
//! [`bifrost_metrics::TrafficSeriesRecorder`] — so checks evaluate traffic
//! the proxies actually routed instead of hand-injected samples.
//!
//! Everything derives from the engine seed: an N-thread multi-trial run
//! produces byte-identical traffic statistics to a 1-thread run.

use bifrost_core::ids::{ServiceId, VersionId};
use bifrost_core::seed::Seed;
use bifrost_metrics::{SharedMetricStore, TrafficSeriesRecorder};
use bifrost_proxy::ProxyRequest;
use bifrost_simnet::{CpuResource, SimRng, SimTime};
use bifrost_workload::{ArrivalPlan, LoadProfile};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::backends::{BackendDefaults, BackendDispatch, BackendFleet, QueuedBackend};
use crate::proxies::ProxyHandle;

/// The backend behaviour of one service version under traffic: how long the
/// version takes to serve a request and how often it fails. This is the
/// traffic pipeline's stand-in for a full application model — enough for
/// checks to observe latency and error-rate differences between versions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProfile {
    /// Mean service time of one request.
    pub service_time: Duration,
    /// Probability that a request served by this version fails.
    pub error_rate: f64,
}

impl Default for BackendProfile {
    fn default() -> Self {
        Self {
            service_time: Duration::from_millis(10),
            error_rate: 0.0,
        }
    }
}

impl BackendProfile {
    /// A healthy backend with the given mean service time.
    pub fn healthy(service_time: Duration) -> Self {
        Self {
            service_time,
            error_rate: 0.0,
        }
    }

    /// A defective backend: slow and failing at `error_rate`.
    pub fn defective(service_time: Duration, error_rate: f64) -> Self {
        Self {
            service_time,
            error_rate: error_rate.clamp(0.0, 1.0),
        }
    }
}

/// How one version serves requests under traffic: the degenerate
/// unlimited-capacity [`BackendProfile`] (fixed mean service time, latency
/// independent of load) or a capacity-bounded [`QueuedBackend`] whose
/// replicas queue, saturate, and shed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendModel {
    /// Unlimited capacity: every request is served at the profile's mean
    /// service time regardless of offered load.
    Profile(BackendProfile),
    /// Queued replicas: latency grows with backlog, overload sheds.
    Queued(QueuedBackend),
}

impl BackendModel {
    /// The intrinsic error rate of the model.
    pub fn error_rate(&self) -> f64 {
        match self {
            BackendModel::Profile(p) => p.error_rate,
            BackendModel::Queued(q) => q.error_rate,
        }
    }

    /// The mean service time / demand of the model.
    pub fn service_time(&self) -> Duration {
        match self {
            BackendModel::Profile(p) => p.service_time,
            BackendModel::Queued(q) => q.service_time,
        }
    }

    /// Applies engine-level capacity defaults: a plain profile is upgraded
    /// to a queued backend with the defaults' replica/queue/timeout shape
    /// (the profile keeps supplying service time and error rate); explicit
    /// queued backends are untouched.
    fn with_defaults(self, defaults: Option<BackendDefaults>) -> Self {
        match (self, defaults) {
            (BackendModel::Profile(p), Some(d)) => BackendModel::Queued(QueuedBackend {
                service_time: p.service_time,
                error_rate: p.error_rate,
                replicas: d.replicas,
                queue_capacity: d.queue_capacity,
                timeout: d.timeout,
            }),
            (model, _) => model,
        }
    }
}

/// A request-level traffic profile attached to one service's proxy.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    service: ServiceId,
    load: LoadProfile,
    tick: Duration,
    cores: usize,
    service_label: String,
    backends: BTreeMap<VersionId, BackendModel>,
    version_labels: BTreeMap<VersionId, String>,
    default_backend: BackendModel,
}

impl TrafficProfile {
    /// Creates a profile driving `load` through the proxy of `service`,
    /// batched per 1-second virtual tick on a single-core proxy VM.
    pub fn new(service: ServiceId, load: LoadProfile) -> Self {
        Self {
            service,
            load,
            tick: Duration::from_secs(1),
            cores: 1,
            service_label: format!("{service}"),
            backends: BTreeMap::new(),
            version_labels: BTreeMap::new(),
            default_backend: BackendModel::Profile(BackendProfile::default()),
        }
    }

    /// Overrides the batching tick (builder style). Smaller ticks observe
    /// configuration changes sooner; larger ticks process fewer, bigger
    /// batches.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick.max(Duration::from_micros(1));
        self
    }

    /// Overrides the proxy VM's core count (builder style).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Overrides the `service` label used in recorded series (builder
    /// style). Defaults to the service id's rendering.
    pub fn with_service_label(mut self, label: impl Into<String>) -> Self {
        self.service_label = label.into();
        self
    }

    /// Sets a version's backend behaviour to the degenerate
    /// unlimited-capacity profile and, for recorded series, its `version`
    /// label (builder style).
    pub fn with_backend(
        mut self,
        version: VersionId,
        label: impl Into<String>,
        backend: BackendProfile,
    ) -> Self {
        self.backends
            .insert(version, BackendModel::Profile(backend));
        self.version_labels.insert(version, label.into());
        self
    }

    /// Sets a version's backend to a capacity-bounded queued server —
    /// latency becomes load-dependent, overload sheds — and, for recorded
    /// series, its `version` label (builder style).
    pub fn with_queued_backend(
        mut self,
        version: VersionId,
        label: impl Into<String>,
        backend: QueuedBackend,
    ) -> Self {
        self.backends.insert(version, BackendModel::Queued(backend));
        self.version_labels.insert(version, label.into());
        self
    }

    /// Overrides the backend used for versions without an explicit profile
    /// (builder style).
    pub fn with_default_backend(mut self, backend: BackendProfile) -> Self {
        self.default_backend = BackendModel::Profile(backend);
        self
    }

    /// Overrides the default backend with a queued server (builder style).
    pub fn with_default_queued_backend(mut self, backend: QueuedBackend) -> Self {
        self.default_backend = BackendModel::Queued(backend);
        self
    }

    /// The service whose proxy the traffic flows through.
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// The load profile.
    pub fn load(&self) -> &LoadProfile {
        &self.load
    }

    /// The batching tick.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// The backend model of `version` (the default model when the profile
    /// did not name it explicitly).
    pub fn backend_of(&self, version: VersionId) -> BackendModel {
        self.backends
            .get(&version)
            .copied()
            .unwrap_or(self.default_backend)
    }
}

/// Aggregate statistics of one traffic stream, maintained as batches are
/// routed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    /// Total requests routed.
    pub requests: u64,
    /// Requests that failed: intrinsic backend errors plus shed and
    /// timed-out requests.
    pub errors: u64,
    /// Primary requests rejected by a saturated backend queue.
    pub shed: u64,
    /// Primary requests whose backend latency exceeded the version's
    /// timeout.
    pub timed_out: u64,
    /// Shadow copies dropped by a saturated backend queue (server-side
    /// only — never visible to the caller).
    pub shadow_shed: u64,
    /// Dark-launch shadow copies produced.
    pub shadow_copies: u64,
    /// Primary requests per version.
    pub per_version: BTreeMap<VersionId, u64>,
    /// Shadow copies per target version.
    pub shadow_per_version: BTreeMap<VersionId, u64>,
    /// Primary shed + timed-out requests per version.
    pub shed_per_version: BTreeMap<VersionId, u64>,
    /// Peak per-tick backend replica utilisation (percent) per version,
    /// for versions with a queued backend.
    pub peak_utilization: BTreeMap<VersionId, f64>,
    /// Number of ticks processed.
    pub ticks: u64,
    /// Sum of end-to-end latencies in milliseconds (for the mean).
    pub total_latency_ms: f64,
    /// Every request's end-to-end latency in milliseconds, in arrival order
    /// (for percentiles).
    pub latencies_ms: Vec<f64>,
    /// Total proxy CPU demand this stream's requests contributed
    /// (queueing excluded; shared-proxy contention shows up in latency).
    pub proxy_busy: Duration,
}

impl TrafficStats {
    /// Mean end-to-end latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.total_latency_ms / self.requests as f64
    }

    /// The `q`-quantile (0.0..=1.0) of end-to-end latency in milliseconds.
    /// O(n) selection on a scratch copy rather than a full sort.
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut scratch = self.latencies_ms.clone();
        let rank = (q.clamp(0.0, 1.0) * (scratch.len() - 1) as f64).round() as usize;
        let (_, value, _) = scratch.select_nth_unstable_by(rank, f64::total_cmp);
        *value
    }

    /// The fraction of primary traffic served by `version`.
    pub fn share_of(&self, version: VersionId) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        *self.per_version.get(&version).unwrap_or(&0) as f64 / self.requests as f64
    }

    /// The fraction of requests that produced at least one shadow copy
    /// (assuming at most one shadow rule, copies == shadowed requests).
    pub fn shadow_share(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.shadow_copies as f64 / self.requests as f64
    }

    /// Average proxy CPU milliseconds spent per routed request.
    pub fn proxy_cpu_ms_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.proxy_busy.as_secs_f64() * 1_000.0 / self.requests as f64
    }

    /// The fraction of primary requests shed or timed out by their backend.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.shed + self.timed_out) as f64 / self.requests as f64
    }
}

/// A handle identifying one attached traffic stream within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrafficHandle(pub(crate) usize);

impl fmt::Display for TrafficHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "traffic-{}", self.0)
    }
}

/// One attached traffic stream: the materialised arrival plan, its batch
/// index, the seeded RNG for backend behaviour, and the recorder feeding
/// the metric store. The proxy VM's CPU is *not* part of the stream — the
/// engine keys one [`CpuResource`] per service, so concurrent streams
/// through the same proxy contend for the same cores.
pub(crate) struct TrafficStream {
    profile: TrafficProfile,
    arrivals: ArrivalPlan,
    /// `(tick end, start index, end index)` per non-empty tick, precomputed
    /// from [`ArrivalPlan::batches`] so each engine event is a slice lookup.
    batches: Vec<(SimTime, usize, usize)>,
    rng: SimRng,
    /// A separate seeded RNG for shadow service-demand draws, so the
    /// presence or share of a dark launch never perturbs the primary
    /// stream's jitter/error sequence — when the shadow version serves no
    /// primary traffic, primary-visible outcomes are byte-identical with
    /// and without shadow traffic. (If the shadow target also serves a
    /// primary split, the shadow load still occupies the shared replicas,
    /// so primary queueing there degrades — deliberately.)
    shadow_rng: SimRng,
    recorder: TrafficSeriesRecorder,
    stats: TrafficStats,
    /// Scratch buffer reused across ticks to build the batch's requests.
    scratch: Vec<ProxyRequest>,
    /// Version → series label, pre-resolved so the per-request loop never
    /// allocates for label bookkeeping. Versions the profile did not name
    /// are added on first sight with their id rendering.
    labels: BTreeMap<VersionId, String>,
    /// Version → backend model, resolved once from the profile and the
    /// engine's capacity defaults.
    models: BTreeMap<VersionId, BackendModel>,
    /// The resolved model for versions the profile did not name.
    default_model: BackendModel,
}

impl TrafficStream {
    /// Materialises a stream from its profile and the engine seed. The
    /// arrival plan derives from the seed's `"traffic"` stream (namespaced
    /// by stream index so two streams never replay the same sequence).
    pub(crate) fn new(
        profile: TrafficProfile,
        index: usize,
        seed: Seed,
        store: SharedMetricStore,
        backend_defaults: Option<BackendDefaults>,
    ) -> Self {
        let stream_seed = seed.stream(&format!("traffic-{index}"));
        let arrivals = profile.load.plan_seeded(stream_seed);
        // Batches partition the plan in order, so index ranges follow from a
        // running cursor over the batch sizes.
        let mut cursor = 0usize;
        let batches = arrivals
            .batches(profile.tick)
            .map(|batch| {
                let start = cursor;
                cursor += batch.arrivals.len();
                (batch.end, start, cursor)
            })
            .collect();
        let mut recorder = TrafficSeriesRecorder::new(store, profile.service_label.clone());
        recorder.register_versions(
            profile.version_labels.values().map(String::as_str),
            SimTime::ZERO.to_timestamp(),
        );
        let models = profile
            .backends
            .iter()
            .map(|(version, model)| (*version, model.with_defaults(backend_defaults)))
            .collect();
        let default_model = profile.default_backend.with_defaults(backend_defaults);
        Self {
            rng: SimRng::seeded(stream_seed.stream("backends").value()),
            shadow_rng: SimRng::seeded(stream_seed.stream("shadow-backends").value()),
            recorder,
            arrivals,
            batches,
            labels: profile.version_labels.clone(),
            models,
            default_model,
            profile,
            stats: TrafficStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The resolved backend model of a version.
    fn model_of(&self, version: VersionId) -> BackendModel {
        self.models
            .get(&version)
            .copied()
            .unwrap_or(self.default_model)
    }

    /// The service this stream targets.
    pub(crate) fn service(&self) -> ServiceId {
        self.profile.service
    }

    /// The proxy VM core count this stream's profile asks for.
    pub(crate) fn cores(&self) -> usize {
        self.profile.cores
    }

    /// The tick end times of every non-empty batch, for scheduling.
    pub(crate) fn batch_times(&self) -> Vec<SimTime> {
        self.batches.iter().map(|(end, _, _)| *end).collect()
    }

    /// The aggregate statistics so far.
    pub(crate) fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Routes the `batch`-th tick's arrivals through `proxy` at virtual
    /// time `at` (the tick's window end), charging routing cost to the
    /// service's shared proxy `cpu`, dispatching primary *and* shadow
    /// decisions into the service's backend servers in `fleet`, and
    /// records the outcomes.
    pub(crate) fn route_batch(
        &mut self,
        batch: usize,
        proxy: &ProxyHandle,
        cpu: &mut CpuResource,
        fleet: &mut BackendFleet,
        at: SimTime,
    ) {
        let Some(&(_, start, end)) = self.batches.get(batch) else {
            return;
        };
        let arrivals = &self.arrivals.arrivals()[start..end];
        self.scratch.clear();
        self.scratch.extend(
            arrivals
                .iter()
                .map(|arrival| ProxyRequest::from_user(arrival.user)),
        );
        // Routing needs only read access to the proxy (the sharded session
        // store locks per shard internally), so concurrent streams through
        // the same proxy no longer serialize on the handle.
        let routed = proxy.read().route_many_costed(self.scratch.iter());
        let service = self.profile.service;
        for (arrival, (decision, cost)) in arrivals.iter().zip(&routed) {
            let receipt = cpu.submit(arrival.at, *cost);
            self.stats.proxy_busy += *cost;
            let proxy_ms = (receipt.completed - arrival.at).as_secs_f64() * 1_000.0;
            let model = self.model_of(decision.primary);
            // Service demand: the version's mean service time with a ±10%
            // deterministic jitter so latency series are not flat lines
            // (and queued servers see a demand distribution).
            let jitter = 0.9 + 0.2 * self.rng.uniform();
            let (latency_ms, outcome) = match model {
                BackendModel::Profile(profile) => (
                    proxy_ms + profile.service_time.as_secs_f64() * 1_000.0 * jitter,
                    ServeOutcome::Served,
                ),
                BackendModel::Queued(queued) => {
                    let server = fleet.ensure(service, decision.primary, &queued);
                    match server.dispatch(receipt.completed, queued.service_time.mul_f64(jitter)) {
                        // Shed is an immediate rejection: the caller only
                        // pays the routing latency.
                        BackendDispatch::Shed => (proxy_ms, ServeOutcome::Shed),
                        BackendDispatch::Admitted(backend)
                            if backend.latency() > queued.timeout =>
                        {
                            // The caller gives up at the deadline; the
                            // server still burns the admitted work.
                            (
                                proxy_ms + queued.timeout.as_secs_f64() * 1_000.0,
                                ServeOutcome::TimedOut,
                            )
                        }
                        BackendDispatch::Admitted(backend) => (
                            proxy_ms + backend.latency().as_secs_f64() * 1_000.0,
                            ServeOutcome::Served,
                        ),
                    }
                }
            };
            let success = match outcome {
                ServeOutcome::Served => !draw_error(&mut self.rng, model.error_rate()),
                ServeOutcome::Shed | ServeOutcome::TimedOut => false,
            };

            self.stats.requests += 1;
            if !success {
                self.stats.errors += 1;
            }
            match outcome {
                ServeOutcome::Served => {}
                ServeOutcome::Shed => self.stats.shed += 1,
                ServeOutcome::TimedOut => self.stats.timed_out += 1,
            }
            if outcome != ServeOutcome::Served {
                *self
                    .stats
                    .shed_per_version
                    .entry(decision.primary)
                    .or_insert(0) += 1;
            }
            *self.stats.per_version.entry(decision.primary).or_insert(0) += 1;
            self.stats.total_latency_ms += latency_ms;
            self.stats.latencies_ms.push(latency_ms);
            let label = self
                .labels
                .entry(decision.primary)
                .or_insert_with(|| decision.primary.to_string());
            self.recorder.observe_request(label, latency_ms, success);
            if outcome != ServeOutcome::Served {
                self.recorder.observe_shed(label);
            }
            for shadow in &decision.shadows {
                self.stats.shadow_copies += 1;
                *self
                    .stats
                    .shadow_per_version
                    .entry(shadow.target)
                    .or_insert(0) += 1;
                // Shadow work charges the shadow version's replicas — a
                // dark launch visibly heats them — but its outcome never
                // surfaces to the caller: no latency, no error. The demand
                // draw comes from the dedicated shadow RNG so the primary
                // sequence is independent of the dark-launch share.
                let shadow_model = self.model_of(shadow.target);
                let label = self
                    .labels
                    .entry(shadow.target)
                    .or_insert_with(|| shadow.target.to_string());
                self.recorder.observe_shadow(label);
                if let BackendModel::Queued(queued) = shadow_model {
                    let demand = queued
                        .service_time
                        .mul_f64(0.9 + 0.2 * self.shadow_rng.uniform());
                    let server = fleet.ensure(service, shadow.target, &queued);
                    if server.dispatch(receipt.completed, demand) == BackendDispatch::Shed {
                        self.stats.shadow_shed += 1;
                        self.recorder.observe_shed(label);
                    }
                }
            }
        }
        self.stats.ticks += 1;
        // Sample each backend's replica utilisation over the tick and
        // publish it per version; sampling also drains the replicas'
        // pending execution-interval lists. (With several streams on one
        // service, the first stream's tick consumes the window.)
        for (version, server) in fleet.servers_of_mut(service) {
            let percent = server.sample_utilization(at);
            let label = self
                .labels
                .entry(version)
                .or_insert_with(|| version.to_string());
            self.recorder.observe_utilization(label, percent);
            let peak = self.stats.peak_utilization.entry(version).or_insert(0.0);
            if percent > *peak {
                *peak = percent;
            }
        }
        // Drain the CPU's utilisation-sampling intervals: nothing samples
        // the traffic CPUs, and without the drain the interval list grows
        // by one entry per routed request.
        let _ = cpu.sample_utilization(at);
        self.recorder.flush(at.to_timestamp());
    }
}

/// How a primary request fared at its backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServeOutcome {
    /// Served (possibly slowly); the intrinsic error rate still applies.
    Served,
    /// Rejected immediately by a full backend queue.
    Shed,
    /// Admitted but finished past the backend's deadline.
    TimedOut,
}

/// Normalises a configured error rate at the draw point: `NaN` counts as
/// zero, anything else is clamped to `[0, 1]` (the public profile fields
/// allow direct construction with out-of-range values).
fn normalized_error_rate(error_rate: f64) -> f64 {
    if error_rate.is_nan() {
        0.0
    } else {
        error_rate.clamp(0.0, 1.0)
    }
}

/// Draws whether a served request fails its version's intrinsic error
/// rate. Out-of-range rates are a construction bug — loud in debug builds,
/// normalised in release.
fn draw_error(rng: &mut SimRng, error_rate: f64) -> bool {
    debug_assert!(
        (0.0..=1.0).contains(&error_rate),
        "backend error_rate {error_rate} outside [0, 1] — clamp it at construction"
    );
    rng.chance(normalized_error_rate(error_rate))
}

impl fmt::Debug for TrafficStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrafficStream")
            .field("service", &self.profile.service)
            .field("batches", &self.batches.len())
            .field("requests", &self.stats.requests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_workload::LoadProfile;

    #[test]
    fn backend_profiles_clamp_and_default() {
        let healthy = BackendProfile::healthy(Duration::from_millis(5));
        assert_eq!(healthy.error_rate, 0.0);
        let bad = BackendProfile::defective(Duration::from_millis(50), 7.0);
        assert_eq!(bad.error_rate, 1.0);
        assert_eq!(
            BackendProfile::default().service_time,
            Duration::from_millis(10)
        );
    }

    #[test]
    fn profile_builders() {
        let service = ServiceId::new(3);
        let v = VersionId::new(1);
        let q = VersionId::new(2);
        let profile =
            TrafficProfile::new(service, LoadProfile::paper_profile(Duration::from_secs(10)))
                .with_tick(Duration::from_millis(500))
                .with_cores(2)
                .with_service_label("search")
                .with_backend(v, "v1", BackendProfile::healthy(Duration::from_millis(4)))
                .with_queued_backend(
                    q,
                    "v2",
                    QueuedBackend::new(Duration::from_millis(7)).with_replicas(3),
                )
                .with_default_backend(BackendProfile::healthy(Duration::from_millis(9)));
        assert_eq!(profile.service(), service);
        assert_eq!(profile.tick(), Duration::from_millis(500));
        assert_eq!(
            profile.backend_of(v).service_time(),
            Duration::from_millis(4)
        );
        assert!(matches!(
            profile.backend_of(q),
            BackendModel::Queued(queued) if queued.replicas == 3
        ));
        assert_eq!(
            profile.backend_of(VersionId::new(9)).service_time(),
            Duration::from_millis(9)
        );
    }

    #[test]
    fn engine_defaults_upgrade_profiles_but_not_explicit_queued_backends() {
        let defaults = BackendDefaults::new(4, 32, Duration::from_millis(300));
        let upgraded = BackendModel::Profile(BackendProfile::healthy(Duration::from_millis(8)))
            .with_defaults(Some(defaults));
        match upgraded {
            BackendModel::Queued(q) => {
                assert_eq!(q.service_time, Duration::from_millis(8));
                assert_eq!(q.replicas, 4);
                assert_eq!(q.queue_capacity, 32);
                assert_eq!(q.timeout, Duration::from_millis(300));
            }
            other => panic!("expected queued, got {other:?}"),
        }
        let explicit = BackendModel::Queued(QueuedBackend::new(Duration::from_millis(8)));
        assert_eq!(explicit.with_defaults(Some(defaults)), explicit);
        let untouched = BackendModel::Profile(BackendProfile::default());
        assert_eq!(untouched.with_defaults(None), untouched);
    }

    #[test]
    fn error_rates_normalise_at_the_draw_point() {
        assert_eq!(normalized_error_rate(0.25), 0.25);
        assert_eq!(normalized_error_rate(-1.0), 0.0);
        assert_eq!(normalized_error_rate(7.0), 1.0);
        assert_eq!(normalized_error_rate(f64::NAN), 0.0);
        let mut rng = SimRng::seeded(1);
        assert!(draw_error(&mut rng, 1.0));
        assert!(!draw_error(&mut rng, 0.0));
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = TrafficStats::default();
        assert_eq!(stats.mean_latency_ms(), 0.0);
        assert_eq!(stats.latency_quantile_ms(0.95), 0.0);
        assert_eq!(stats.share_of(VersionId::new(0)), 0.0);
        assert_eq!(stats.shadow_share(), 0.0);
        assert_eq!(stats.proxy_cpu_ms_per_request(), 0.0);
        assert_eq!(stats.shed_rate(), 0.0);
    }
}
