//! The engine's CPU cost model.
//!
//! Every action the engine performs is booked against its (single-core by
//! default) CPU. The per-action costs below are calibrated against the
//! paper's measurements on `n1-standard-1` instances: a four-phase strategy
//! with a handful of checks keeps the engine almost idle, around 100
//! identically-timed parallel strategies push the single core towards
//! saturation with a mean enactment delay in the single-digit seconds, and
//! 1600 parallel checks per phase produce a delay of several tens of
//! seconds.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// CPU demand of the engine's individual actions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineCostModel {
    /// Cost of executing one check once: evaluating its metric function,
    /// excluding the per-query cost below (milliseconds).
    pub check_execution_ms: f64,
    /// Cost of one metric-provider query (HTTP round trip to Prometheus in
    /// the prototype) (milliseconds).
    pub metric_query_ms: f64,
    /// Cost of evaluating a completed state: aggregating check outcomes,
    /// applying the transition function (milliseconds).
    pub state_evaluation_ms: f64,
    /// Cost of building and pushing one proxy configuration update
    /// (milliseconds).
    pub proxy_update_ms: f64,
    /// Cost of admitting a newly scheduled strategy (parsing, instantiating
    /// runtime state) (milliseconds).
    pub strategy_admission_ms: f64,
}

impl Default for EngineCostModel {
    fn default() -> Self {
        Self::node_prototype()
    }
}

impl EngineCostModel {
    /// Calibration for the paper's Node.js prototype on a single-core cloud
    /// instance.
    pub fn node_prototype() -> Self {
        Self {
            check_execution_ms: 3.0,
            metric_query_ms: 10.0,
            state_evaluation_ms: 20.0,
            proxy_update_ms: 40.0,
            strategy_admission_ms: 80.0,
        }
    }

    /// A hypothetical optimised engine (ablation bench).
    pub fn optimized() -> Self {
        Self {
            check_execution_ms: 0.4,
            metric_query_ms: 1.2,
            state_evaluation_ms: 2.0,
            proxy_update_ms: 4.0,
            strategy_admission_ms: 8.0,
        }
    }

    /// CPU demand of one execution of a check with `queries` metric queries.
    pub fn check_cost(&self, queries: usize) -> Duration {
        Duration::from_secs_f64(
            (self.check_execution_ms + self.metric_query_ms * queries as f64) / 1_000.0,
        )
    }

    /// CPU demand of evaluating a completed state and deciding the
    /// transition.
    pub fn state_evaluation_cost(&self) -> Duration {
        Duration::from_secs_f64(self.state_evaluation_ms / 1_000.0)
    }

    /// CPU demand of pushing configuration updates to `proxies` proxies.
    pub fn proxy_update_cost(&self, proxies: usize) -> Duration {
        Duration::from_secs_f64(self.proxy_update_ms * proxies as f64 / 1_000.0)
    }

    /// CPU demand of admitting one strategy.
    pub fn admission_cost(&self) -> Duration {
        Duration::from_secs_f64(self.strategy_admission_ms / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_cost_scales_with_query_count() {
        let model = EngineCostModel::node_prototype();
        let none = model.check_cost(0);
        let one = model.check_cost(1);
        let five = model.check_cost(5);
        assert!(one > none);
        assert_eq!(
            (five - none).as_secs_f64(),
            5.0 * model.metric_query_ms / 1_000.0
        );
    }

    #[test]
    fn proxy_update_cost_scales_with_proxy_count() {
        let model = EngineCostModel::node_prototype();
        assert_eq!(model.proxy_update_cost(0), Duration::ZERO);
        assert_eq!(
            model.proxy_update_cost(3),
            Duration::from_secs_f64(3.0 * model.proxy_update_ms / 1_000.0)
        );
    }

    #[test]
    fn default_is_node_calibration_and_optimized_is_cheaper() {
        assert_eq!(
            EngineCostModel::default(),
            EngineCostModel::node_prototype()
        );
        let node = EngineCostModel::node_prototype();
        let fast = EngineCostModel::optimized();
        assert!(fast.check_cost(2) < node.check_cost(2));
        assert!(fast.state_evaluation_cost() < node.state_evaluation_cost());
        assert!(fast.proxy_update_cost(1) < node.proxy_update_cost(1));
        assert!(fast.admission_cost() < node.admission_cost());
    }
}
